"""Instrumentation bus: one uniform observability channel for the simulator.

Components publish three kinds of signals into an :class:`InstrumentBus`:

* **counters / histograms** — push-style, identical to the primitives in
  :mod:`repro.engine.stats` (and backed by them);
* **gauges** — pull-style: a callable registered once and evaluated only
  at :meth:`InstrumentBus.snapshot` time.  Gauges are how the queueing
  primitives (station occupancy, blocked time, server busy time) become
  observable with *zero* hot-path cost — nothing is recorded per event;
* **spans** — wall-clock timing context managers for harness-side
  profiling (never mixed into simulation snapshots, which must stay
  bit-deterministic).

Buses are hierarchical: ``bus.scope("imc").scope("dimm0")`` returns a
view that prefixes every path with ``imc.dimm0.``, so a component can be
instrumented without knowing where it sits in the system tree.

The default bus everywhere is :data:`NULL_BUS`, whose methods are all
no-ops — constructing a bare ``VansSystem()`` pays nothing for any of
this.  The target registry (:mod:`repro.registry`) attaches a real bus
to every system it builds, and the experiment runner gathers those
systems through a :class:`Collection` so every
:class:`~repro.experiments.common.ExperimentResult` can carry a merged,
self-describing snapshot of what its run did.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Union

from repro.engine.stats import Counter, Histogram

Number = Union[int, float]


class BusSignals(NamedTuple):
    """Typed view of everything registered on an :class:`InstrumentBus`.

    The flat :meth:`InstrumentBus.snapshot` loses the signal kind; the
    telemetry sampler needs it (counters become deltas/rates, gauges stay
    levels, histograms become quantile series), so the bus also exposes
    this structured form.
    """

    counters: Dict[str, Counter]
    histograms: Dict[str, Histogram]
    gauges: Dict[str, Callable[[], Number]]


class _NullCounter:
    """Counter look-alike that drops everything."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullHistogram:
    """Histogram look-alike that drops everything."""

    __slots__ = ()

    def record(self, value: int) -> None:
        pass

    def reset(self) -> None:
        pass


class NullBus:
    """No-op instrumentation sink (the zero-cost default)."""

    __slots__ = ()

    def counter(self, path: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, path: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def gauge(self, path: str, fn: Callable[[], Number]) -> None:
        pass

    def scope(self, prefix: str) -> "NullBus":
        return self

    @contextmanager
    def span(self, path: str) -> Iterator[None]:
        yield

    def snapshot(self) -> Dict[str, Number]:
        return {}

    def reset(self) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()

#: shared no-op bus; safe to pass around, it holds no state.
NULL_BUS = NullBus()


def _join(prefix: str, path: str) -> str:
    return f"{prefix}.{path}" if prefix else path


class InstrumentBus:
    """Hierarchical counter/histogram/gauge/span sink."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], Number]] = {}

    # -- registration --------------------------------------------------

    def counter(self, path: str) -> Counter:
        counter = self._counters.get(path)
        if counter is None:
            counter = Counter(path)
            self._counters[path] = counter
        return counter

    def histogram(self, path: str) -> Histogram:
        hist = self._histograms.get(path)
        if hist is None:
            hist = Histogram(path)
            self._histograms[path] = hist
        return hist

    def gauge(self, path: str, fn: Callable[[], Number]) -> None:
        """Register a pull-style metric; ``fn`` runs at snapshot time."""
        self._gauges[path] = fn

    def scope(self, prefix: str) -> "ScopedBus":
        """A view of this bus that prefixes every path with ``prefix.``."""
        return ScopedBus(self, prefix)

    @contextmanager
    def span(self, path: str) -> Iterator[None]:
        """Record the wall-clock duration of a block (microseconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed_us = int((time.perf_counter() - start) * 1e6)
            self.histogram(path).record(elapsed_us)

    # -- reading -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Flat ``dotted.path -> value`` view of everything registered.

        Histograms expand uniformly through
        :meth:`~repro.engine.stats.Histogram.as_stats`
        (``.count/.sum/.min/.max/.mean/.p50/.p99``); gauges are evaluated
        now.  A gauge whose callable raises does not abort the snapshot:
        its path is recorded under the ``errors`` key (a list of paths)
        and every other signal is still reported.
        """
        snap: Dict[str, object] = {}
        for path, counter in self._counters.items():
            snap[path] = counter.value
        for path, hist in self._histograms.items():
            for key, value in hist.as_stats().items():
                snap[f"{path}.{key}"] = value
        errors: List[str] = []
        for path, fn in self._gauges.items():
            try:
                snap[path] = fn()
            except Exception:
                errors.append(path)
        if errors:
            snap["errors"] = errors
        return snap

    def signals(self) -> BusSignals:
        """Structured (counters, histograms, gauges) view; see
        :class:`BusSignals`."""
        return BusSignals(dict(self._counters), dict(self._histograms),
                          dict(self._gauges))

    def reset(self) -> None:
        """Zero every push-style signal (warm-cache reuse lifecycle).

        Counters and histograms are reset in place so components holding
        direct references keep recording into the same objects.  Gauges
        are pull-style closures over live component state — they read
        fresh values automatically once the components themselves reset —
        so registrations are kept as-is.
        """
        for counter in self._counters.values():
            counter.reset()
        for hist in self._histograms.values():
            hist.reset()


class ScopedBus:
    """Prefixing view over a root :class:`InstrumentBus`."""

    __slots__ = ("_root", "_prefix")

    def __init__(self, root: InstrumentBus, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    def counter(self, path: str) -> Counter:
        return self._root.counter(_join(self._prefix, path))

    def histogram(self, path: str) -> Histogram:
        return self._root.histogram(_join(self._prefix, path))

    def gauge(self, path: str, fn: Callable[[], Number]) -> None:
        self._root.gauge(_join(self._prefix, path), fn)

    def scope(self, prefix: str) -> "ScopedBus":
        return ScopedBus(self._root, _join(self._prefix, prefix))

    def span(self, path: str):
        return self._root.span(_join(self._prefix, path))

    def snapshot(self) -> Dict[str, object]:
        """Snapshot of this scope's subtree, with scope-relative paths."""
        prefix = self._prefix + "."
        snap: Dict[str, object] = {}
        for path, value in self._root.snapshot().items():
            if path == "errors":
                scoped = [p[len(prefix):] for p in value
                          if p.startswith(prefix)]
                if scoped:
                    snap["errors"] = scoped
            elif path.startswith(prefix):
                snap[path[len(prefix):]] = value
        return snap

    def reset(self) -> None:
        """Zero the push-style signals under this scope's prefix only."""
        prefix = self._prefix + "."
        for path, counter in self._root._counters.items():
            if path.startswith(prefix):
                counter.reset()
        for path, hist in self._root._histograms.items():
            if path.startswith(prefix):
                hist.reset()


AnyBus = Union[InstrumentBus, ScopedBus, NullBus]

# ----------------------------------------------------------------------
# collection: gather every system built during an experiment
# ----------------------------------------------------------------------

_ACTIVE_COLLECTIONS: List["Collection"] = []


class Collection:
    """Context that gathers systems built while it is active.

    The registry's ``build()`` announces every system it constructs; a
    harness wraps an experiment in a :class:`Collection` and afterwards
    merges the instrumentation snapshots of everything the experiment
    built — no experiment needs to thread stats plumbing by hand.
    """

    def __init__(self) -> None:
        self._systems: List[object] = []
        self._frozen: Optional[Dict[str, Number]] = None

    def __enter__(self) -> "Collection":
        _ACTIVE_COLLECTIONS.append(self)
        self._frozen = None
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE_COLLECTIONS.remove(self)
        # Freeze the merged snapshot now: gauges are pull-style, so a
        # system that keeps running after the experiment ends (reused
        # across experiments, exercised by a later harness step) would
        # otherwise silently mutate this collection's view of the past.
        self._frozen = self._merge_live()

    def register(self, system: object) -> None:
        self._systems.append(system)

    @property
    def systems(self) -> tuple:
        """Everything announced while active (e.g. for warm-cache
        release once the experiment that built them is done)."""
        return tuple(self._systems)

    def __len__(self) -> int:
        return len(self._systems)

    def merged(self) -> Dict[str, Number]:
        """Sum of every collected system's instrumentation snapshot.

        Values are summed per dotted path across systems (counters and
        busy/blocked-time gauges add naturally; snapshot consumers that
        need per-system data can query the systems directly).  The
        special key ``systems`` counts contributors.

        While the collection is active this is a live view; once the
        ``with`` block exits the snapshot taken at exit time is returned,
        so later activity on the same systems cannot retroactively change
        an experiment's recorded stats.
        """
        if self._frozen is not None:
            return dict(self._frozen)
        return self._merge_live()

    def _merge_live(self) -> Dict[str, Number]:
        merged: Dict[str, Number] = {}
        for system in self._systems:
            snapshot_of = getattr(system, "instrument_snapshot", None)
            if snapshot_of is None:
                continue
            for path, value in snapshot_of().items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                merged[path] = merged.get(path, 0) + value
        merged["systems"] = len(self._systems)
        return merged


def announce(system: object) -> None:
    """Register ``system`` with the innermost active :class:`Collection`."""
    if _ACTIVE_COLLECTIONS:
        _ACTIVE_COLLECTIONS[-1].register(system)
