"""Workload generators.

* :mod:`repro.workloads.spec` — synthetic SPEC CPU 2006/2017 trace
  generators calibrated to each benchmark's Table IV LLC MPKI and
  footprint.
* :mod:`repro.workloads.cloud` — the cloud/persistent-memory workloads of
  Sections V (Redis, YCSB, TPCC, fio-write, PMDK HashMap, PMDK
  LinkedList), reproducing each one's documented access pattern.
* :mod:`repro.workloads.zipf` — zipfian key sampling (YCSB's hot keys).
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.spec import SPEC_WORKLOADS, SpecWorkload, spec_trace
from repro.workloads.stats import TraceStats, analyze
from repro.workloads.cloud import (
    redis_trace,
    ycsb_trace,
    tpcc_trace,
    fio_write_trace,
    hashmap_trace,
    linkedlist_trace,
    CLOUD_WORKLOADS,
)

__all__ = [
    "ZipfSampler",
    "SPEC_WORKLOADS",
    "SpecWorkload",
    "spec_trace",
    "redis_trace",
    "ycsb_trace",
    "tpcc_trace",
    "fio_write_trace",
    "hashmap_trace",
    "linkedlist_trace",
    "CLOUD_WORKLOADS",
    "TraceStats",
    "analyze",
]
