"""Synthetic SPEC CPU trace generators (Table IV calibration).

Each generator reproduces the benchmark's memory intensity: its LLC MPKI
(by mixing a cache-resident hot set with cold traffic over the
benchmark's footprint), its LLC miss *rate* (cold references re-touch a
recent-page pool with the benchmark's L3 hit probability), and its
dominant access style (pointer-heavy benchmarks issue dependent loads;
streaming ones overlap).  These are what determine the IPC / miss-rate /
NVRAM-speedup comparisons of Figure 11.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, List

from repro.common.rng import make_rng
from repro.common.units import GIB, KIB
from repro.cpu.system import MemOp
from repro.engine.request import CACHE_LINE

#: average non-memory instructions between memory references
GAP = 20
#: cold accesses arrive in short sequential runs inside one page — the
#: spatial locality real codes have, which keeps TLB-walk traffic from
#: dwarfing the calibrated data-miss rate
COLD_BURST = 8
PAGE = 4 * KIB


@dataclass(frozen=True)
class SpecWorkload:
    """One Table IV row plus the behavioural knobs of its generator."""

    name: str
    suite: str
    llc_mpki: float
    footprint_bytes: int
    #: measured server LLC miss rate (Fig. 11b digitization)
    llc_miss_rate: float
    #: fraction of loads on dependence chains (pointer-heavy codes)
    dependent_frac: float
    write_frac: float

    @property
    def cold_fraction(self) -> float:
        """Fraction of memory references that must miss the LLC so the
        MPKI comes out at the Table IV value."""
        return min(1.0, self.llc_mpki * (GAP + 1) / 1000.0)

    @property
    def burst_start_prob(self) -> float:
        """Probability a non-burst op opens a cold burst such that the
        LLC MPKI lands on the Table IV value.

        Cold bursts split into fresh pages (always LLC misses) and
        recent-pool re-touches (cache hits, the pool being small enough
        to stay resident).  Every burst also costs roughly one LLC miss
        for its leaf page-table entry (GB-scale footprints put the leaf
        PTE array far beyond the L3), i.e. 1/B extra misses per cold op.
        Solving misses = f*mr + f/B = cold_fraction gives the total cold
        fraction f; with bursts of B ops, f = pB / (pB + (1 - p)) then
        solves to p = f / (B - (B - 1) f).
        """
        mr = max(1e-9, self.llc_miss_rate)
        f = self.cold_fraction / (mr + 1.0 / COLD_BURST)
        f = min(f, 0.999)
        b = COLD_BURST
        return min(1.0, f / (b - (b - 1) * f))


SPEC_WORKLOADS: List[SpecWorkload] = [
    SpecWorkload("gcc", "2006", 2.9, int(1.2 * GIB), 0.55, 0.3, 0.30),
    SpecWorkload("mcf", "2006", 27.1, int(9.1 * GIB), 0.70, 0.7, 0.25),
    SpecWorkload("sjeng", "2006", 2.7, int(0.63 * GIB), 0.35, 0.4, 0.30),
    SpecWorkload("libquantum", "2006", 3.4, int(2.3 * GIB), 0.60, 0.0, 0.25),
    SpecWorkload("omnetpp", "2006", 2.1, int(1.4 * GIB), 0.45, 0.6, 0.30),
    SpecWorkload("cactusADM", "2006", 2.0, int(2.2 * GIB), 0.40, 0.1, 0.35),
    SpecWorkload("lbm", "2006", 7.7, int(2.9 * GIB), 0.65, 0.0, 0.45),
    SpecWorkload("wrf", "2006", 2.4, int(1.0 * GIB), 0.38, 0.1, 0.35),
    SpecWorkload("gcc17", "2017", 21.5, int(1.1 * GIB), 0.68, 0.4, 0.30),
    SpecWorkload("mcf17", "2017", 26.3, int(8.7 * GIB), 0.72, 0.7, 0.25),
    SpecWorkload("omnetpp17", "2017", 2.1, int(0.96 * GIB), 0.44, 0.6, 0.30),
    SpecWorkload("deepsjeng17", "2017", 2.5, int(0.58 * GIB), 0.36, 0.4, 0.30),
    SpecWorkload("xz17", "2017", 2.7, int(1.8 * GIB), 0.42, 0.2, 0.30),
]


def spec_workload(name: str) -> SpecWorkload:
    for wl in SPEC_WORKLOADS:
        if wl.name == name:
            return wl
    raise KeyError(f"unknown SPEC workload {name!r}")


def spec_trace(name: str, nops: int, seed: int = 0,
               hot_set_bytes: int = 256 * KIB,
               recent_pool_pages: int = 256) -> Iterator[MemOp]:
    """Yield ``nops`` MemOps reproducing the benchmark's Table IV
    profile.

    Hot references cycle through a cache-resident set.  Cold references
    come as ``COLD_BURST``-line sequential runs at page granularity;
    with probability ``llc_miss_rate`` the page is fresh (an LLC miss),
    otherwise it is re-drawn from a small recent-page pool that stays
    cache-resident — approximating the benchmark's measured LLC miss
    *rate* alongside its MPKI.
    """
    wl = spec_workload(name)
    rng = make_rng(seed, f"spec-{name}")
    hot_lines = max(1, hot_set_bytes // CACHE_LINE)
    npages = max(1, wl.footprint_bytes // PAGE)
    recent: deque = deque(maxlen=recent_pool_pages)
    hot_cursor = 0
    cold_base = hot_set_bytes
    burst_left = 0
    burst_addr = 0
    p_start = wl.burst_start_prob

    for _ in range(nops):
        is_write = rng.random() < wl.write_frac
        if burst_left > 0:
            burst_left -= 1
            burst_addr += CACHE_LINE
            yield MemOp(nonmem=GAP, vaddr=burst_addr, is_write=is_write)
            continue
        if rng.random() < p_start:
            if recent and rng.random() > wl.llc_miss_rate:
                page = recent[rng.randrange(len(recent))]
            else:
                page = rng.randrange(npages)
                recent.append(page)
            burst_addr = cold_base + page * PAGE
            burst_left = COLD_BURST - 1
            dependent = (not is_write) and rng.random() < wl.dependent_frac
            yield MemOp(nonmem=GAP, vaddr=burst_addr, is_write=is_write,
                        dependent=dependent)
        else:
            hot_cursor = (hot_cursor + 1) % hot_lines
            yield MemOp(nonmem=GAP, vaddr=hot_cursor * CACHE_LINE,
                        is_write=is_write)