"""Trace introspection: summary statistics of MemOp streams.

Used to sanity-check generators against their intended profiles (the
Table IV calibration tests) and to summarize captured traces for users
deciding how to size a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.cpu.system import MemOp
from repro.engine.request import CACHE_LINE


@dataclass
class TraceStats:
    """Aggregate profile of one MemOp stream."""

    ops: int = 0
    instructions: int = 0
    writes: int = 0
    persistent_writes: int = 0
    dependent_loads: int = 0
    mkpt_hints: int = 0
    unique_lines: int = 0
    unique_pages: int = 0
    footprint_bytes: int = 0
    top_line_share: float = 0.0

    @property
    def write_fraction(self) -> float:
        return self.writes / self.ops if self.ops else 0.0

    @property
    def dependent_fraction(self) -> float:
        loads = self.ops - self.writes
        return self.dependent_loads / loads if loads else 0.0

    @property
    def mem_ratio(self) -> float:
        """Memory references per instruction."""
        return self.ops / self.instructions if self.instructions else 0.0

    def render(self) -> str:
        return "\n".join([
            f"ops:               {self.ops}",
            f"instructions:      {self.instructions}",
            f"write fraction:    {self.write_fraction:.2f} "
            f"(persistent {self.persistent_writes})",
            f"dependent loads:   {self.dependent_fraction:.2f}",
            f"mkpt hints:        {self.mkpt_hints}",
            f"touched footprint: {self.footprint_bytes} bytes "
            f"({self.unique_lines} lines / {self.unique_pages} pages)",
            f"hottest line:      {self.top_line_share:.3f} of all accesses",
        ])


def analyze(trace: Iterable[MemOp]) -> TraceStats:
    """One pass over a trace; returns its profile."""
    stats = TraceStats()
    line_counts: Dict[int, int] = {}
    pages = set()
    for op in trace:
        stats.ops += 1
        stats.instructions += op.nonmem + 1
        line = op.vaddr - op.vaddr % CACHE_LINE
        line_counts[line] = line_counts.get(line, 0) + 1
        pages.add(op.vaddr // 4096)
        if op.is_write:
            stats.writes += 1
            if op.persistent:
                stats.persistent_writes += 1
        elif op.dependent:
            stats.dependent_loads += 1
        if op.mkpt:
            stats.mkpt_hints += 1
    stats.unique_lines = len(line_counts)
    stats.unique_pages = len(pages)
    stats.footprint_bytes = len(line_counts) * CACHE_LINE
    if line_counts and stats.ops:
        stats.top_line_share = max(line_counts.values()) / stats.ops
    return stats
