"""Cloud / persistent-memory workload generators (Section V).

Each generator builds a *persistent* in-memory structure once (fixed
pointers) and then streams requests against it, reproducing the access
pattern that drives the paper's observations:

* **Redis** — zipf-skewed GETs that hash into a bucket and pointer-chase
  a fixed short chain (the 8.8x read CPI of Fig. 12a comes from these
  dependent, TLB-hostile loads);
* **YCSB** — zipfian update-heavy key-values: a handful of hot keys
  concentrate the writes (the Top10 lines of Fig. 12b);
* **TPCC** — transactional B-tree descents plus row read/write bursts;
* **fio-write** — large sequential write streams;
* **PMDK HashMap** — bucket probe then node update with persistence;
* **PMDK LinkedList** — repeated traversal of one page-strided list (the
  Pre-translation best case: every hop misses the TLB, every hop's
  pointer is stable across traversals).

Generators emit :class:`~repro.cpu.system.MemOp` records; passing
``mkpt=True`` adds Pre-translation hints to chase loads (the "modified
workload source" of Section V-D).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.rng import make_rng
from repro.common.units import KIB, MIB
from repro.cpu.system import MemOp
from repro.engine.request import CACHE_LINE
from repro.workloads.zipf import ZipfSampler

NODE = CACHE_LINE
PAGE = 4 * KIB


def _persistent_chain(key: int, footprint: int, length: int,
                      salt: str) -> List[int]:
    """Deterministic node addresses for one persistent chain: the same
    key always yields the same pointers (as a real heap would)."""
    lines = footprint // NODE
    addrs = []
    h = key * 2654435761 + 0x9E3779B9
    for i in range(length):
        h = (h * 6364136223846793005 + 1442695040888963407 + i) % (1 << 63)
        addrs.append((h % lines) * NODE)
    return addrs


def redis_trace(nops: int, footprint: int = 256 * MIB, seed: int = 0,
                mkpt: bool = False, chain_length: int = 4,
                get_ratio: float = 0.9, nkeys: int = 20_000,
                theta: float = 1.2, rest_cold: float = 0.10
                ) -> Iterator[MemOp]:
    """Redis-like GET/SET stream over persistent hash chains.

    The "rest" phase (request parsing, reply formatting, bookkeeping) is
    mostly cache-resident but touches cold metadata occasionally, as the
    real server does — the Fig. 12a comparison normalizes the read phase
    against this realistic baseline.
    """
    rng = make_rng(seed, "redis")
    zipf = ZipfSampler(nkeys, theta=theta, seed=seed)
    lines = footprint // NODE
    emitted = 0
    while emitted < nops:
        key = zipf.sample()
        is_get = rng.random() < get_ratio
        chain = _persistent_chain(key, footprint, chain_length, "redis")
        for i, vaddr in enumerate(chain):
            next_vaddr = chain[i + 1] if i + 1 < len(chain) else None
            yield MemOp(nonmem=8, vaddr=vaddr, dependent=True,
                        mkpt=mkpt and next_vaddr is not None,
                        next_vaddr=next_vaddr, phase="read")
            emitted += 1
        if not is_get:
            yield MemOp(nonmem=6, vaddr=chain[-1], is_write=True,
                        persistent=True, phase="rest")
            emitted += 1
        # request parsing / reply formatting: hot, with occasional cold
        # metadata touches (client state, expiry tables, ...)
        for i in range(2):
            if rng.random() < rest_cold:
                vaddr = rng.randrange(lines) * NODE
            else:
                vaddr = (i * NODE) % (8 * KIB)
            yield MemOp(nonmem=40, vaddr=vaddr, phase="rest")
            emitted += 1


def ycsb_trace(nops: int, footprint: int = 64 * MIB, seed: int = 0,
               update_ratio: float = 0.5, theta: float = 0.99,
               nkeys: int = 100_000, mkpt: bool = False) -> Iterator[MemOp]:
    """YCSB (workload-A-like) zipfian key-value stream."""
    rng = make_rng(seed, "ycsb")
    zipf = ZipfSampler(nkeys, theta=theta, seed=seed)
    lines = footprint // NODE
    keys = zipf.sample_many(nops)
    for i in range(nops):
        key = int(keys[i])
        vaddr = (key * 2654435761 % lines) * NODE
        phase = "top10" if key < 10 else "rest"
        if rng.random() < update_ratio:
            yield MemOp(nonmem=12, vaddr=vaddr, is_write=True,
                        persistent=True, phase=phase)
        else:
            yield MemOp(nonmem=12, vaddr=vaddr, dependent=True, mkpt=mkpt,
                        phase=phase)


def tpcc_trace(nops: int, footprint: int = 128 * MIB, seed: int = 0,
               mkpt: bool = False, nrows: int = 50_000,
               theta: float = 0.8) -> Iterator[MemOp]:
    """TPCC-like transactions: a fixed 3-level index descent to a
    (zipf-popular) row, then a read/write burst on the row's lines."""
    rng = make_rng(seed, "tpcc")
    zipf = ZipfSampler(nrows, theta=theta, seed=seed)
    lines = footprint // NODE
    emitted = 0
    while emitted < nops:
        row_key = zipf.sample()
        descent = _persistent_chain(row_key, footprint, 3, "tpcc")
        for i, vaddr in enumerate(descent):
            nxt = descent[i + 1] if i + 1 < len(descent) else None
            yield MemOp(nonmem=15, vaddr=vaddr, dependent=True,
                        mkpt=mkpt and nxt is not None, next_vaddr=nxt,
                        phase="read")
            emitted += 1
        row = (row_key * 40503 % lines) * NODE
        for j in range(4):
            yield MemOp(nonmem=10, vaddr=row + j * NODE,
                        is_write=(j >= 2), persistent=(j >= 2),
                        phase="rest")
            emitted += 1


def fio_write_trace(nops: int, footprint: int = 512 * MIB, seed: int = 0,
                    mkpt: bool = False, block: int = 4 * KIB
                    ) -> Iterator[MemOp]:
    """fio sequential-write: streams ``block``-sized sequential bursts."""
    lines_per_block = block // NODE
    nblocks = footprint // block
    emitted = 0
    cursor = 0
    while emitted < nops:
        base = (cursor % nblocks) * block
        cursor += 1
        for j in range(lines_per_block):
            yield MemOp(nonmem=4, vaddr=base + j * NODE, is_write=True,
                        persistent=True, phase="rest")
            emitted += 1
            if emitted >= nops:
                return


def hashmap_trace(nops: int, footprint: int = 128 * MIB, seed: int = 0,
                  mkpt: bool = False, nkeys: int = 60_000,
                  theta: float = 0.6) -> Iterator[MemOp]:
    """PMDK HashMap: bucket probe (dependent) then node update writes."""
    zipf = ZipfSampler(nkeys, theta=theta, seed=seed)
    emitted = 0
    while emitted < nops:
        key = zipf.sample()
        bucket, node = _persistent_chain(key, footprint, 2, "hashmap")
        yield MemOp(nonmem=10, vaddr=bucket, dependent=True,
                    mkpt=mkpt, next_vaddr=node, phase="read")
        yield MemOp(nonmem=6, vaddr=node, dependent=True, phase="read")
        yield MemOp(nonmem=6, vaddr=node, is_write=True, persistent=True,
                    phase="rest")
        emitted += 3


def linkedlist_trace(nops: int, nnodes: int = 8192, seed: int = 0,
                     mkpt: bool = False) -> Iterator[MemOp]:
    """PMDK LinkedList: repeated traversal of one persistent ring.

    Nodes are page-strided (one node per 4KB page, as pool allocators
    tend to produce for large objects), so the 32MB of touched pages
    blow out the 1536-entry STLB while the node lines themselves stay
    cache-resident — the access pattern where TLB misses, not data
    misses, dominate and Pre-translation shines (Fig. 13d/e).
    """
    rng = make_rng(seed, "linkedlist")
    order = list(range(nnodes))
    rng.shuffle(order)
    addrs = [n * PAGE for n in order]
    emitted = 0
    i = 0
    while emitted < nops:
        vaddr = addrs[i % nnodes]
        nxt = addrs[(i + 1) % nnodes]
        yield MemOp(nonmem=6, vaddr=vaddr, dependent=True,
                    mkpt=mkpt, next_vaddr=nxt, phase="read")
        emitted += 1
        i += 1


#: name -> generator registry used by the Figure 13 harness
CLOUD_WORKLOADS = {
    "fio-write": fio_write_trace,
    "ycsb": ycsb_trace,
    "tpcc": tpcc_trace,
    "hashmap": hashmap_trace,
    "redis": redis_trace,
    "linkedlist": linkedlist_trace,
}
