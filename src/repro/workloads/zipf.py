"""Zipfian sampling (the YCSB request distribution).

Precomputes the CDF with numpy so drawing a key is one binary search —
fast enough to generate hundreds of thousands of trace records.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


class ZipfSampler:
    """Draw keys in [0, n) with probability proportional to 1/rank^theta.

    ``theta=0.99`` is YCSB's default skew: a handful of keys dominate the
    request stream, which is exactly what concentrates writes on the
    Top10 cache lines in Figure 12b.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ConfigError("n must be positive")
        if theta < 0:
            raise ConfigError("theta must be non-negative")
        self.n = n
        self.theta = theta
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** theta
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """One key (0 = hottest)."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u))

    def sample_many(self, count: int) -> np.ndarray:
        """Vector of ``count`` keys."""
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u)

    def probability(self, rank: int) -> float:
        """Probability mass of the key with the given rank (0-based)."""
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])
