"""Figure 9 — VANS validation against the (digitized) Optane
measurements with microbenchmarks.

(a) pointer-chasing ld/st latency, single DIMM;
(b) the same on 6 interleaved DIMMs;
(c) RMW-buffer read amplification (simulator counter vs expectation);
(d) 256B overwrite tail latency;
(e) average accuracy on lat-ld / lat-st / bw-ld / bw-st (the paper
    reports 86.5% overall).
"""

from __future__ import annotations

from typing import List

from repro.common.units import KIB, MIB
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import accuracy
from repro.lens.microbench.overwrite import Overwrite
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride
from repro.reference.optane import (
    OVERWRITE_TAIL_INTERVAL,
    OVERWRITE_TAIL_US,
)
from repro import registry


def _regions(scale: Scale) -> List[int]:
    if scale is Scale.SMOKE:
        return [1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 1 * MIB, 8 * MIB,
                16 * MIB, 64 * MIB]
    return [64 * (1 << i) for i in range(4, 22)]


def run_latency(scale: Scale = Scale.SMOKE, ndimms: int = 1
                ) -> ExperimentResult:
    """Fig. 9a (ndimms=1) / 9b (ndimms=6): VANS vs Optane latency."""
    regions = _regions(scale)
    pc = PointerChasing(seed=9)
    ref = registry.build("optane-ref", noise=0.0)
    factory = registry.factory("vans", ndimms=ndimms)

    vans_ld = pc.latency_sweep(factory, regions, op="read")
    st_regions = [r for r in regions if r <= 1 * MIB] or regions[:4]
    vans_st = pc.latency_sweep(factory, st_regions, op="write")

    panel = "fig9a" if ndimms == 1 else "fig9b"
    result = ExperimentResult(
        panel, f"VANS vs Optane ld/st latency ({ndimms} DIMM)",
        columns=["region", "vans-ld", "optane-ld", "vans-st", "optane-st"],
    )
    ref_ld, ref_st = [], []
    for i, region in enumerate(regions):
        r_ld = ref.pc_read_latency_ns(region, ndimms=ndimms)
        ref_ld.append(r_ld)
        if i < len(st_regions):
            r_st = ref.pc_store_latency_ns(st_regions[i], ndimms=ndimms)
            ref_st.append(r_st)
            result.add_row(region, vans_ld.values[i], r_ld,
                           vans_st.values[i], r_st)
        else:
            result.add_row(region, vans_ld.values[i], r_ld, "", "")
    result.series["vans_ld"] = vans_ld
    result.series["vans_st"] = vans_st
    result.metrics["acc_lat_ld"] = accuracy(vans_ld.values, ref_ld)
    result.metrics["acc_lat_st"] = accuracy(vans_st.values, ref_st)
    result.notes = ("store deviation at small regions is expected: the "
                    "trace-mode run omits CPU on-core fence latency, as in "
                    "the paper's own validation (31.5% there).")
    return result


def run_read_amplification(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 9c: RMW-buffer read amplification counter across regions."""
    regions = [1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB]
    pc = PointerChasing(seed=10)
    result = ExperimentResult(
        "fig9c", "RMW buffer read amplification (fills/requested)",
        columns=["region", "vans amplification", "expected"],
    )
    for region in regions:
        system = registry.build("vans")
        pc.read_latency_ns(system, region)
        measured = system.rmw_read_amplification
        expected = 4.0 * max(0.0, 1.0 - min(1.0, 16 * KIB / region))
        result.add_row(region, measured, expected)
    result.notes = ("64B reads pull 256B entries once the region exceeds "
                    "the 16KB RMW buffer: amplification ramps to 4")
    return result


def run_overwrite(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 9d: overwrite tail latency, VANS vs the measured behaviour."""
    iterations = 32000 if scale is Scale.SMOKE else 120000
    res = Overwrite().run(registry.build("vans"), region_bytes=256,
                          iterations=iterations)
    tails = res.tail_indices()
    interval = res.tail_interval() or (float(tails[0]) if tails else 0.0)
    result = ExperimentResult(
        "fig9d", "overwrite tails: VANS vs Optane",
        columns=["metric", "vans", "optane(ref)"],
    )
    result.add_row("tail interval (iters)", interval,
                   float(OVERWRITE_TAIL_INTERVAL))
    result.add_row("tail magnitude (us)", res.tail_magnitude_ns() / 1000.0,
                   OVERWRITE_TAIL_US)
    result.metrics["interval_accuracy"] = accuracy(
        [interval], [float(OVERWRITE_TAIL_INTERVAL)])
    return result


def run_accuracy(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 9e: VANS accuracy over the four metrics."""
    regions = _regions(scale)
    pc = PointerChasing(seed=11)
    stride = Stride()
    ref = registry.build("optane-ref", noise=0.0)
    factory = registry.factory("vans")

    lat_ld = pc.latency_sweep(factory, regions, op="read")
    st_regions = [r for r in regions if r <= 1 * MIB] or regions[:4]
    lat_st = pc.latency_sweep(factory, st_regions, op="write")
    acc_ld = accuracy(lat_ld.values, [ref.pc_read_latency_ns(r) for r in regions])
    acc_st = accuracy(lat_st.values,
                      [ref.pc_store_latency_ns(r) for r in st_regions])
    bw_ld = stride.read_bandwidth_gbs(factory(), 4 * MIB)
    bw_st = stride.write_bandwidth_gbs(factory(), 4 * MIB, nt=True)
    acc_bw_ld = accuracy([bw_ld], [ref.bandwidth_gbs("load", "optane-1dimm")])
    acc_bw_st = accuracy([bw_st],
                         [ref.bandwidth_gbs("store-nt", "optane-1dimm")])

    result = ExperimentResult(
        "fig9e", "VANS accuracy per metric (paper: 86.5% average)",
        columns=["metric", "accuracy"],
    )
    result.add_row("lat-ld", acc_ld)
    result.add_row("lat-st", acc_st)
    result.add_row("bw-ld", acc_bw_ld)
    result.add_row("bw-st", acc_bw_st)
    avg = (acc_ld + acc_st + acc_bw_ld + acc_bw_st) / 4
    result.metrics["average_accuracy"] = avg
    return result


def run(scale: Scale = Scale.SMOKE):
    return (run_latency(scale, 1), run_latency(scale, 6),
            run_read_amplification(scale), run_overwrite(scale),
            run_accuracy(scale))
