"""Figure 5 — LENS buffer prober on the Optane-like DIMM.

(a) load/store latency per CL, 64B PC-Block, across region sizes: read
    inflections at 16KB (RMW buffer) and 16MB (AIT buffer); write
    inflections at 512B (WPQ) and 4KB (LSQ);
(b) the same with 256B PC-Blocks;
(c) read-after-write vs the sum of independent read and write latency:
    RaW >> R+W for small regions (fence + bus redirection), converging
    as the region approaches/exceeds the LSQ reach — the inclusive-
    hierarchy evidence;
(d) L2 TLB MPKI of the load test stays flat across regions, ruling out
    TLB misses as the cause of the latency inflections.
"""

from __future__ import annotations

from typing import List

from repro.common.units import KIB, MIB
from repro.cpu.tlb import TlbHierarchy
from repro.engine.stats import LatencySeries
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import find_inflections
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.probers.buffer import DEFAULT_READ_REGIONS, DEFAULT_WRITE_REGIONS
from repro import registry


def _regions(scale: Scale) -> List[int]:
    if scale is Scale.SMOKE:
        return [1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB,
                4 * MIB, 16 * MIB, 64 * MIB, 128 * MIB]
    return list(DEFAULT_READ_REGIONS)


def run_latency(scale: Scale = Scale.SMOKE, block: int = 64
                ) -> ExperimentResult:
    """Fig. 5a (block=64) / Fig. 5b (block=256)."""
    regions = _regions(scale)
    write_regions = list(DEFAULT_WRITE_REGIONS)
    pc = PointerChasing(seed=5)
    factory = registry.factory("vans")

    ld = pc.latency_sweep(factory, regions, block=block, op="read")
    st = pc.latency_sweep(factory, write_regions, block=block, op="write")

    panel = "fig5a" if block == 64 else "fig5b"
    result = ExperimentResult(
        panel, f"ld/st latency per CL (ns), {block}B PC-Block",
        columns=["region", "ld (ns)", "", "st-region", "st (ns)"],
    )
    for i in range(max(len(ld), len(st))):
        ld_part = (int(ld.xs[i]), ld.values[i]) if i < len(ld) else ("", "")
        st_part = (int(st.xs[i]), st.values[i]) if i < len(st) else ("", "")
        result.add_row(ld_part[0], ld_part[1], "|", st_part[0], st_part[1])
    result.series["ld"] = ld
    result.series["st"] = st
    result.metrics["read_inflections"] = str(find_inflections(ld))
    result.metrics["write_inflections"] = str(find_inflections(st))
    result.notes = ("expected: reads inflect at 16K/16M (RMW/AIT); "
                    "writes at 512/4K (WPQ/LSQ)")
    return result


def run_raw(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 5c: RaW vs R+W."""
    regions = [r for r in _regions(scale) if r <= 32 * MIB]
    if scale is Scale.SMOKE:
        regions = [1 * KIB, 4 * KIB, 64 * KIB, 1 * MIB, 8 * MIB, 32 * MIB]
    pc = PointerChasing(seed=6)
    raw, rpw = pc.raw_sweep(registry.factory("vans"), regions)
    result = ExperimentResult(
        "fig5c", "read-after-write roundtrip vs R+W (ns per CL)",
        columns=["region", "RaW", "R+W", "RaW/R+W"],
    )
    for (region, a), (_, b) in zip(raw, rpw):
        result.add_row(int(region), a, b, a / b if b else 0.0)
    result.series["raw"] = raw
    result.series["rpw"] = rpw
    small = raw.values[0] / max(rpw.values[0], 1e-9)
    large = raw.values[-1] / max(rpw.values[-1], 1e-9)
    result.metrics["raw_over_rpw_small"] = small
    result.metrics["raw_over_rpw_large"] = large
    result.notes = ("RaW >> R+W at small regions (mfence flushes the LSQ; "
                    "bus redirection); no fast-forward dip at 16MB, so the "
                    "buffers form an inclusive hierarchy.")
    return result


def run_tlb(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 5d: L2 TLB MPKI of the load test is flat across regions.

    Replays the pointer-chasing address stream through the TLB model.
    LENS runs in the kernel on the direct (linear) mapping, which uses
    2MB pages — modeled by scaling vaddrs so one 4KB TLB entry covers a
    2MB extent — so even a 128MB region needs only 64 translations and
    the miss rate stays flat; TLB misses cannot be what bends the
    latency curves at 16KB/16MB."""
    regions = _regions(scale)
    pc = PointerChasing(seed=5)
    series = LatencySeries("stlb-mpki")
    result = ExperimentResult(
        "fig5d", "L2 TLB MPKI during the load test",
        columns=["region", "stlb-mpki"],
    )
    instrs_per_op = 8
    hugepage_scale = (2 * MIB) // (4 * KIB)
    for region in regions:
        tlbs = TlbHierarchy()
        order = pc._block_order(region, 64, f"tlb-{region}")
        # warm pass then measured pass, like the latency measurements
        for _pass in range(2):
            if _pass == 1:
                tlbs.reset_stats()
            for addr in order:
                vaddr = addr // hugepage_scale
                needs_walk, _, _ = tlbs.translate(vaddr)
                if needs_walk:
                    tlbs.install(vaddr)
        mpki = 1000.0 * tlbs.stlb_misses / (len(order) * instrs_per_op)
        series.add(region, mpki)
        result.add_row(int(region), mpki)
    result.series["stlb_mpki"] = series
    vals = [v for v in series.values]
    spread = (max(vals) - min(vals))
    result.metrics["mpki_spread"] = spread
    result.notes = ("MPKI varies smoothly with region and shows no jump at "
                    "16KB/16MB: TLB misses do not explain the latency "
                    "inflections.")
    return result


def run(scale: Scale = Scale.SMOKE):
    return (run_latency(scale, 64), run_latency(scale, 256),
            run_raw(scale), run_tlb(scale))
