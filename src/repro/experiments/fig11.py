"""Figure 11 — full-system SPEC validation.

Per selected SPEC CPU 2006/2017 benchmark (Table IV):

(a) IPC of the DRAM-backed simulation vs the DRAM server measurement;
(b) LLC miss rate, same comparison;
(c) DRAM->NVRAM speedup (ExecTimeDRAM / ExecTimeNVRAM < 1) of
    VANS-backed and Ramulator-PCM-backed simulation vs the Optane
    server;
(d) geometric-mean accuracy: VANS ~87% vs Ramulator-PCM ~66% in the
    paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import registry
from repro.cpu import FullSystem
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import geomean
from repro.reference import SPEC_REFERENCE
from repro.workloads import spec_trace

DEFAULT_WORKLOADS = [row.name for row in SPEC_REFERENCE]


def _ops(scale: Scale) -> (int, int):
    if scale is Scale.SMOKE:
        return 25000, 8000
    return 150000, 30000


def _run_backend(workload: str, backend_factory, nops: int, warmup: int):
    system = FullSystem(backend_factory(), name=workload)
    return system.run(spec_trace(workload, nops + warmup),
                      warmup_ops=warmup)


def run(scale: Scale = Scale.SMOKE,
        workloads: Optional[List[str]] = None) -> ExperimentResult:
    """All four panels in one result table (one row per workload)."""
    workloads = workloads or DEFAULT_WORKLOADS
    nops, warmup = _ops(scale)
    by_name = {row.name: row for row in SPEC_REFERENCE}

    result = ExperimentResult(
        "fig11", "SPEC validation: simulation vs server",
        columns=["workload", "sim IPC", "srv IPC", "sim miss", "srv miss",
                 "vans spdup", "pcm spdup", "srv spdup"],
    )

    acc_ipc: List[float] = []
    acc_miss: List[float] = []
    acc_vans: List[float] = []
    acc_pcm: List[float] = []

    for name in workloads:
        ref = by_name[name]
        dram = _run_backend(
            name, registry.factory("ramulator-ddr4", frontend_ps=30_000),
            nops, warmup)
        vans = _run_backend(name, registry.factory("vans-6dimm"), nops, warmup)
        pcm = _run_backend(
            name, registry.factory("ramulator-pcm", frontend_ps=30_000),
            nops, warmup)

        vans_speedup = dram.elapsed_ps / vans.elapsed_ps
        pcm_speedup = dram.elapsed_ps / pcm.elapsed_ps

        result.add_row(name, dram.ipc, ref.dram_ipc, dram.llc_miss_rate,
                       ref.llc_miss_rate, vans_speedup, pcm_speedup,
                       ref.nvram_speedup)
        acc_ipc.append(max(0.0, 1 - abs(dram.ipc - ref.dram_ipc) / ref.dram_ipc))
        acc_miss.append(max(0.0, 1 - abs(dram.llc_miss_rate - ref.llc_miss_rate)
                            / ref.llc_miss_rate))
        acc_vans.append(max(0.0, 1 - abs(vans_speedup - ref.nvram_speedup)
                            / ref.nvram_speedup))
        acc_pcm.append(max(0.0, 1 - abs(pcm_speedup - ref.nvram_speedup)
                           / ref.nvram_speedup))

    result.metrics["ipc_accuracy_geomean"] = geomean(acc_ipc)
    result.metrics["llc_miss_accuracy_geomean"] = geomean(acc_miss)
    result.metrics["vans_speedup_accuracy_geomean"] = geomean(acc_vans)
    result.metrics["ramulator_speedup_accuracy_geomean"] = geomean(acc_pcm)
    result.notes = ("paper: VANS 87.1% vs Ramulator-PCM 65.6% geomean "
                    "speedup accuracy; IPC 61.2%, LLC miss 85.5%")
    return result
