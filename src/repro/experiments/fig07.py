"""Figure 7 — LENS policy prober: interleaving and wear-leveling.

(a) sequential-write execution time, 1 DIMM vs 6 interleaved DIMMs,
    with the 4KB-periodic pattern on the interleaved curve;
(b) 256B overwrite tail latency: a >100x spike roughly every ~14,000
    iterations (wear-leveling migration);
(c) long-tail ratio vs overwrite region size: collapses past 64KB (the
    wear-leveling block size);
(d) L2 TLB misses stay flat during the overwrite test.
"""

from __future__ import annotations

from repro.common.units import KIB
from repro.cpu.tlb import TlbHierarchy
from repro.engine.stats import LatencySeries
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import detect_drop, detect_period
from repro.lens.microbench.overwrite import Overwrite
from repro.lens.microbench.stride import Stride
from repro import registry


def run_interleaving(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 7a: sequential-write time, interleaved vs single DIMM."""
    step = 1 * KIB if scale is Scale.SMOKE else 512
    sizes = list(range(step, 16 * KIB + 1, step))
    stride = Stride()
    single = stride.sequential_write_times_us(registry.factory("vans"), sizes)
    inter = stride.sequential_write_times_us(
        registry.factory("vans-6dimm"), sizes)
    result = ExperimentResult(
        "fig7a", "sequential write execution time (us)",
        columns=["size", "1 dimm", "6 dimms"],
    )
    for (size, a), (_, b) in zip(single, inter):
        result.add_row(int(size), a, b)
    result.series["single"] = single
    result.series["interleaved"] = inter
    result.metrics["interleave_granularity"] = detect_period(inter)
    result.metrics["speedup_at_16k"] = single.values[-1] / inter.values[-1]
    result.notes = "expected: 4KB-periodic pattern; interleaved is faster"
    return result


def run_tail_latency(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 7b: overwrite tail latency (256B region)."""
    iterations = 32000 if scale is Scale.SMOKE else 200000
    ow = Overwrite()
    res = ow.run(registry.build("vans"), region_bytes=256, iterations=iterations)
    tails = res.tail_indices()
    result = ExperimentResult(
        "fig7b", "256B overwrite: per-write latency tails",
        columns=["tail at iteration", "latency (us)"],
    )
    for idx in tails[:12]:
        result.add_row(idx, res.iteration_ns[idx] / 1000.0)
    result.metrics["median_us"] = res.median_ns / 1000.0
    result.metrics["tail_interval_iters"] = res.tail_interval() or (
        float(tails[0]) if tails else 0.0)
    result.metrics["tail_magnitude_us"] = res.tail_magnitude_ns() / 1000.0
    result.metrics["tail_over_median"] = (
        res.tail_magnitude_ns() / res.median_ns if res.median_ns else 0.0)
    result.notes = ("expected: a >100x tail roughly every ~14,000 "
                    "iterations (wear-leveling migration)")
    return result


def run_tail_ratio(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 7c: long-tail ratio vs overwrite region size."""
    regions = [256, 1 * KIB, 8 * KIB, 64 * KIB, 128 * KIB, 512 * KIB]
    total = (6 if scale is Scale.SMOKE else 32) * 1024 * 1024
    ow = Overwrite()
    scan = ow.tail_scan(registry.factory("vans"), regions, total_bytes=total)
    result = ExperimentResult(
        "fig7c", "ratio of long-tail writes (per mille) vs region",
        columns=["region", "tail ratio (permille)"],
    )
    for region, ratio in scan:
        result.add_row(int(region), ratio)
    result.series["tail_ratio"] = scan
    result.metrics["wear_block_detected"] = detect_drop(scan)
    result.notes = "expected: flat until 64KB, then collapses"
    return result


def run_tlb(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 7d: TLB misses per unit time stay flat during overwrite.

    The overwrite test touches one 256B region, so after the first
    access the TLB never misses — wear-leveling tails cannot be TLB
    artifacts."""
    tlbs = TlbHierarchy()
    misses_per_window = []
    window = 2000
    for i in range(10 * window):
        needs_walk, _, _ = tlbs.translate((i % 4) * 64)
        if needs_walk:
            tlbs.install((i % 4) * 64)
        if (i + 1) % window == 0:
            misses_per_window.append(tlbs.stlb_misses)
    deltas = [b - a for a, b in zip([0] + misses_per_window,
                                    misses_per_window)]
    result = ExperimentResult(
        "fig7d", "L2 TLB misses per window during overwrite",
        columns=["window", "stlb misses"],
    )
    series = LatencySeries("stlb-misses")
    for i, d in enumerate(deltas):
        result.add_row(i, d)
        series.add(i, d)
    result.series["misses"] = series
    result.metrics["max_misses_after_warmup"] = max(deltas[1:]) if len(deltas) > 1 else 0
    result.notes = "flat (zero) after the first window"
    return result


def run(scale: Scale = Scale.SMOKE):
    return (run_interleaving(scale), run_tail_latency(scale),
            run_tail_ratio(scale), run_tlb(scale))
