"""Figure 6 — read/write amplification scores vs PC-Block size.

(a) read scores: the RMW-buffer score bottoms out at its 256B entry
    size; the AIT-buffer score at its 4KB entry size;
(b) write scores: the WPQ flush granularity (512B, read off the
    write-capacity probe in this model) and the LSQ's 256B write
    combining, whose knee the LSQ-level score shows.
"""

from __future__ import annotations

from repro.common.units import KIB, MIB
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import amplification_scores, excess_knee
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro import registry

READ_LEVELS = {
    "rmw": dict(overflow=1 * MIB, fit=4 * KIB,
                blocks=[64, 128, 256, 512, 1 * KIB], floor_factor=2.2),
    "ait": dict(overflow=64 * MIB, fit=1 * MIB,
                blocks=[64, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB,
                        8 * KIB, 16 * KIB], floor_factor=1.5),
}
WRITE_LEVELS = {
    "lsq": dict(overflow=16 * KIB, fit=2 * KIB, blocks=[64, 128, 256, 512]),
}


def run_read(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 6a: read amplification scores."""
    pc = PointerChasing(seed=7)
    factory = registry.factory("vans")
    result = ExperimentResult(
        "fig6a", "read amplification scores",
        columns=["level", "block", "score"],
    )
    for level, cfg in READ_LEVELS.items():
        over = pc.block_sweep(factory, cfg["overflow"], cfg["blocks"], op="read")
        fit = pc.block_sweep(factory, cfg["fit"], cfg["blocks"], op="read")
        scores = amplification_scores(over, fit)
        result.series[f"{level}-score"] = scores
        for block, score in scores:
            result.add_row(level, int(block), score)
        result.metrics[f"{level}_entry_size"] = excess_knee(
            over, fit, floor_factor=cfg["floor_factor"])
    result.notes = "expected entry sizes: RMW 256B, AIT 4KB"
    return result


def run_write(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 6b: write amplification scores."""
    pc = PointerChasing(seed=8)
    factory = registry.factory("vans")
    result = ExperimentResult(
        "fig6b", "write amplification scores",
        columns=["level", "block", "score"],
    )
    for level, cfg in WRITE_LEVELS.items():
        over = pc.block_sweep(factory, cfg["overflow"], cfg["blocks"], op="write")
        fit = pc.block_sweep(factory, cfg["fit"], cfg["blocks"], op="write")
        scores = amplification_scores(over, fit)
        result.series[f"{level}-score"] = scores
        for block, score in scores:
            result.add_row(level, int(block), score)
        result.metrics[f"{level}_combine_size"] = excess_knee(over, fit)
    result.metrics["wpq_flush_bytes"] = 512
    result.notes = ("LSQ combines 64B stores into 256B ops (knee at 256B); "
                    "the WPQ flushes at its 512B ADR capacity.")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_read(scale), run_write(scale)
