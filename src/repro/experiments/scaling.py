"""Multi-thread scaling study (Section VI discussion).

The paper's related-work analysis observes that multi-threaded accesses
do not scale on Optane systems, attributing it to contention in the WPQ
and RMW buffer — and adds that "the contention in the AIT Buffer and the
LSQ exacerbates this scaling issue".  This experiment reproduces that
behaviour: N concurrent access streams share one DIMM, and aggregate
bandwidth saturates (reads) or collapses per-thread (random writes) well
before N reaches typical core counts, while the same streams on a plain
DRAM model keep scaling.
"""

from __future__ import annotations

from typing import Callable, List

from repro import registry
from repro.common.rng import make_rng
from repro.common.units import MIB
from repro.engine.request import CACHE_LINE
from repro.experiments.common import ExperimentResult, Scale
from repro.target import TargetSystem

THREAD_COUNTS = (1, 2, 4, 8, 16)


def _aggregate_read_bw(target: TargetSystem, nthreads: int,
                       ops_per_thread: int, footprint: int,
                       seed: int = 0) -> float:
    """N dependent pointer-chasing readers sharing one memory system."""
    rngs = [make_rng(seed, f"scale-r{i}") for i in range(nthreads)]
    lines = footprint // CACHE_LINE
    clocks = [0] * nthreads
    remaining = [ops_per_thread] * nthreads
    total_ops = 0
    while any(remaining):
        # the thread whose last access completed earliest issues next
        tid = min((t for t in range(nthreads) if remaining[t]),
                  key=lambda t: clocks[t])
        addr = rngs[tid].randrange(lines) * CACHE_LINE
        clocks[tid] = target.read(addr, clocks[tid])
        remaining[tid] -= 1
        total_ops += 1
    elapsed = max(clocks)
    return total_ops * CACHE_LINE / (elapsed / 1e12) / 1e9


def _aggregate_write_bw(target: TargetSystem, nthreads: int,
                        ops_per_thread: int, footprint: int,
                        seed: int = 0) -> float:
    """N random 64B nt-store streams sharing one memory system."""
    rngs = [make_rng(seed, f"scale-w{i}") for i in range(nthreads)]
    lines = footprint // CACHE_LINE
    clocks = [0] * nthreads
    remaining = [ops_per_thread] * nthreads
    total_ops = 0
    while any(remaining):
        tid = min((t for t in range(nthreads) if remaining[t]),
                  key=lambda t: clocks[t])
        addr = rngs[tid].randrange(lines) * CACHE_LINE
        clocks[tid] = target.write(addr, clocks[tid])
        remaining[tid] -= 1
        total_ops += 1
    elapsed = max(max(clocks), target.fence(max(clocks)))
    return total_ops * CACHE_LINE / (elapsed / 1e12) / 1e9


def run_read_scaling(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Aggregate dependent-read bandwidth vs thread count."""
    ops = 600 if scale is Scale.SMOKE else 4000
    result = ExperimentResult(
        "scaling-read", "aggregate pointer-chasing read bandwidth (GB/s)",
        columns=["threads", "nvram GB/s", "dram GB/s"],
    )
    nvram_bw: List[float] = []
    for n in THREAD_COUNTS:
        nv = _aggregate_read_bw(registry.build("vans"), n, ops, 64 * MIB)
        dr = _aggregate_read_bw(registry.build("ramulator-ddr4"), n, ops,
                                64 * MIB)
        nvram_bw.append(nv)
        result.add_row(n, nv, dr)
    # scaling efficiency from 1 to max threads
    result.metrics["nvram_scaling_16t"] = nvram_bw[-1] / nvram_bw[0]
    result.metrics["ideal_scaling_16t"] = float(THREAD_COUNTS[-1])
    result.notes = ("NVRAM read bandwidth saturates at the internal "
                    "engine/AIT rate; DRAM keeps scaling (the paper's "
                    "thread-scaling pathology)")
    return result


def run_write_scaling(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Aggregate random nt-store bandwidth vs thread count."""
    ops = 500 if scale is Scale.SMOKE else 3000
    result = ExperimentResult(
        "scaling-write", "aggregate random 64B nt-store bandwidth (GB/s)",
        columns=["threads", "nvram GB/s", "per-thread GB/s"],
    )
    values: List[float] = []
    for n in THREAD_COUNTS:
        bw = _aggregate_write_bw(registry.build("vans"), n, ops, 64 * MIB)
        values.append(bw)
        result.add_row(n, bw, bw / n)
    result.metrics["nvram_scaling_16t"] = values[-1] / values[0]
    peak = max(values)
    result.metrics["peak_threads"] = THREAD_COUNTS[values.index(peak)]
    result.notes = ("random small writes serialize in the RMW engine and "
                    "the WPQ: total bandwidth flatlines and per-thread "
                    "bandwidth collapses")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_read_scaling(scale), run_write_scaling(scale)
