"""Ablation studies of the design choices DESIGN.md calls out.

Each ablation disables one modeled mechanism and shows which paper
behaviour disappears:

* **write combining off** — sequential-write bandwidth collapses toward
  the random-write rate (every 64B store becomes a read-modify-write);
* **RMW engine hold off** — the >4KB store plateau flattens: nothing
  serializes random small writes, contradicting the measured curve;
* **wear counter decay on** — the Figure 7c frequency drop moves/blurs
  because concentrated writers age out before the threshold;
* **interleaving off** — the Figure 7a periodic pattern disappears
  (covered by fig7a itself; kept here for the speedup number).
"""

from __future__ import annotations

from repro import registry
from repro.common.units import KIB
from repro.engine.request import CACHE_LINE
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride
from repro.media.wear import WearConfig, WearLeveler
from repro.vans import VansConfig


def run_write_combining(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Sequential write bandwidth with and without LSQ combining."""
    stride = Stride()
    total = 128 * KIB if scale is Scale.SMOKE else 1024 * KIB
    with_wc = stride.write_bandwidth_gbs(registry.build("vans"), total)
    without = stride.write_bandwidth_gbs(
        registry.build("vans", combine_window_ps=0), total)
    result = ExperimentResult(
        "ablation-combining", "LSQ write combining: seq nt-store bandwidth",
        columns=["configuration", "GB/s"],
    )
    result.add_row("combining on (default)", with_wc)
    result.add_row("combining off", without)
    result.metrics["combining_gain"] = with_wc / without
    result.notes = ("without 64B->256B combining every sequential store "
                    "pays a full RMW cycle")
    return result


def run_engine_hold(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Random-store plateau with and without the serial RMW engine."""
    pc = PointerChasing(seed=21)
    region = 64 * KIB
    held = pc.write_latency_ns(registry.build("vans"), region)
    released = pc.write_latency_ns(
        registry.build("vans", engine_holds_partial=False), region)
    result = ExperimentResult(
        "ablation-engine-hold",
        "serial RMW engine: random 64B store latency at 64KB region",
        columns=["configuration", "ns per CL"],
    )
    result.add_row("engine holds partial ops (default)", held)
    result.add_row("engine releases immediately", released)
    result.metrics["plateau_ratio"] = held / released
    result.notes = ("the measured >4KB store plateau needs the serial "
                    "RMW engine; releasing ops early flattens the curve "
                    "below the device's behaviour")
    return result


def run_wear_decay(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Hot-block counter aging vs plain accumulation.

    With plain counters (default) a concentrated overwrite migrates
    every ``threshold`` writes; with aggressive aging the counters never
    reach the threshold and the Fig. 7b tails disappear — evidence that
    the device does *not* age its wear counters on this pattern.
    """
    threshold = 500
    writes = threshold * 4

    def count_migrations(decay: int) -> int:
        wear = WearLeveler(
            WearConfig(migrate_threshold=threshold,
                       decay_window_writes=decay),
            capacity_bytes=64 * 1024 * 1024,
        )
        now = 0
        for _ in range(writes):
            ready, _m = wear.on_write(0, now)
            now = max(now, ready) + 1
        return wear.migrations

    plain = count_migrations(0)
    aged = count_migrations(threshold // 2)
    result = ExperimentResult(
        "ablation-wear-decay", "wear counter aging: migrations per "
        f"{writes} concentrated writes",
        columns=["configuration", "migrations"],
    )
    result.add_row("plain counters (default)", plain)
    result.add_row("aggressive aging", aged)
    result.metrics["plain_migrations"] = plain
    result.metrics["aged_migrations"] = aged
    result.notes = ("plain accumulation reproduces the ~threshold-spaced "
                    "tails of Fig. 7b; aging suppresses them")
    return result


def run_critical_block_first(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """AIT-miss latency: critical-256B-first vs waiting for the full 4KB
    fill (computed analytically from the media model timings)."""
    cfg = VansConfig().dimm
    gran = cfg.media.granularity
    units = cfg.ait.entry_bytes // gran
    from repro.vans.dimm import MEDIA_PORT_READ_PS
    critical_first_ps = cfg.media.read_ps + MEDIA_PORT_READ_PS
    full_fill_ps = cfg.media.read_ps + units * MEDIA_PORT_READ_PS
    result = ExperimentResult(
        "ablation-critical-first",
        "AIT miss service: critical-block-first vs full-fill-wait",
        columns=["policy", "first-256B ready (ns)"],
    )
    result.add_row("critical block first (default)", critical_first_ps / 1000)
    result.add_row("wait for full 4KB fill", full_fill_ps / 1000)
    result.metrics["latency_saving_ns"] = (full_fill_ps
                                           - critical_first_ps) / 1000
    result.notes = ("without critical-block-first the media tier would "
                    "sit ~225ns higher than the measured curve")
    return result


def run(scale: Scale = Scale.SMOKE):
    return (run_write_combining(scale), run_engine_hold(scale),
            run_wear_decay(scale), run_critical_block_first(scale))
