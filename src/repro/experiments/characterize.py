"""Figure 4 / Figure 8 — the full LENS characterization of the DIMM.

Runs all three probers against VANS and compares every inferred
parameter with the configured ground truth — the reproduction of the
paper's "blue numbers" (LENS-characterized) against its "red numbers"
(vendor-documented).
"""

from __future__ import annotations

from repro.common.units import pretty_size
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.report import characterize
from repro import registry
from repro.vans import VansConfig


def run(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    config = VansConfig()
    iterations = 32000 if scale is Scale.SMOKE else 120000
    chara = characterize(
        registry.factory("vans", config=config),
        interleaved_factory=registry.factory("vans-6dimm", config=config),
        overwrite_iterations=iterations,
    )
    truth = config.describe()
    truth["rmw_entry"] = config.dimm.rmw.entry_bytes
    truth["ait_entry"] = config.dimm.ait.entry_bytes
    verdicts = chara.compare_to_truth(truth)

    result = ExperimentResult(
        "fig8", "LENS-characterized parameters vs ground truth",
        columns=["parameter", "lens", "truth", "correct"],
    )

    def row(name, measured, expected):
        result.add_row(name, measured, expected,
                       "yes" if verdicts.get(name) else "NO")

    caps = chara.buffers.read_capacities + [0, 0]
    wcaps = chara.buffers.write_capacities + [0, 0]
    ents = chara.buffers.read_entry_sizes + [0, 0]
    row("rmw_capacity", pretty_size(caps[0]), pretty_size(truth["rmw_bytes"]))
    row("ait_capacity", pretty_size(caps[1]), pretty_size(truth["ait_bytes"]))
    row("wpq_capacity", pretty_size(wcaps[0]), pretty_size(truth["wpq_bytes"]))
    row("lsq_capacity", pretty_size(wcaps[1]), pretty_size(truth["lsq_bytes"]))
    row("rmw_entry", pretty_size(ents[0]), pretty_size(truth["rmw_entry"]))
    row("ait_entry", pretty_size(ents[1]), pretty_size(truth["ait_entry"]))
    if chara.policy is not None:
        row("wear_block", pretty_size(chara.policy.migration_granularity),
            pretty_size(truth["wear_block_bytes"]))
        row("interleave", pretty_size(chara.policy.interleave_granularity),
            pretty_size(truth["interleave_bytes"]))
    result.add_row("hierarchy", chara.buffers.hierarchy, "inclusive",
                   "yes" if chara.buffers.hierarchy == "inclusive" else "NO")

    correct = sum(1 for v in verdicts.values() if v)
    result.metrics["parameters_correct"] = correct
    result.metrics["parameters_total"] = len(verdicts)
    result.notes = chara.render()
    return result
