"""Figure 13 — Lazy cache and Pre-translation evaluation.

(d) speedup of Lazy cache / Pre-translation / both over the unmodified
    baseline on fio-write, YCSB, TPCC, HashMap, Redis and LinkedList
    (paper: Pre-translation 1-48%, Lazy cache ~10% average, both 8-49%);
(e) Pre-translation's TLB MPKI, normalized to baseline (paper: -17%
    average).

Wear thresholds are scaled to trace length as in Figure 12.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import registry
from repro.cpu import FullSystem, SystemReport
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import geomean
from repro.optim import PreTranslation
from repro.vans import VansSystem
from repro.workloads import CLOUD_WORKLOADS

DEFAULT_WORKLOADS = ["fio-write", "ycsb", "tpcc", "hashmap", "redis",
                     "linkedlist"]


def _vans(lazy: bool, migrate_threshold: int = 250) -> VansSystem:
    return registry.build("vans", lazy_cache=lazy,
                          migrate_threshold=migrate_threshold)


def _run(workload: str, nops: int, warmup: int, lazy: bool,
         pretrans: bool) -> SystemReport:
    trace_fn = CLOUD_WORKLOADS[workload]
    pt = PreTranslation() if pretrans else None
    system = FullSystem(_vans(lazy), name=workload, pretranslation=pt)
    trace = trace_fn(nops + warmup, mkpt=pretrans)
    return system.run(trace, warmup_ops=warmup)


def run(scale: Scale = Scale.SMOKE,
        workloads: Optional[List[str]] = None) -> ExperimentResult:
    """Fig. 13d+e in one table."""
    workloads = workloads or DEFAULT_WORKLOADS
    nops = 40000 if scale is Scale.SMOKE else 250000
    warmup = nops // 2

    result = ExperimentResult(
        "fig13", "Lazy cache / Pre-translation speedups + TLB MPKI",
        columns=["workload", "lazy spdup", "pretrans spdup", "both spdup",
                 "tlb mpki (pt/base)"],
    )
    pt_speedups: List[float] = []
    lazy_speedups: List[float] = []
    tlb_ratios: List[float] = []

    for name in workloads:
        base = _run(name, nops, warmup, lazy=False, pretrans=False)
        lazy = _run(name, nops, warmup, lazy=True, pretrans=False)
        pretrans = _run(name, nops, warmup, lazy=False, pretrans=True)
        both = _run(name, nops, warmup, lazy=True, pretrans=True)

        s_lazy = base.elapsed_ps / max(1, lazy.elapsed_ps)
        s_pt = base.elapsed_ps / max(1, pretrans.elapsed_ps)
        s_both = base.elapsed_ps / max(1, both.elapsed_ps)
        tlb_ratio = (pretrans.stlb_mpki / base.stlb_mpki
                     if base.stlb_mpki else 1.0)

        result.add_row(name, s_lazy, s_pt, s_both, tlb_ratio)
        lazy_speedups.append(s_lazy)
        pt_speedups.append(s_pt)
        tlb_ratios.append(tlb_ratio)

    result.metrics["lazy_geomean_speedup"] = geomean(lazy_speedups)
    result.metrics["pretrans_geomean_speedup"] = geomean(pt_speedups)
    result.metrics["tlb_mpki_mean_ratio"] = (
        sum(tlb_ratios) / len(tlb_ratios) if tlb_ratios else 1.0)
    result.notes = ("paper: Pre-translation 1-48% speedup, -17% TLB MPKI "
                    "avg; Lazy cache ~10% avg; both 8-49%")
    return result
