"""Bandwidth matrix: access pattern x operation, NVRAM vs DRAM.

The systematic version of the bandwidth observations threaded through
the paper (Figs. 1a, 5c, the FIRM bus-redirection citation [69], the
Memtable-vs-FLEX discussion in Section VI): sequential access wins big
on NVRAM because of 256B combining/fills, random small writes are the
worst case, and *mixed* read/write streams underperform the sum of
their parts because of bus redirection and queue under-utilization.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import registry
from repro.common.rng import make_rng
from repro.common.units import MIB
from repro.engine.request import CACHE_LINE
from repro.experiments.common import ExperimentResult, Scale
from repro.target import TargetSystem

FOOTPRINT = 64 * MIB


def _stream_bw(target: TargetSystem, nops: int, pattern: str, op: str,
               seed: int) -> float:
    """GB/s of one access stream; reads use a 16-deep window, writes
    issue on accept."""
    rng = make_rng(seed, f"bwm-{pattern}-{op}")
    lines = FOOTPRINT // CACHE_LINE
    from collections import deque
    window: deque = deque()
    now = 0
    last = 0
    for i in range(nops):
        if pattern == "seq":
            addr = (i % lines) * CACHE_LINE
        else:
            addr = rng.randrange(lines) * CACHE_LINE
        if op == "read":
            do_write = False
        elif op == "write":
            do_write = True
        else:  # mixed: alternate
            do_write = bool(i % 2)
        if do_write:
            now = target.write(addr, now)
            last = max(last, now)
        else:
            if len(window) >= 16:
                gate = window.popleft()
                if gate > now:
                    now = gate
            done = target.read(addr, now)
            window.append(done)
            last = max(last, done)
    last = max(last, target.fence(now))
    return nops * CACHE_LINE / (last / 1e12) / 1e9


def run(scale: Scale = Scale.SMOKE,
        factory: Optional[Callable[[], TargetSystem]] = None
        ) -> ExperimentResult:
    factory = factory or registry.factory("vans")
    nops = 1200 if scale is Scale.SMOKE else 8000
    patterns = ("seq", "rand")
    ops = ("read", "write", "mixed")
    result = ExperimentResult(
        "bandwidth-matrix",
        "bandwidth (GB/s) by pattern x operation",
        columns=["pattern", "op", "nvram GB/s", "dram GB/s"],
    )
    cells = {}
    for pattern in patterns:
        for op in ops:
            nv = _stream_bw(factory(), nops, pattern, op, seed=51)
            dr = _stream_bw(
                registry.build("ramulator-ddr4", frontend_ps=30_000), nops,
                pattern, op, seed=51)
            cells[(pattern, op)] = nv
            result.add_row(pattern, op, nv, dr)

    result.metrics["seq_over_rand_write"] = (
        cells[("seq", "write")] / cells[("rand", "write")])
    # mixed underperforms the average of its pure components
    pure_avg = (cells[("rand", "read")] + cells[("rand", "write")]) / 2
    result.metrics["mixed_vs_pure_avg"] = (
        cells[("rand", "mixed")] / pure_avg)
    result.notes = ("sequential >> random for NVRAM writes (combining); "
                    "mixed r/w trails the average of its parts (bus "
                    "redirection + queue under-utilization, Sec. III-C)")
    return result
