"""Run every reproduced table/figure and render the results.

``python -m repro.experiments.runner [--paper] [ids...]``
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import ablation, bandwidth_matrix, characterize
from repro.experiments import energy_study, fig01, fig03, fig05, fig06
from repro.experiments import fig07, fig09, fig10, fig11, fig12, fig13
from repro.experiments import numa_study, scaling, tables
from repro.experiments.common import ExperimentResult, Scale

#: experiment id -> callable returning one result or a tuple of results
REGISTRY: Dict[str, Callable] = {
    "fig1": fig01.run,
    "fig3": fig03.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig7": fig07.run,
    "fig8": characterize.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "tables": tables.run,
    # beyond the paper's figures: supporting studies
    "scaling": scaling.run,
    "ablation": ablation.run,
    "energy": energy_study.run,
    "numa": numa_study.run,
    "bandwidth": bandwidth_matrix.run,
}


def run_experiment(exp_id: str, scale: Scale = Scale.SMOKE
                   ) -> List[ExperimentResult]:
    """Run one experiment id; returns its results as a flat list."""
    out = REGISTRY[exp_id](scale)
    if isinstance(out, ExperimentResult):
        return [out]
    return list(out)


def run_all(scale: Scale = Scale.SMOKE, ids: List[str] = None
            ) -> List[ExperimentResult]:
    results: List[ExperimentResult] = []
    for exp_id in (ids or REGISTRY):
        results.extend(run_experiment(exp_id, scale))
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", choices=list(REGISTRY) + [[]],
                        help="experiment ids (default: all)")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale sweeps (slow)")
    parser.add_argument("--plot", action="store_true",
                        help="draw ASCII charts of each result's series")
    parser.add_argument("--json", metavar="PATH",
                        help="also export all results as JSON")
    args = parser.parse_args(argv)
    scale = Scale.PAPER if args.paper else Scale.SMOKE
    collected = []
    for exp_id in (args.ids or list(REGISTRY)):
        start = time.time()
        for result in run_experiment(exp_id, scale):
            collected.append(result)
            print(result.render())
            if args.plot and result.series:
                from repro.experiments.plotting import line_plot
                plot = line_plot(result.series)
                if plot:
                    print()
                    print(plot)
            print()
        print(f"[{exp_id} done in {time.time() - start:.1f}s]\n")
    if args.json:
        from repro.experiments.export import save_json
        count = save_json(collected, args.json)
        print(f"[exported {count} results to {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
