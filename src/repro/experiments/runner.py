"""Run every reproduced table/figure and render the results.

``python -m repro.experiments.runner [--paper] [--workers N] [ids...]``

The runner owns four cross-cutting concerns so individual experiments
don't have to:

* **metadata** — every experiment id maps to an :class:`ExperimentSpec`
  (paper section, estimated smoke-scale cost, registry targets it
  builds) used for ``--list``, ``--filter``, and parallel scheduling;
* **instrumentation** — each experiment runs inside an
  :class:`~repro.instrument.Collection`, so every system the target
  registry builds for it is gathered and its merged observability
  snapshot attached to each :class:`ExperimentResult`;
* **determinism** — per-experiment RNG is re-seeded from
  ``(seed, experiment id)`` before each run, so ``--workers N`` is
  bit-identical to a serial run regardless of scheduling order;
* **crash tolerance** — with ``--timeout``/``--retries`` each experiment
  runs in a watchdogged worker process: a hang is terminated and
  recorded as ``status="timeout"``, a crash captures the remote
  traceback onto a ``status="failed"`` placeholder, bounded retries
  re-execute with the identical seed (exponential backoff), and specs
  that keep failing are ``status="quarantined"``.  A campaign always
  completes with one result per experiment; the exit code distinguishes
  all-ok (0), partial (4), and total (1) failure.
"""

from __future__ import annotations

import argparse
import multiprocessing
import multiprocessing.connection
import random
import sys
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.common.errors import UnknownExperimentError
from repro.experiments import ablation, bandwidth_matrix, characterize
from repro.experiments import energy_study, fig01, fig03, fig05, fig06
from repro.experiments import fig07, fig09, fig10, fig11, fig12, fig13
from repro.experiments import numa_study, scaling, tables
from repro.experiments.common import ExperimentResult, Scale
from repro.faults.injector import FaultInjector
from repro.faults.injector import session as faults_session
from repro.faults.persistence import PersistenceChecker
from repro.faults.plan import FaultPlan
from repro.faults.report import fault_report
from repro.flight import (FlightRecord, FlightRecorder, breakdowns,
                          save_chrome_trace)
from repro.flight import session as flight_session
from repro.instrument import Collection
from repro.telemetry import TelemetrySampler
from repro.telemetry import session as telemetry_session

DEFAULT_SEED = 42

#: first-retry delay; attempt ``n`` waits ``BACKOFF_S * 2**(n-1)``
BACKOFF_S = 0.5

#: exit codes main() returns for campaign outcomes
EXIT_OK = 0
EXIT_ALL_FAILED = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 4


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one runnable experiment id."""

    id: str
    run: Callable[[Scale], object]
    section: str
    description: str
    #: rough smoke-scale runtime in seconds (for --list and for
    #: longest-first scheduling under --workers)
    est_cost: float
    #: registry target names the experiment builds
    targets: Tuple[str, ...]


def _spec(id, run, section, description, est_cost, targets):
    return ExperimentSpec(id, run, section, description, est_cost,
                          tuple(targets))


#: experiment id -> spec (insertion order is the canonical run order)
REGISTRY: Dict[str, ExperimentSpec] = {s.id: s for s in [
    _spec("fig1", fig01.run, "II",
          "pointer-chase latency tiers vs. prior simulators", 1.5,
          ["vans", "ramulator-ddr4"]),
    _spec("fig3", fig03.run, "III",
          "existing emulators/simulators miss the buffer tiers", 2.0,
          ["vans", "pmep", "quartz", "dramsim2-ddr3", "ramulator-ddr4",
           "ramulator-pcm"]),
    _spec("fig5", fig05.run, "IV-B",
          "LENS buffer prober: read/write capacity inflections", 2.0,
          ["vans"]),
    _spec("fig6", fig06.run, "IV-B",
          "LENS entry-size and flush-granularity probes", 2.0,
          ["vans"]),
    _spec("fig7", fig07.run, "IV-C",
          "LENS policy prober: overwrite tails, wear leveling", 5.0,
          ["vans"]),
    _spec("fig8", characterize.run, "IV",
          "full LENS characterization of the simulated DIMM", 14.0,
          ["vans", "vans-6dimm"]),
    _spec("fig9", fig09.run, "V-B",
          "VANS validation: latency curves vs. Optane reference", 4.0,
          ["vans", "optane-ref"]),
    _spec("fig10", fig10.run, "V-B",
          "capacity/DIMM-count scaling validation", 6.0,
          ["vans"]),
    _spec("fig11", fig11.run, "V-B",
          "bandwidth validation across read/write mixes", 11.0,
          ["vans-6dimm"]),
    _spec("fig12", fig12.run, "V-C",
          "wear-leveling case study (YCSB-like hot lines)", 6.0,
          ["vans"]),
    _spec("fig13", fig13.run, "V-C",
          "Lazy cache case study: tail latency reduction", 51.0,
          ["vans", "vans-lazy"]),
    _spec("tables", tables.run, "tables",
          "Tables III-V: buffer inventory and timing parameters", 3.0,
          ["vans", "ramulator-ddr4"]),
    # beyond the paper's figures: supporting studies
    _spec("scaling", scaling.run, "extra",
          "throughput scaling with DIMM population", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("ablation", ablation.run, "extra",
          "microarchitectural ablations (combine window, engine hold)", 5.0,
          ["vans"]),
    _spec("energy", energy_study.run, "extra",
          "energy model over the access mix", 3.0,
          ["vans"]),
    _spec("numa", numa_study.run, "extra",
          "near/far socket latency study", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("bandwidth", bandwidth_matrix.run, "extra",
          "bandwidth matrix across patterns and targets", 4.0,
          ["vans", "ramulator-ddr4"]),
]}


def validate_ids(ids: Sequence[str]) -> List[str]:
    """Check every id against the registry; raises
    :class:`UnknownExperimentError` naming the known ids otherwise."""
    for exp_id in ids:
        if exp_id not in REGISTRY:
            raise UnknownExperimentError(exp_id, REGISTRY)
    return list(ids)


def filter_ids(pattern: str) -> List[str]:
    """Ids whose id, section, or description contains ``pattern``."""
    needle = pattern.lower()
    return [s.id for s in REGISTRY.values()
            if needle in s.id.lower()
            or needle in s.section.lower()
            or needle in s.description.lower()]


def make_flight_recorder(spec: Optional[Mapping[str, object]]
                         ) -> Optional[FlightRecorder]:
    """Build a per-experiment recorder from CLI-level flight options
    (``None`` -> recording off)."""
    if spec is None:
        return None
    return FlightRecorder(**spec)


def run_experiment(exp_id: str, scale: Scale = Scale.SMOKE,
                   seed: int = DEFAULT_SEED,
                   flight: Optional[FlightRecorder] = None,
                   telemetry: Optional[Mapping[str, object]] = None,
                   faults: Optional[Mapping[str, object]] = None
                   ) -> List[ExperimentResult]:
    """Run one experiment id; returns its results as a flat list.

    Re-seeds the global RNG from ``(seed, exp_id)`` (experiments draw
    all randomness through explicitly seeded generators already; this is
    belt and braces for anything stdlib-level) and attaches the merged
    instrumentation snapshot of every registry-built system to each
    result, plus the wall-clock seconds the run took (``result.wall_s``).

    With a ``flight`` recorder, every system the registry builds during
    the run records per-request spans onto it, and each result carries
    the sampling summary plus per-op latency breakdowns in
    ``result.flight``.

    ``telemetry`` is a sampler *spec* (``{"interval_ps": ...}``), not a
    live sampler: the per-experiment :class:`TelemetrySampler` is always
    constructed here, so serial and worker-process runs build identical
    samplers and their timelines stay bit-identical.  Each result then
    carries ``{"summary": ..., "timeline": ...}`` in ``result.telemetry``.

    ``faults`` is likewise a *plan document* (``repro.faultplan/1``
    mapping, or a :class:`FaultPlan`), not a live injector: the
    per-experiment :class:`FaultInjector` + :class:`PersistenceChecker`
    are constructed here and attached to every system the registry
    builds, and each result carries the fault report (injection
    counters plus the persistence audit when a power cut triggered) in
    ``result.faults``.
    """
    spec = REGISTRY.get(exp_id)
    if spec is None:
        raise UnknownExperimentError(exp_id, REGISTRY)
    random.seed(f"repro-exp:{seed}:{exp_id}")
    start = time.time()
    session = flight_session(flight) if flight is not None else nullcontext()
    sampler = TelemetrySampler(**telemetry) if telemetry is not None else None
    tel_session = (telemetry_session(sampler) if sampler is not None
                   else nullcontext())
    injector: Optional[FaultInjector] = None
    if faults is not None:
        plan = (faults if isinstance(faults, FaultPlan)
                else FaultPlan.from_dict(faults))
        injector = FaultInjector(plan, checker=PersistenceChecker())
    fa_session = (faults_session(injector) if injector is not None
                  else nullcontext())
    with session, tel_session, fa_session:
        with Collection() as collection:
            out = spec.run(scale)
            results = [out] if isinstance(out, ExperimentResult) else list(out)
            snapshot = collection.merged()
    wall_s = time.time() - start
    flight_summary: Dict[str, object] = {}
    if flight is not None:
        flight_summary = {
            "sampling": flight.sampling_summary(),
            "breakdowns": {op: bd.as_dict()
                           for op, bd in breakdowns(flight.records).items()},
        }
    telemetry_doc: Dict[str, object] = {}
    if sampler is not None:
        telemetry_doc = {"summary": sampler.summary(),
                         "timeline": sampler.timeline.as_dict()}
    faults_doc: Dict[str, object] = {}
    if injector is not None:
        faults_doc = fault_report(injector)
    for result in results:
        result.instrumentation = dict(snapshot)
        result.flight = dict(flight_summary)
        result.telemetry = dict(telemetry_doc)
        result.faults = dict(faults_doc)
        result.wall_s = wall_s
    return results


def run_all(scale: Scale = Scale.SMOKE, ids: Optional[List[str]] = None,
            seed: int = DEFAULT_SEED, workers: int = 1,
            telemetry: Optional[Dict[str, object]] = None,
            faults: Optional[Mapping[str, object]] = None,
            timeout_s: Optional[float] = None, retries: int = 0
            ) -> List[ExperimentResult]:
    """Run experiments (all by default), serial or fan-out.

    Results come back in registry order either way; with ``workers > 1``
    each experiment runs in its own process but is bit-identical to the
    serial run because all experiment randomness is seeded per id and
    telemetry/fault sessions are built per experiment from the same
    specs.  With ``timeout_s`` or ``retries`` set, experiments run under
    the crash-tolerant process scheduler even at ``workers=1`` (a
    watchdog needs process isolation); a plain serial run still degrades
    gracefully — an experiment that raises becomes a ``status="failed"``
    placeholder instead of aborting the campaign.
    """
    ids = validate_ids(ids) if ids else list(REGISTRY)
    if workers <= 1 and timeout_s is None and not retries:
        results: List[ExperimentResult] = []
        for exp_id in ids:
            try:
                results.extend(run_experiment(exp_id, scale, seed,
                                              telemetry=telemetry,
                                              faults=faults))
            except Exception:
                results.append(_failure_result(
                    exp_id, "failed", traceback.format_exc(), attempts=1))
        return results
    by_id = _run_parallel(ids, scale, seed, workers,
                          telemetry_spec=telemetry, faults_spec=faults,
                          timeout_s=timeout_s, retries=retries)
    return [r for exp_id in ids for r in by_id[exp_id][0]]


#: job tuple: (exp_id, scale_value, seed, flight_spec, telemetry_spec,
#:             faults_spec) — retries re-send the identical tuple, so
#: re-executions preserve the seed and every session spec bit-for-bit.
_Job = Tuple[str, str, int, Optional[Dict[str, object]],
             Optional[Dict[str, object]], Optional[Dict[str, object]]]


def _worker(job: _Job) -> Tuple[str, List[ExperimentResult], float,
                                List[FlightRecord]]:
    exp_id, scale_value, seed, flight_spec, telemetry_spec, faults_spec = job
    start = time.time()
    recorder = make_flight_recorder(flight_spec)
    results = run_experiment(exp_id, Scale(scale_value), seed,
                             flight=recorder, telemetry=telemetry_spec,
                             faults=faults_spec)
    records = recorder.records if recorder is not None else []
    return exp_id, results, time.time() - start, records


def _campaign_child(conn, job: _Job) -> None:
    """Worker-process entry: run one job, ship outcome over the pipe.

    The remote traceback is stringified here — exception objects from
    experiment code don't always unpickle in the parent, and the
    original stack is gone by then anyway (the lost-traceback bug this
    replaces ``ProcessPoolExecutor`` to fix).
    """
    try:
        conn.send(("ok", _worker(job)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _failure_result(exp_id: str, status: str, error: str,
                    attempts: int) -> ExperimentResult:
    """Placeholder result for an experiment that never produced one."""
    spec = REGISTRY.get(exp_id)
    result = ExperimentResult(
        experiment=exp_id,
        title=spec.description if spec is not None else exp_id,
        notes="no data: experiment did not complete",
    )
    result.status = status
    result.error = error
    result.attempts = attempts
    return result


@dataclass
class _Attempt:
    """One scheduled execution of an experiment id."""

    exp_id: str
    attempt: int          # 1-based
    not_before: float     # wall-clock gate (exponential backoff)


def _mp_context():
    """Prefer fork (cheap, inherits registry mutations made by callers
    such as tests registering synthetic specs); fall back to the
    platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_parallel(ids: List[str], scale: Scale, seed: int, workers: int,
                  flight_spec: Optional[Dict[str, object]] = None,
                  heartbeat: bool = False,
                  telemetry_spec: Optional[Dict[str, object]] = None,
                  faults_spec: Optional[Mapping[str, object]] = None,
                  timeout_s: Optional[float] = None,
                  retries: int = 0,
                  backoff_s: float = BACKOFF_S,
                  ) -> Dict[str, Tuple[List[ExperimentResult], float,
                                       List[FlightRecord]]]:
    """Crash-tolerant process fan-out; longest-first for packing.

    Each experiment runs in its own watchdogged process:

    * ``timeout_s`` — a worker past its deadline is terminated and the
      attempt recorded as a timeout;
    * ``retries`` — failed/timed-out attempts are re-executed with the
      identical job tuple (seed preserved) after exponential backoff
      (``backoff_s * 2**(attempt-1)``), up to ``retries`` extra times;
    * quarantine — an experiment that exhausts its retries is recorded
      as ``status="quarantined"`` (``"failed"``/``"timeout"`` when no
      retries were requested) with the last remote traceback attached,
      and the campaign continues: every id always gets an entry.

    With ``heartbeat`` the parent prints a ``[done k/n]`` stderr line as
    each experiment settles — with wall-clock elapsed and an ETA
    weighted by the remaining experiments' ``est_cost`` — so long
    parallel runs stay observable (worker processes can't share the
    parent's progress stream).
    """
    order = sorted(ids, key=lambda i: -REGISTRY[i].est_cost)
    total_cost = sum(REGISTRY[i].est_cost for i in order) or 1.0
    by_id: Dict[str, Tuple[List[ExperimentResult], float,
                           List[FlightRecord]]] = {}
    wall_start = time.time()
    done_cost = 0.0
    done = 0
    ctx = _mp_context()
    if isinstance(faults_spec, FaultPlan):
        faults_spec = faults_spec.to_dict()

    pending: List[_Attempt] = [_Attempt(i, 1, 0.0) for i in order]
    #: receiving pipe end -> (process, attempt, start wall-clock)
    running: Dict[Any, Tuple[Any, _Attempt, float]] = {}

    def settle(exp_id: str, payload, elapsed: float, status: str,
               error: str, attempt: int) -> None:
        nonlocal done, done_cost
        if status == "ok":
            results, records = payload
            for result in results:
                result.attempts = attempt
        else:
            results = [_failure_result(exp_id, status, error, attempt)]
            records = []
        by_id[exp_id] = (results, elapsed, records)
        done += 1
        done_cost += REGISTRY[exp_id].est_cost
        if heartbeat:
            wall = time.time() - wall_start
            if 0 < done_cost < total_cost:
                eta_note = (f" eta ~"
                            f"{wall * (total_cost - done_cost) / done_cost:.0f}s")
            else:
                eta_note = ""
            note = "" if status == "ok" else f" [{status.upper()}]"
            print(f"[done {done}/{len(order)}] {exp_id}{note} "
                  f"({elapsed:.1f}s) elapsed {wall:.1f}s{eta_note}",
                  file=sys.stderr, flush=True)

    def fail(attempt: _Attempt, status: str, error: str,
             elapsed: float) -> None:
        if attempt.attempt <= retries:
            delay = backoff_s * (2 ** (attempt.attempt - 1))
            pending.append(_Attempt(attempt.exp_id, attempt.attempt + 1,
                                    time.time() + delay))
            if heartbeat:
                print(f"[retry {attempt.exp_id}: attempt "
                      f"{attempt.attempt} {status}; backing off "
                      f"{delay:.1f}s]", file=sys.stderr, flush=True)
            return
        final = "quarantined" if retries > 0 else status
        settle(attempt.exp_id, None, elapsed, final, error, attempt.attempt)

    def launch(attempt: _Attempt) -> None:
        job: _Job = (attempt.exp_id, scale.value, seed, flight_spec,
                     telemetry_spec,
                     dict(faults_spec) if faults_spec is not None else None)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_campaign_child, args=(child_conn, job),
                           daemon=True)
        proc.start()
        child_conn.close()
        running[parent_conn] = (proc, attempt, time.time())

    while pending or running:
        now = time.time()
        # launch every runnable attempt while worker slots are free
        while len(running) < max(1, workers):
            ready = [a for a in pending if a.not_before <= now]
            if not ready:
                break
            nxt = ready[0]
            pending.remove(nxt)
            launch(nxt)

        if not running:
            # everything pending is in a backoff window; sleep it out
            gate = min(a.not_before for a in pending)
            time.sleep(max(0.0, min(gate - time.time(), backoff_s)))
            continue

        # wait for a completion, the nearest watchdog deadline, or the
        # nearest backoff gate — whichever comes first
        wait_s: Optional[float] = None
        if timeout_s is not None:
            nearest = min(start + timeout_s
                          for _, _, start in running.values())
            wait_s = max(0.0, nearest - time.time())
        if pending:
            gate = min(a.not_before for a in pending)
            gap = max(0.0, gate - time.time())
            wait_s = gap if wait_s is None else min(wait_s, gap)
        fired = multiprocessing.connection.wait(list(running), wait_s)

        for conn in fired:
            proc, attempt, started = running.pop(conn)
            elapsed = time.time() - started
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                kind, payload = ("error",
                                 f"worker died without reporting "
                                 f"(exit code {proc.exitcode})")
            conn.close()
            proc.join()
            if kind == "ok":
                exp_id, results, wall, records = payload
                settle(exp_id, (results, records), wall, "ok", "",
                       attempt.attempt)
            else:
                fail(attempt, "failed", payload, elapsed)

        if timeout_s is not None:
            now = time.time()
            expired = [conn for conn, (_, _, started) in running.items()
                       if now - started >= timeout_s]
            for conn in expired:
                proc, attempt, started = running.pop(conn)
                proc.terminate()
                proc.join()
                conn.close()
                fail(attempt, "timeout",
                     f"experiment exceeded --timeout {timeout_s}s "
                     f"(attempt {attempt.attempt}); worker terminated",
                     now - started)
    return by_id


def campaign_exit_code(results: Sequence[ExperimentResult]) -> int:
    """0 when every result is ok, 1 when none are, 4 when partial."""
    if not results:
        return EXIT_ALL_FAILED
    ok = sum(1 for r in results if r.status == "ok")
    if ok == len(results):
        return EXIT_OK
    return EXIT_ALL_FAILED if ok == 0 else EXIT_PARTIAL


def _print_listing() -> None:
    width = max(len(i) for i in REGISTRY)
    print(f"{'id'.ljust(width)}  sect    ~cost  targets / description")
    for spec in REGISTRY.values():
        print(f"{spec.id.ljust(width)}  {spec.section:6s} "
              f"{spec.est_cost:5.0f}s  {', '.join(spec.targets)}")
        print(f"{''.ljust(width)}                 {spec.description}")


def _print_result(result: ExperimentResult, plot: bool) -> None:
    print(result.render())
    if plot and result.series:
        from repro.experiments.plotting import line_plot
        chart = line_plot(result.series)
        if chart:
            print()
            print(chart)
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", metavar="id",
                        help="experiment ids (default: all; see --list)")
    parser.add_argument("--list", action="store_true", dest="list_ids",
                        help="list known experiments and exit")
    parser.add_argument("--filter", metavar="PATTERN",
                        help="run ids whose id/section/description "
                             "contains PATTERN")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale sweeps (slow)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run experiments in N parallel processes "
                             "(bit-identical to serial)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed for per-experiment RNG")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="watchdog: terminate any experiment running "
                             "longer than S seconds (status=timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-execute failed/timed-out experiments up "
                             "to N times (same seed, exponential backoff); "
                             "still-failing specs are quarantined")
    parser.add_argument("--faults", metavar="PATH",
                        help="run the campaign under a fault plan "
                             "(repro.faultplan/1 JSON; see repro-faults)")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                        help="with --faults, override the plan seed; "
                             "alone, run under a randomized plan "
                             "generated from seed N")
    parser.add_argument("--plot", action="store_true",
                        help="draw ASCII charts of each result's series")
    parser.add_argument("--json", metavar="PATH",
                        help="also export all results (including "
                             "instrumentation snapshots) as JSON")
    parser.add_argument("--flight", action="store_true",
                        help="record per-request flight spans and print "
                             "per-op latency breakdowns")
    parser.add_argument("--flight-sample", type=int, default=0, metavar="N",
                        help="sample 1 in N requests (implies --flight)")
    parser.add_argument("--flight-out", metavar="PATH",
                        help="export sampled records as a Chrome/Perfetto "
                             "trace.json (implies --flight)")
    from repro.tools.telemetry_opts import (add_telemetry_args,
                                            report_telemetry,
                                            telemetry_spec_from_args)
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    if args.list_ids:
        _print_listing()
        return 0

    try:
        ids = validate_ids(args.ids) if args.ids else list(REGISTRY)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        matched = [i for i in filter_ids(args.filter) if i in ids]
        if not matched:
            print(f"error: --filter {args.filter!r} matches no experiment",
                  file=sys.stderr)
            return 2
        ids = matched

    scale = Scale.PAPER if args.paper else Scale.SMOKE
    flight_spec: Optional[Dict[str, object]] = None
    if args.flight or args.flight_sample or args.flight_out:
        if args.flight_sample > 1:
            flight_spec = {"mode": "every", "every": args.flight_sample}
        else:
            flight_spec = {"mode": "all"}
    telemetry_spec = telemetry_spec_from_args(args)

    faults_spec: Optional[Dict[str, object]] = None
    if args.faults or args.fault_seed is not None:
        from repro.common.errors import FaultPlanError
        from repro.faults.plan import load_plan, random_plan
        try:
            if args.faults:
                plan = load_plan(args.faults)
                if args.fault_seed is not None:
                    plan = dc_replace(plan, seed=args.fault_seed)
            else:
                plan = random_plan(args.fault_seed)
        except FaultPlanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        faults_spec = plan.to_dict()

    collected: List[ExperimentResult] = []
    all_records: List[FlightRecord] = []
    crash_tolerant = (args.workers > 1 or args.timeout is not None
                      or args.retries > 0)
    if crash_tolerant:
        by_id = _run_parallel(ids, scale, args.seed, args.workers,
                              flight_spec=flight_spec, heartbeat=True,
                              telemetry_spec=telemetry_spec,
                              faults_spec=faults_spec,
                              timeout_s=args.timeout, retries=args.retries)
        for exp_id in ids:
            results, elapsed, records = by_id[exp_id]
            all_records.extend(records)
            for result in results:
                collected.append(result)
                _print_result(result, args.plot)
            print(f"[{exp_id} done in {elapsed:.1f}s]\n")
    else:
        for exp_id in ids:
            start = time.time()
            recorder = make_flight_recorder(flight_spec)
            try:
                results = run_experiment(exp_id, scale, args.seed,
                                         flight=recorder,
                                         telemetry=telemetry_spec,
                                         faults=faults_spec)
            except Exception:
                results = [_failure_result(exp_id, "failed",
                                           traceback.format_exc(),
                                           attempts=1)]
            for result in results:
                collected.append(result)
                _print_result(result, args.plot)
            if recorder is not None:
                all_records.extend(recorder.records)
            print(f"[{exp_id} done in {time.time() - start:.1f}s]\n")

    if telemetry_spec is not None:
        report_telemetry(collected, args)
    if flight_spec is not None:
        for op, breakdown in breakdowns(all_records).items():
            print(breakdown.render())
            print()
    if args.flight_out:
        events = save_chrome_trace(all_records, args.flight_out)
        print(f"[exported {events} trace events to {args.flight_out}]")
    if args.json:
        from repro.experiments.export import save_json
        count = save_json(collected, args.json)
        print(f"[exported {count} results to {args.json}]")
    failed = [r for r in collected if r.status != "ok"]
    if failed:
        print(f"[{len(failed)}/{len(collected)} result(s) not ok: "
              + ", ".join(f"{r.experiment}={r.status}" for r in failed)
              + "]", file=sys.stderr)
    return campaign_exit_code(collected)


if __name__ == "__main__":
    sys.exit(main())
