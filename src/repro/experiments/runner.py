"""Run every reproduced table/figure and render the results.

``python -m repro.experiments.runner [--paper] [--workers N] [ids...]``

The runner owns three cross-cutting concerns so individual experiments
don't have to:

* **metadata** — every experiment id maps to an :class:`ExperimentSpec`
  (paper section, estimated smoke-scale cost, registry targets it
  builds) used for ``--list``, ``--filter``, and parallel scheduling;
* **instrumentation** — each experiment runs inside an
  :class:`~repro.instrument.Collection`, so every system the target
  registry builds for it is gathered and its merged observability
  snapshot attached to each :class:`ExperimentResult`;
* **determinism** — per-experiment RNG is re-seeded from
  ``(seed, experiment id)`` before each run, so ``--workers N`` is
  bit-identical to a serial run regardless of scheduling order.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import UnknownExperimentError
from repro.experiments import ablation, bandwidth_matrix, characterize
from repro.experiments import energy_study, fig01, fig03, fig05, fig06
from repro.experiments import fig07, fig09, fig10, fig11, fig12, fig13
from repro.experiments import numa_study, scaling, tables
from repro.experiments.common import ExperimentResult, Scale
from repro.flight import (FlightRecord, FlightRecorder, breakdowns,
                          save_chrome_trace)
from repro.flight import session as flight_session
from repro.instrument import Collection
from repro.telemetry import TelemetrySampler
from repro.telemetry import session as telemetry_session

DEFAULT_SEED = 42


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one runnable experiment id."""

    id: str
    run: Callable[[Scale], object]
    section: str
    description: str
    #: rough smoke-scale runtime in seconds (for --list and for
    #: longest-first scheduling under --workers)
    est_cost: float
    #: registry target names the experiment builds
    targets: Tuple[str, ...]


def _spec(id, run, section, description, est_cost, targets):
    return ExperimentSpec(id, run, section, description, est_cost,
                          tuple(targets))


#: experiment id -> spec (insertion order is the canonical run order)
REGISTRY: Dict[str, ExperimentSpec] = {s.id: s for s in [
    _spec("fig1", fig01.run, "II",
          "pointer-chase latency tiers vs. prior simulators", 1.5,
          ["vans", "ramulator-ddr4"]),
    _spec("fig3", fig03.run, "III",
          "existing emulators/simulators miss the buffer tiers", 2.0,
          ["vans", "pmep", "quartz", "dramsim2-ddr3", "ramulator-ddr4",
           "ramulator-pcm"]),
    _spec("fig5", fig05.run, "IV-B",
          "LENS buffer prober: read/write capacity inflections", 2.0,
          ["vans"]),
    _spec("fig6", fig06.run, "IV-B",
          "LENS entry-size and flush-granularity probes", 2.0,
          ["vans"]),
    _spec("fig7", fig07.run, "IV-C",
          "LENS policy prober: overwrite tails, wear leveling", 5.0,
          ["vans"]),
    _spec("fig8", characterize.run, "IV",
          "full LENS characterization of the simulated DIMM", 14.0,
          ["vans", "vans-6dimm"]),
    _spec("fig9", fig09.run, "V-B",
          "VANS validation: latency curves vs. Optane reference", 4.0,
          ["vans", "optane-ref"]),
    _spec("fig10", fig10.run, "V-B",
          "capacity/DIMM-count scaling validation", 6.0,
          ["vans"]),
    _spec("fig11", fig11.run, "V-B",
          "bandwidth validation across read/write mixes", 11.0,
          ["vans-6dimm"]),
    _spec("fig12", fig12.run, "V-C",
          "wear-leveling case study (YCSB-like hot lines)", 6.0,
          ["vans"]),
    _spec("fig13", fig13.run, "V-C",
          "Lazy cache case study: tail latency reduction", 51.0,
          ["vans", "vans-lazy"]),
    _spec("tables", tables.run, "tables",
          "Tables III-V: buffer inventory and timing parameters", 3.0,
          ["vans", "ramulator-ddr4"]),
    # beyond the paper's figures: supporting studies
    _spec("scaling", scaling.run, "extra",
          "throughput scaling with DIMM population", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("ablation", ablation.run, "extra",
          "microarchitectural ablations (combine window, engine hold)", 5.0,
          ["vans"]),
    _spec("energy", energy_study.run, "extra",
          "energy model over the access mix", 3.0,
          ["vans"]),
    _spec("numa", numa_study.run, "extra",
          "near/far socket latency study", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("bandwidth", bandwidth_matrix.run, "extra",
          "bandwidth matrix across patterns and targets", 4.0,
          ["vans", "ramulator-ddr4"]),
]}


def validate_ids(ids: Sequence[str]) -> List[str]:
    """Check every id against the registry; raises
    :class:`UnknownExperimentError` naming the known ids otherwise."""
    for exp_id in ids:
        if exp_id not in REGISTRY:
            raise UnknownExperimentError(exp_id, REGISTRY)
    return list(ids)


def filter_ids(pattern: str) -> List[str]:
    """Ids whose id, section, or description contains ``pattern``."""
    needle = pattern.lower()
    return [s.id for s in REGISTRY.values()
            if needle in s.id.lower()
            or needle in s.section.lower()
            or needle in s.description.lower()]


def make_flight_recorder(spec: Optional[Mapping[str, object]]
                         ) -> Optional[FlightRecorder]:
    """Build a per-experiment recorder from CLI-level flight options
    (``None`` -> recording off)."""
    if spec is None:
        return None
    return FlightRecorder(**spec)


def run_experiment(exp_id: str, scale: Scale = Scale.SMOKE,
                   seed: int = DEFAULT_SEED,
                   flight: Optional[FlightRecorder] = None,
                   telemetry: Optional[Mapping[str, object]] = None
                   ) -> List[ExperimentResult]:
    """Run one experiment id; returns its results as a flat list.

    Re-seeds the global RNG from ``(seed, exp_id)`` (experiments draw
    all randomness through explicitly seeded generators already; this is
    belt and braces for anything stdlib-level) and attaches the merged
    instrumentation snapshot of every registry-built system to each
    result, plus the wall-clock seconds the run took (``result.wall_s``).

    With a ``flight`` recorder, every system the registry builds during
    the run records per-request spans onto it, and each result carries
    the sampling summary plus per-op latency breakdowns in
    ``result.flight``.

    ``telemetry`` is a sampler *spec* (``{"interval_ps": ...}``), not a
    live sampler: the per-experiment :class:`TelemetrySampler` is always
    constructed here, so serial and worker-process runs build identical
    samplers and their timelines stay bit-identical.  Each result then
    carries ``{"summary": ..., "timeline": ...}`` in ``result.telemetry``.
    """
    spec = REGISTRY.get(exp_id)
    if spec is None:
        raise UnknownExperimentError(exp_id, REGISTRY)
    random.seed(f"repro-exp:{seed}:{exp_id}")
    start = time.time()
    session = flight_session(flight) if flight is not None else nullcontext()
    sampler = TelemetrySampler(**telemetry) if telemetry is not None else None
    tel_session = (telemetry_session(sampler) if sampler is not None
                   else nullcontext())
    with session, tel_session:
        with Collection() as collection:
            out = spec.run(scale)
            results = [out] if isinstance(out, ExperimentResult) else list(out)
            snapshot = collection.merged()
    wall_s = time.time() - start
    flight_summary: Dict[str, object] = {}
    if flight is not None:
        flight_summary = {
            "sampling": flight.sampling_summary(),
            "breakdowns": {op: bd.as_dict()
                           for op, bd in breakdowns(flight.records).items()},
        }
    telemetry_doc: Dict[str, object] = {}
    if sampler is not None:
        telemetry_doc = {"summary": sampler.summary(),
                         "timeline": sampler.timeline.as_dict()}
    for result in results:
        result.instrumentation = dict(snapshot)
        result.flight = dict(flight_summary)
        result.telemetry = dict(telemetry_doc)
        result.wall_s = wall_s
    return results


def run_all(scale: Scale = Scale.SMOKE, ids: Optional[List[str]] = None,
            seed: int = DEFAULT_SEED, workers: int = 1,
            telemetry: Optional[Dict[str, object]] = None
            ) -> List[ExperimentResult]:
    """Run experiments (all by default), serial or fan-out.

    Results come back in registry order either way; with ``workers > 1``
    each experiment runs in its own process but is bit-identical to the
    serial run because all experiment randomness is seeded per id and
    telemetry samplers are built per experiment from the same spec.
    """
    ids = validate_ids(ids) if ids else list(REGISTRY)
    if workers <= 1:
        results: List[ExperimentResult] = []
        for exp_id in ids:
            results.extend(run_experiment(exp_id, scale, seed,
                                          telemetry=telemetry))
        return results
    by_id = _run_parallel(ids, scale, seed, workers,
                          telemetry_spec=telemetry)
    return [r for exp_id in ids for r in by_id[exp_id][0]]


def _worker(job: Tuple[str, str, int, Optional[Dict[str, object]],
                       Optional[Dict[str, object]]]
            ) -> Tuple[str, List[ExperimentResult], float,
                       List[FlightRecord]]:
    exp_id, scale_value, seed, flight_spec, telemetry_spec = job
    start = time.time()
    recorder = make_flight_recorder(flight_spec)
    results = run_experiment(exp_id, Scale(scale_value), seed,
                             flight=recorder, telemetry=telemetry_spec)
    records = recorder.records if recorder is not None else []
    return exp_id, results, time.time() - start, records


def _run_parallel(ids: List[str], scale: Scale, seed: int, workers: int,
                  flight_spec: Optional[Dict[str, object]] = None,
                  heartbeat: bool = False,
                  telemetry_spec: Optional[Dict[str, object]] = None
                  ) -> Dict[str, Tuple[List[ExperimentResult], float,
                                       List[FlightRecord]]]:
    """Fan experiments out over processes; longest-first for packing.

    With ``heartbeat`` the parent prints a ``[done k/n]`` stderr line as
    each future completes — with wall-clock elapsed and an ETA weighted
    by the remaining experiments' ``est_cost`` — so long parallel runs
    stay observable (worker processes can't share the parent's progress
    stream).
    """
    order = sorted(ids, key=lambda i: -REGISTRY[i].est_cost)
    total_cost = sum(REGISTRY[i].est_cost for i in order) or 1.0
    by_id: Dict[str, Tuple[List[ExperimentResult], float,
                           List[FlightRecord]]] = {}
    wall_start = time.time()
    done_cost = 0.0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(_worker, (i, scale.value, seed, flight_spec,
                                         telemetry_spec)): i
                   for i in order}
        done = 0
        for future in as_completed(futures):
            exp_id, results, elapsed, records = future.result()
            by_id[exp_id] = (results, elapsed, records)
            done += 1
            done_cost += REGISTRY[exp_id].est_cost
            if heartbeat:
                wall = time.time() - wall_start
                if done_cost < total_cost and done_cost > 0:
                    eta = wall * (total_cost - done_cost) / done_cost
                    eta_note = f" eta ~{eta:.0f}s"
                else:
                    eta_note = ""
                print(f"[done {done}/{len(order)}] {exp_id} "
                      f"({elapsed:.1f}s) elapsed {wall:.1f}s{eta_note}",
                      file=sys.stderr, flush=True)
    return by_id


def _print_listing() -> None:
    width = max(len(i) for i in REGISTRY)
    print(f"{'id'.ljust(width)}  sect    ~cost  targets / description")
    for spec in REGISTRY.values():
        print(f"{spec.id.ljust(width)}  {spec.section:6s} "
              f"{spec.est_cost:5.0f}s  {', '.join(spec.targets)}")
        print(f"{''.ljust(width)}                 {spec.description}")


def _print_result(result: ExperimentResult, plot: bool) -> None:
    print(result.render())
    if plot and result.series:
        from repro.experiments.plotting import line_plot
        chart = line_plot(result.series)
        if chart:
            print()
            print(chart)
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", metavar="id",
                        help="experiment ids (default: all; see --list)")
    parser.add_argument("--list", action="store_true", dest="list_ids",
                        help="list known experiments and exit")
    parser.add_argument("--filter", metavar="PATTERN",
                        help="run ids whose id/section/description "
                             "contains PATTERN")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale sweeps (slow)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run experiments in N parallel processes "
                             "(bit-identical to serial)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed for per-experiment RNG")
    parser.add_argument("--plot", action="store_true",
                        help="draw ASCII charts of each result's series")
    parser.add_argument("--json", metavar="PATH",
                        help="also export all results (including "
                             "instrumentation snapshots) as JSON")
    parser.add_argument("--flight", action="store_true",
                        help="record per-request flight spans and print "
                             "per-op latency breakdowns")
    parser.add_argument("--flight-sample", type=int, default=0, metavar="N",
                        help="sample 1 in N requests (implies --flight)")
    parser.add_argument("--flight-out", metavar="PATH",
                        help="export sampled records as a Chrome/Perfetto "
                             "trace.json (implies --flight)")
    from repro.tools.telemetry_opts import (add_telemetry_args,
                                            report_telemetry,
                                            telemetry_spec_from_args)
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    if args.list_ids:
        _print_listing()
        return 0

    try:
        ids = validate_ids(args.ids) if args.ids else list(REGISTRY)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        matched = [i for i in filter_ids(args.filter) if i in ids]
        if not matched:
            print(f"error: --filter {args.filter!r} matches no experiment",
                  file=sys.stderr)
            return 2
        ids = matched

    scale = Scale.PAPER if args.paper else Scale.SMOKE
    flight_spec: Optional[Dict[str, object]] = None
    if args.flight or args.flight_sample or args.flight_out:
        if args.flight_sample > 1:
            flight_spec = {"mode": "every", "every": args.flight_sample}
        else:
            flight_spec = {"mode": "all"}
    telemetry_spec = telemetry_spec_from_args(args)

    collected: List[ExperimentResult] = []
    all_records: List[FlightRecord] = []
    if args.workers > 1:
        by_id = _run_parallel(ids, scale, args.seed, args.workers,
                              flight_spec=flight_spec, heartbeat=True,
                              telemetry_spec=telemetry_spec)
        for exp_id in ids:
            results, elapsed, records = by_id[exp_id]
            all_records.extend(records)
            for result in results:
                collected.append(result)
                _print_result(result, args.plot)
            print(f"[{exp_id} done in {elapsed:.1f}s]\n")
    else:
        for exp_id in ids:
            start = time.time()
            recorder = make_flight_recorder(flight_spec)
            for result in run_experiment(exp_id, scale, args.seed,
                                         flight=recorder,
                                         telemetry=telemetry_spec):
                collected.append(result)
                _print_result(result, args.plot)
            if recorder is not None:
                all_records.extend(recorder.records)
            print(f"[{exp_id} done in {time.time() - start:.1f}s]\n")

    if telemetry_spec is not None:
        report_telemetry(collected, args)
    if flight_spec is not None:
        for op, breakdown in breakdowns(all_records).items():
            print(breakdown.render())
            print()
    if args.flight_out:
        events = save_chrome_trace(all_records, args.flight_out)
        print(f"[exported {events} trace events to {args.flight_out}]")
    if args.json:
        from repro.experiments.export import save_json
        count = save_json(collected, args.json)
        print(f"[exported {count} results to {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
