"""Run every reproduced table/figure and render the results.

``python -m repro.experiments.runner [--paper] [--workers N] [ids...]``

The execution core — the experiment registry, per-experiment seeding,
instrumentation/telemetry/fault session plumbing, worker-process entry
points — lives in :mod:`repro.experiments.exec` so the ``repro-serve``
session daemon can drive the same code without pulling in this CLI.
This module keeps the *campaign* concerns:

* **scheduling** — serial or ``--workers N`` process fan-out,
  longest-first packing, bit-identical to serial either way;
* **crash tolerance** — with ``--timeout``/``--retries`` each experiment
  runs in a watchdogged worker process: a hang is terminated and
  recorded as ``status="timeout"``, a crash captures the remote
  traceback onto a ``status="failed"`` placeholder, bounded retries
  re-execute with the identical seed (exponential backoff), and specs
  that keep failing are ``status="quarantined"``.  A campaign always
  completes with one result per experiment; the exit code distinguishes
  all-ok (0), partial (4), and total (1) failure;
* **rendering/export** — aligned-text tables, ASCII plots, flight
  breakdowns, telemetry reports, JSON export.
"""

from __future__ import annotations

import argparse
import multiprocessing.connection
import sys
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import UnknownExperimentError
# Re-exported execution core: tests and tools import these names from
# here, and some monkeypatch this module's attributes (REGISTRY is
# mutated in place, so it must stay the *same* dict object as exec's).
from repro.experiments.exec import (  # noqa: F401
    BACKOFF_S,
    DEFAULT_SEED,
    EXIT_ALL_FAILED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    REGISTRY,
    ExperimentSpec,
    _campaign_child,
    _failure_result,
    _Job,
    _mp_context,
    _spec,
    _worker,
    campaign_exit_code,
    filter_ids,
    make_flight_recorder,
    run_experiment,
    validate_ids,
)
from repro.experiments.common import ExperimentResult, Scale
from repro.faults.plan import FaultPlan
from repro.flight import FlightRecord, breakdowns, save_chrome_trace


def run_all(scale: Scale = Scale.SMOKE, ids: Optional[List[str]] = None,
            seed: int = DEFAULT_SEED, workers: int = 1,
            telemetry: Optional[Dict[str, object]] = None,
            faults: Optional[Mapping[str, object]] = None,
            timeout_s: Optional[float] = None, retries: int = 0
            ) -> List[ExperimentResult]:
    """Run experiments (all by default), serial or fan-out.

    Results come back in registry order either way; with ``workers > 1``
    each experiment runs in its own process but is bit-identical to the
    serial run because all experiment randomness is seeded per id and
    telemetry/fault sessions are built per experiment from the same
    specs.  With ``timeout_s`` or ``retries`` set, experiments run under
    the crash-tolerant process scheduler even at ``workers=1`` (a
    watchdog needs process isolation); a plain serial run still degrades
    gracefully — an experiment that raises becomes a ``status="failed"``
    placeholder instead of aborting the campaign.
    """
    ids = validate_ids(ids) if ids else list(REGISTRY)
    if workers <= 1 and timeout_s is None and not retries:
        results: List[ExperimentResult] = []
        for exp_id in ids:
            try:
                results.extend(run_experiment(exp_id, scale, seed,
                                              telemetry=telemetry,
                                              faults=faults))
            except Exception:
                results.append(_failure_result(
                    exp_id, "failed", traceback.format_exc(), attempts=1))
        return results
    by_id = _run_parallel(ids, scale, seed, workers,
                          telemetry_spec=telemetry, faults_spec=faults,
                          timeout_s=timeout_s, retries=retries)
    return [r for exp_id in ids for r in by_id[exp_id][0]]


@dataclass
class _Attempt:
    """One scheduled execution of an experiment id."""

    exp_id: str
    attempt: int          # 1-based
    not_before: float     # wall-clock gate (exponential backoff)


def _run_parallel(ids: List[str], scale: Scale, seed: int, workers: int,
                  flight_spec: Optional[Dict[str, object]] = None,
                  heartbeat: bool = False,
                  telemetry_spec: Optional[Dict[str, object]] = None,
                  faults_spec: Optional[Mapping[str, object]] = None,
                  timeout_s: Optional[float] = None,
                  retries: int = 0,
                  backoff_s: float = BACKOFF_S,
                  ) -> Dict[str, Tuple[List[ExperimentResult], float,
                                       List[FlightRecord]]]:
    """Crash-tolerant process fan-out; longest-first for packing.

    Each experiment runs in its own watchdogged process:

    * ``timeout_s`` — a worker past its deadline is terminated and the
      attempt recorded as a timeout;
    * ``retries`` — failed/timed-out attempts are re-executed with the
      identical job tuple (seed preserved) after exponential backoff
      (``backoff_s * 2**(attempt-1)``), up to ``retries`` extra times;
    * quarantine — an experiment that exhausts its retries is recorded
      as ``status="quarantined"`` (``"failed"``/``"timeout"`` when no
      retries were requested) with the last remote traceback attached,
      and the campaign continues: every id always gets an entry.

    With ``heartbeat`` the parent prints a ``[done k/n]`` stderr line as
    each experiment settles — with wall-clock elapsed and an ETA
    weighted by the remaining experiments' ``est_cost`` — so long
    parallel runs stay observable (worker processes can't share the
    parent's progress stream).
    """
    order = sorted(ids, key=lambda i: -REGISTRY[i].est_cost)
    total_cost = sum(REGISTRY[i].est_cost for i in order) or 1.0
    by_id: Dict[str, Tuple[List[ExperimentResult], float,
                           List[FlightRecord]]] = {}
    wall_start = time.time()
    done_cost = 0.0
    done = 0
    ctx = _mp_context()
    if isinstance(faults_spec, FaultPlan):
        faults_spec = faults_spec.to_dict()

    pending: List[_Attempt] = [_Attempt(i, 1, 0.0) for i in order]
    #: receiving pipe end -> (process, attempt, start wall-clock)
    running: Dict[Any, Tuple[Any, _Attempt, float]] = {}

    def settle(exp_id: str, payload, elapsed: float, status: str,
               error: str, attempt: int) -> None:
        nonlocal done, done_cost
        if status == "ok":
            results, records = payload
            for result in results:
                result.attempts = attempt
        else:
            results = [_failure_result(exp_id, status, error, attempt)]
            records = []
        by_id[exp_id] = (results, elapsed, records)
        done += 1
        done_cost += REGISTRY[exp_id].est_cost
        if heartbeat:
            wall = time.time() - wall_start
            if 0 < done_cost < total_cost:
                eta_note = (f" eta ~"
                            f"{wall * (total_cost - done_cost) / done_cost:.0f}s")
            else:
                eta_note = ""
            note = "" if status == "ok" else f" [{status.upper()}]"
            print(f"[done {done}/{len(order)}] {exp_id}{note} "
                  f"({elapsed:.1f}s) elapsed {wall:.1f}s{eta_note}",
                  file=sys.stderr, flush=True)

    def fail(attempt: _Attempt, status: str, error: str,
             elapsed: float) -> None:
        if attempt.attempt <= retries:
            delay = backoff_s * (2 ** (attempt.attempt - 1))
            pending.append(_Attempt(attempt.exp_id, attempt.attempt + 1,
                                    time.time() + delay))
            if heartbeat:
                print(f"[retry {attempt.exp_id}: attempt "
                      f"{attempt.attempt} {status}; backing off "
                      f"{delay:.1f}s]", file=sys.stderr, flush=True)
            return
        final = "quarantined" if retries > 0 else status
        settle(attempt.exp_id, None, elapsed, final, error, attempt.attempt)

    def launch(attempt: _Attempt) -> None:
        job: _Job = (attempt.exp_id, scale.value, seed, flight_spec,
                     telemetry_spec,
                     dict(faults_spec) if faults_spec is not None else None)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_campaign_child, args=(child_conn, job),
                           daemon=True)
        proc.start()
        child_conn.close()
        running[parent_conn] = (proc, attempt, time.time())

    while pending or running:
        now = time.time()
        # launch every runnable attempt while worker slots are free
        while len(running) < max(1, workers):
            ready = [a for a in pending if a.not_before <= now]
            if not ready:
                break
            nxt = ready[0]
            pending.remove(nxt)
            launch(nxt)

        if not running:
            # everything pending is in a backoff window; sleep it out
            gate = min(a.not_before for a in pending)
            time.sleep(max(0.0, min(gate - time.time(), backoff_s)))
            continue

        # wait for a completion, the nearest watchdog deadline, or the
        # nearest backoff gate — whichever comes first
        wait_s: Optional[float] = None
        if timeout_s is not None:
            nearest = min(start + timeout_s
                          for _, _, start in running.values())
            wait_s = max(0.0, nearest - time.time())
        if pending:
            gate = min(a.not_before for a in pending)
            gap = max(0.0, gate - time.time())
            wait_s = gap if wait_s is None else min(wait_s, gap)
        fired = multiprocessing.connection.wait(list(running), wait_s)

        for conn in fired:
            proc, attempt, started = running.pop(conn)
            elapsed = time.time() - started
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                kind, payload = ("error",
                                 f"worker died without reporting "
                                 f"(exit code {proc.exitcode})")
            conn.close()
            proc.join()
            if kind == "ok":
                exp_id, results, wall, records = payload
                settle(exp_id, (results, records), wall, "ok", "",
                       attempt.attempt)
            else:
                fail(attempt, "failed", payload, elapsed)

        if timeout_s is not None:
            now = time.time()
            expired = [conn for conn, (_, _, started) in running.items()
                       if now - started >= timeout_s]
            for conn in expired:
                proc, attempt, started = running.pop(conn)
                proc.terminate()
                proc.join()
                conn.close()
                fail(attempt, "timeout",
                     f"experiment exceeded --timeout {timeout_s}s "
                     f"(attempt {attempt.attempt}); worker terminated",
                     now - started)
    return by_id


def _print_listing() -> None:
    width = max(len(i) for i in REGISTRY)
    print(f"{'id'.ljust(width)}  sect    ~cost  targets / description")
    for spec in REGISTRY.values():
        print(f"{spec.id.ljust(width)}  {spec.section:6s} "
              f"{spec.est_cost:5.0f}s  {', '.join(spec.targets)}")
        print(f"{''.ljust(width)}                 {spec.description}")


def _print_result(result: ExperimentResult, plot: bool) -> None:
    print(result.render())
    if plot and result.series:
        from repro.experiments.plotting import line_plot
        chart = line_plot(result.series)
        if chart:
            print()
            print(chart)
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", metavar="id",
                        help="experiment ids (default: all; see --list)")
    parser.add_argument("--list", action="store_true", dest="list_ids",
                        help="list known experiments and exit")
    parser.add_argument("--filter", metavar="PATTERN",
                        help="run ids whose id/section/description "
                             "contains PATTERN")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale sweeps (slow)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run experiments in N parallel processes "
                             "(bit-identical to serial)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="session default for shard-plane streams: "
                             "open-loop streams partition across N "
                             "per-DIMM shards (bit-identical to serial; "
                             "figure experiments are chained and "
                             "unaffected)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed for per-experiment RNG")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="watchdog: terminate any experiment running "
                             "longer than S seconds (status=timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-execute failed/timed-out experiments up "
                             "to N times (same seed, exponential backoff); "
                             "still-failing specs are quarantined")
    parser.add_argument("--faults", metavar="PATH",
                        help="run the campaign under a fault plan "
                             "(repro.faultplan/1 JSON; see repro-faults)")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                        help="with --faults, override the plan seed; "
                             "alone, run under a randomized plan "
                             "generated from seed N")
    parser.add_argument("--plot", action="store_true",
                        help="draw ASCII charts of each result's series")
    parser.add_argument("--json", metavar="PATH",
                        help="also export all results (including "
                             "instrumentation snapshots) as JSON")
    parser.add_argument("--flight", action="store_true",
                        help="record per-request flight spans and print "
                             "per-op latency breakdowns")
    parser.add_argument("--flight-sample", type=int, default=0, metavar="N",
                        help="sample 1 in N requests (implies --flight)")
    parser.add_argument("--flight-out", metavar="PATH",
                        help="export sampled records as a Chrome/Perfetto "
                             "trace.json (implies --flight)")
    from repro.tools.telemetry_opts import (add_telemetry_args,
                                            report_telemetry,
                                            telemetry_spec_from_args)
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    if args.list_ids:
        _print_listing()
        return 0

    try:
        ids = validate_ids(args.ids) if args.ids else list(REGISTRY)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        matched = [i for i in filter_ids(args.filter) if i in ids]
        if not matched:
            print(f"error: --filter {args.filter!r} matches no experiment",
                  file=sys.stderr)
            return 2
        ids = matched

    scale = Scale.PAPER if args.paper else Scale.SMOKE
    flight_spec: Optional[Dict[str, object]] = None
    if args.flight or args.flight_sample or args.flight_out:
        if args.flight_sample > 1:
            flight_spec = {"mode": "every", "every": args.flight_sample}
        else:
            flight_spec = {"mode": "all"}
    telemetry_spec = telemetry_spec_from_args(args)

    faults_spec: Optional[Dict[str, object]] = None
    if args.faults or args.fault_seed is not None:
        from repro.common.errors import FaultPlanError
        from repro.faults.plan import load_plan, random_plan
        try:
            if args.faults:
                plan = load_plan(args.faults)
                if args.fault_seed is not None:
                    plan = dc_replace(plan, seed=args.fault_seed)
            else:
                plan = random_plan(args.fault_seed)
        except FaultPlanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        faults_spec = plan.to_dict()

    shard_scope = nullcontext()
    if args.shards is not None:
        from repro.common.errors import ConfigError
        from repro.shard import shard_session
        try:
            shard_scope = shard_session(args.shards)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    collected: List[ExperimentResult] = []
    all_records: List[FlightRecord] = []
    crash_tolerant = (args.workers > 1 or args.timeout is not None
                      or args.retries > 0)
    with shard_scope:
        return _run_campaign(args, ids, scale, flight_spec, telemetry_spec,
                             faults_spec, crash_tolerant, collected,
                             all_records)


def _run_campaign(args, ids, scale, flight_spec, telemetry_spec,
                  faults_spec, crash_tolerant, collected,
                  all_records) -> int:
    if crash_tolerant:
        by_id = _run_parallel(ids, scale, args.seed, args.workers,
                              flight_spec=flight_spec, heartbeat=True,
                              telemetry_spec=telemetry_spec,
                              faults_spec=faults_spec,
                              timeout_s=args.timeout, retries=args.retries)
        for exp_id in ids:
            results, elapsed, records = by_id[exp_id]
            all_records.extend(records)
            for result in results:
                collected.append(result)
                _print_result(result, args.plot)
            print(f"[{exp_id} done in {elapsed:.1f}s]\n")
    else:
        for exp_id in ids:
            start = time.time()
            recorder = make_flight_recorder(flight_spec)
            try:
                results = run_experiment(exp_id, scale, args.seed,
                                         flight=recorder,
                                         telemetry=telemetry_spec,
                                         faults=faults_spec)
            except Exception:
                results = [_failure_result(exp_id, "failed",
                                           traceback.format_exc(),
                                           attempts=1)]
            for result in results:
                collected.append(result)
                _print_result(result, args.plot)
            if recorder is not None:
                all_records.extend(recorder.records)
            print(f"[{exp_id} done in {time.time() - start:.1f}s]\n")

    if telemetry_spec is not None:
        report_telemetry(collected, args)
    if flight_spec is not None:
        for op, breakdown in breakdowns(all_records).items():
            print(breakdown.render())
            print()
    if args.flight_out:
        events = save_chrome_trace(all_records, args.flight_out)
        print(f"[exported {events} trace events to {args.flight_out}]")
    if args.json:
        from repro.experiments.export import save_json
        count = save_json(collected, args.json)
        print(f"[exported {count} results to {args.json}]")
    failed = [r for r in collected if r.status != "ok"]
    if failed:
        print(f"[{len(failed)}/{len(collected)} result(s) not ok: "
              + ", ".join(f"{r.experiment}={r.status}" for r in failed)
              + "]", file=sys.stderr)
    return campaign_exit_code(collected)


if __name__ == "__main__":
    sys.exit(main())
