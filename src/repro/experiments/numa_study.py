"""Remote-NUMA access study (Section VI discussion).

Several works the paper cites ([41], [59], [65]) report that Optane
behind a remote NUMA hop degrades disproportionately, especially for
mixed reads/writes.  This experiment measures local vs remote
pointer-chasing latency and a mixed read/write stream on the NUMA
wrapper, against DRAM for contrast.
"""

from __future__ import annotations

from repro import registry
from repro.common.rng import make_rng
from repro.common.units import GIB, MIB, NS
from repro.experiments.common import ExperimentResult, Scale
from repro.vans.numa import NumaSystem

NODE = 1 * GIB


def _chase(numa: NumaSystem, base: int, nops: int, seed: int) -> float:
    rng = make_rng(seed, f"numa-{base}")
    lines = (64 * MIB) // 64
    now = 0
    for _ in range(nops):
        now = numa.read(base + rng.randrange(lines) * 64, now)
    return now / nops / NS


def _mixed(numa: NumaSystem, base: int, nops: int, seed: int) -> float:
    rng = make_rng(seed, f"numamix-{base}")
    lines = (64 * MIB) // 64
    now = 0
    for i in range(nops):
        addr = base + rng.randrange(lines) * 64
        now = numa.write(addr, now) if i % 2 else numa.read(addr, now)
    now = numa.fence(now)
    return now / nops / NS


def run(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    nops = 800 if scale is Scale.SMOKE else 4000
    result = ExperimentResult(
        "numa", "local vs remote access latency (ns per op)",
        columns=["memory", "pattern", "local", "remote", "penalty"],
    )

    def rows(name, factory, seed):
        numa = NumaSystem(factory(), factory(), node_bytes=NODE)
        local = _chase(numa, 0, nops, seed)
        numa = NumaSystem(factory(), factory(), node_bytes=NODE)
        remote = _chase(numa, NODE, nops, seed)
        result.add_row(name, "chase", local, remote, remote / local)
        numa = NumaSystem(factory(), factory(), node_bytes=NODE)
        local_m = _mixed(numa, 0, nops, seed)
        numa = NumaSystem(factory(), factory(), node_bytes=NODE)
        remote_m = _mixed(numa, NODE, nops, seed)
        result.add_row(name, "mixed r/w", local_m, remote_m,
                       remote_m / local_m)
        return remote / local, remote_m / local_m

    nv_chase, nv_mixed = rows("nvram", registry.factory("vans"), 41)
    dr_chase, _ = rows(
        "dram", registry.factory("ramulator-ddr4", frontend_ps=30_000), 42)

    nv_local = result.rows[0][2]
    nv_remote = result.rows[0][3]
    result.metrics["nvram_remote_penalty"] = nv_chase
    result.metrics["nvram_added_ns"] = nv_remote - nv_local
    result.metrics["dram_remote_penalty"] = dr_chase
    result.notes = ("the remote hop adds ~2x interconnect latency on top "
                    "of an already long NVRAM path (the cited HPC "
                    "observations); relative penalty is larger on DRAM "
                    "only because its base latency is small")
    return result
