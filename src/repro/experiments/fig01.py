"""Figure 1 — the motivating discrepancy: PMEP emulation vs Optane.

(a) single-thread bandwidth for load / store / store+clwb / store-nt:
    PMEP orders cached stores above nt-stores; the real device inverts
    that (nt-stores win, cached stores trail far behind loads).
(b) pointer-chasing read latency per CL across region sizes: PMEP is
    flat (a slower DRAM); Optane shows the on-DIMM buffer tiers.

The "Optane" side is the digitized reference; the "VANS" series is our
simulator run through the same microbenchmarks, included to show the
model reproduces the measured shape the emulators miss.
"""

from __future__ import annotations

from typing import List

from repro import registry
from repro.common.units import KIB, MIB
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride

OPS = ["load", "store", "store-clwb", "store-nt"]


def run_bandwidth(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 1a: single-thread bandwidth, PMEP vs Optane."""
    result = ExperimentResult(
        "fig1a", "single-thread bandwidth (GB/s)",
        columns=["op", "pmep", "optane(ref)"],
    )
    ref = registry.build("optane-ref")
    total = (4 if scale is Scale.SMOKE else 32) * MIB
    stride = Stride(read_window=16)

    for op in OPS:
        pmep = registry.build("pmep")
        if op == "load":
            pmep_bw = stride.read_bandwidth_gbs(pmep, total)
        elif op == "store-nt":
            pmep_bw = stride.write_bandwidth_gbs(pmep, total, mode="nt")
        else:
            # PMEP's delay injection does not slow ownership reads, so
            # cached-store streams run at (throttled) DRAM speed.
            pmep_bw = stride.write_bandwidth_gbs(pmep, total, mode="cached")
        optane_bw = ref.bandwidth_gbs(op, "optane-6dimm")
        result.add_row(op, pmep_bw, optane_bw)

    pmep_store = result.rows[1][1]
    pmep_nt = result.rows[3][1]
    opt_store = result.rows[1][2]
    opt_nt = result.rows[3][2]
    result.metrics["pmep_store_over_nt"] = pmep_store / pmep_nt
    result.metrics["optane_nt_over_store"] = opt_nt / opt_store
    result.notes = ("PMEP ranks cached stores above nt-stores; Optane "
                    "inverts the ordering — the Fig. 1a discrepancy.")
    return result


def run_latency(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 1b: pointer-chasing read latency, PMEP vs Optane vs VANS."""
    if scale is Scale.SMOKE:
        regions: List[int] = [1 * KIB, 16 * KIB, 64 * KIB, 1 * MIB,
                              16 * MIB, 64 * MIB, 128 * MIB]
    else:
        regions = [64 * (1 << i) for i in range(0, 23, 2)]
        regions = [max(r, 1 * KIB) for r in regions]
    pc = PointerChasing(seed=1)
    ref = registry.build("optane-ref")

    pmep_series = pc.latency_sweep(registry.factory("pmep"), regions, op="read")
    vans_series = pc.latency_sweep(registry.factory("vans"), regions, op="read")

    result = ExperimentResult(
        "fig1b", "pointer-chasing read latency per CL (ns)",
        columns=["region", "pmep", "optane(ref)", "vans"],
    )
    for (region, pmep_lat), (_, vans_lat) in zip(pmep_series, vans_series):
        result.add_row(int(region), pmep_lat,
                       ref.pc_read_latency_ns(int(region)), vans_lat)
    result.series["pmep"] = pmep_series
    result.series["vans"] = vans_series

    pmep_vals = pmep_series.values
    vans_vals = vans_series.values
    result.metrics["pmep_flatness"] = max(pmep_vals) / max(min(pmep_vals), 1e-9)
    result.metrics["vans_dynamic_range"] = max(vans_vals) / max(min(vans_vals), 1e-9)
    result.notes = ("PMEP stays flat across regions; the real device (and "
                    "VANS) rises through the 16KB and 16MB buffer tiers.")
    return result


def run(scale: Scale = Scale.SMOKE):
    """Both panels."""
    return run_bandwidth(scale), run_latency(scale)
