"""Experiment execution core, decoupled from any front end.

This module owns *how one experiment (or raw request stream) runs*:
the id -> :class:`ExperimentSpec` registry, per-experiment seeding,
instrumentation collection, flight/telemetry/fault session plumbing,
and the worker-process entry points the crash-tolerant schedulers use.

Two front ends drive it:

* :mod:`repro.experiments.runner` — the batch CLI (campaign fan-out,
  rendering, JSON export);
* :mod:`repro.serve` — the long-lived session daemon, whose worker
  pool calls :func:`run_experiment`/:func:`run_stream` directly and
  relies on the registry warm cache to reuse built targets across
  sessions.

Both produce bit-identical :class:`ExperimentResult` payloads for the
same ``(experiment, scale, seed)``; serving identity travels in the
separate ``result.session`` field so the simulation payload never
depends on who asked for it.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro import registry
from repro.common.errors import UnknownExperimentError, _suggest
from repro.experiments import ablation, bandwidth_matrix, characterize
from repro.experiments import energy_study, fig01, fig03, fig05, fig06
from repro.experiments import fig07, fig09, fig10, fig11, fig12, fig13
from repro.experiments import numa_study, scaling, tables
from repro.experiments.common import ExperimentResult, Scale
from repro.faults.injector import NULL_FAULTS, FaultInjector
from repro.faults.injector import session as faults_session
from repro.faults.persistence import PersistenceChecker
from repro.faults.plan import FaultPlan
from repro.faults.report import fault_report
from repro.flight import FlightRecord, FlightRecorder, breakdowns
from repro.flight import session as flight_session
from repro.instrument import Collection
from repro.progress import NULL_PROGRESS, ProgressReporter  # noqa: F401  (re-export)
from repro.progress import session as progress_session
from repro.prof.profiler import Profiler
from repro.prof.profiler import session as prof_session
from repro.target import TargetSystem
from repro.telemetry import TelemetrySampler
from repro.telemetry import session as telemetry_session

DEFAULT_SEED = 42

#: first-retry delay; attempt ``n`` waits ``BACKOFF_S * 2**(n-1)``
BACKOFF_S = 0.5

#: exit codes CLIs return for campaign outcomes
EXIT_OK = 0
EXIT_ALL_FAILED = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 4


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one runnable experiment id."""

    id: str
    run: Callable[[Scale], object]
    section: str
    description: str
    #: rough smoke-scale runtime in seconds (for --list and for
    #: longest-first scheduling under --workers)
    est_cost: float
    #: registry target names the experiment builds
    targets: Tuple[str, ...]


def _spec(id, run, section, description, est_cost, targets):
    return ExperimentSpec(id, run, section, description, est_cost,
                          tuple(targets))


#: experiment id -> spec (insertion order is the canonical run order)
REGISTRY: Dict[str, ExperimentSpec] = {s.id: s for s in [
    _spec("fig1", fig01.run, "II",
          "pointer-chase latency tiers vs. prior simulators", 1.5,
          ["vans", "ramulator-ddr4"]),
    _spec("fig3", fig03.run, "III",
          "existing emulators/simulators miss the buffer tiers", 2.0,
          ["vans", "pmep", "quartz", "dramsim2-ddr3", "ramulator-ddr4",
           "ramulator-pcm"]),
    _spec("fig5", fig05.run, "IV-B",
          "LENS buffer prober: read/write capacity inflections", 2.0,
          ["vans"]),
    _spec("fig6", fig06.run, "IV-B",
          "LENS entry-size and flush-granularity probes", 2.0,
          ["vans"]),
    _spec("fig7", fig07.run, "IV-C",
          "LENS policy prober: overwrite tails, wear leveling", 5.0,
          ["vans"]),
    _spec("fig8", characterize.run, "IV",
          "full LENS characterization of the simulated DIMM", 14.0,
          ["vans", "vans-6dimm"]),
    _spec("fig9", fig09.run, "V-B",
          "VANS validation: latency curves vs. Optane reference", 4.0,
          ["vans", "optane-ref"]),
    _spec("fig10", fig10.run, "V-B",
          "capacity/DIMM-count scaling validation", 6.0,
          ["vans"]),
    _spec("fig11", fig11.run, "V-B",
          "bandwidth validation across read/write mixes", 11.0,
          ["vans-6dimm"]),
    _spec("fig12", fig12.run, "V-C",
          "wear-leveling case study (YCSB-like hot lines)", 6.0,
          ["vans"]),
    _spec("fig13", fig13.run, "V-C",
          "Lazy cache case study: tail latency reduction", 51.0,
          ["vans", "vans-lazy"]),
    _spec("tables", tables.run, "tables",
          "Tables III-V: buffer inventory and timing parameters", 3.0,
          ["vans", "ramulator-ddr4"]),
    # beyond the paper's figures: supporting studies
    _spec("scaling", scaling.run, "extra",
          "throughput scaling with DIMM population", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("ablation", ablation.run, "extra",
          "microarchitectural ablations (combine window, engine hold)", 5.0,
          ["vans"]),
    _spec("energy", energy_study.run, "extra",
          "energy model over the access mix", 3.0,
          ["vans"]),
    _spec("numa", numa_study.run, "extra",
          "near/far socket latency study", 3.0,
          ["vans", "ramulator-ddr4"]),
    _spec("bandwidth", bandwidth_matrix.run, "extra",
          "bandwidth matrix across patterns and targets", 4.0,
          ["vans", "ramulator-ddr4"]),
]}


def validate_ids(ids: Sequence[str]) -> List[str]:
    """Check every id against the registry; raises
    :class:`UnknownExperimentError` naming the known ids otherwise."""
    for exp_id in ids:
        if exp_id not in REGISTRY:
            raise UnknownExperimentError(exp_id, REGISTRY)
    return list(ids)


def filter_ids(pattern: str) -> List[str]:
    """Ids whose id, section, or description contains ``pattern``."""
    needle = pattern.lower()
    return [s.id for s in REGISTRY.values()
            if needle in s.id.lower()
            or needle in s.section.lower()
            or needle in s.description.lower()]


def make_flight_recorder(spec: Optional[Mapping[str, object]]
                         ) -> Optional[FlightRecorder]:
    """Build a per-experiment recorder from CLI-level flight options
    (``None`` -> recording off)."""
    if spec is None:
        return None
    return FlightRecorder(**spec)


def _release_collected(collection: Collection) -> None:
    """Park the experiment's registry-built systems in the warm cache.

    A no-op unless :func:`repro.registry.enable_warm_cache` is active;
    :func:`repro.registry.release` itself rejects anything with real
    flight/fault sinks wired in, so this is safe to call unconditionally
    after the instrumentation snapshot is frozen.
    """
    if not registry.warm_cache_enabled():
        return
    for system in collection.systems:
        if isinstance(system, TargetSystem):
            registry.release(system)


def run_experiment(exp_id: str, scale: Scale = Scale.SMOKE,
                   seed: int = DEFAULT_SEED,
                   flight: Optional[FlightRecorder] = None,
                   telemetry: Optional[Mapping[str, object]] = None,
                   faults: Optional[Mapping[str, object]] = None,
                   session: Optional[Mapping[str, object]] = None,
                   progress: Optional[ProgressReporter] = None,
                   prof: Optional[Profiler] = None
                   ) -> List[ExperimentResult]:
    """Run one experiment id; returns its results as a flat list.

    Re-seeds the global RNG from ``(seed, exp_id)`` (experiments draw
    all randomness through explicitly seeded generators already; this is
    belt and braces for anything stdlib-level) and attaches the merged
    instrumentation snapshot of every registry-built system to each
    result, plus the wall-clock seconds the run took (``result.wall_s``).

    With a ``flight`` recorder, every system the registry builds during
    the run records per-request spans onto it, and each result carries
    the sampling summary plus per-op latency breakdowns in
    ``result.flight``.

    ``telemetry`` is a sampler *spec* (``{"interval_ps": ...}``), not a
    live sampler: the per-experiment :class:`TelemetrySampler` is always
    constructed here, so serial and worker-process runs build identical
    samplers and their timelines stay bit-identical.  Each result then
    carries ``{"summary": ..., "timeline": ...}`` in ``result.telemetry``.

    ``faults`` is likewise a *plan document* (``repro.faultplan/1``
    mapping, or a :class:`FaultPlan`), not a live injector: the
    per-experiment :class:`FaultInjector` + :class:`PersistenceChecker`
    are constructed here and attached to every system the registry
    builds, and each result carries the fault report (injection
    counters plus the persistence audit when a power cut triggered) in
    ``result.faults``.

    ``session`` is serving identity (session/tenant ids) recorded onto
    ``result.session`` — and nowhere inside the simulation payload, so
    a served run stays bit-identical to the batch equivalent.

    ``progress`` is a live :class:`~repro.progress.ProgressReporter`
    (the caller owns its ``emit`` channel — the serve worker pool wires
    it to the worker pipe).  Frames are advisory and never enter the
    result payload: a run with a reporter attached is byte-identical to
    one without.

    ``prof`` is a live :class:`~repro.prof.Profiler`: every system the
    registry builds during the run gets its ``profile_points()``
    wrapped for host wall-clock attribution, and the wrappers are
    removed when the run ends.  Profiling is host-side observation
    only — simulated timings, results, and exports stay bit-identical.
    """
    spec = REGISTRY.get(exp_id)
    if spec is None:
        raise UnknownExperimentError(exp_id, REGISTRY)
    random.seed(f"repro-exp:{seed}:{exp_id}")
    start = time.time()
    fl_session = (flight_session(flight) if flight is not None
                  else nullcontext())
    sampler = TelemetrySampler(**telemetry) if telemetry is not None else None
    tel_session = (telemetry_session(sampler) if sampler is not None
                   else nullcontext())
    injector: Optional[FaultInjector] = None
    if faults is not None:
        plan = (faults if isinstance(faults, FaultPlan)
                else FaultPlan.from_dict(faults))
        injector = FaultInjector(plan, checker=PersistenceChecker())
    fa_session = (faults_session(injector) if injector is not None
                  else nullcontext())
    with fl_session, tel_session, fa_session, \
            progress_session(progress), prof_session(prof):
        if progress is not None:
            progress.phase(exp_id)
        with Collection() as collection:
            out = spec.run(scale)
            results = [out] if isinstance(out, ExperimentResult) else list(out)
            snapshot = collection.merged()
    _release_collected(collection)
    wall_s = time.time() - start
    flight_summary: Dict[str, object] = {}
    if flight is not None:
        flight_summary = {
            "sampling": flight.sampling_summary(),
            "breakdowns": {op: bd.as_dict()
                           for op, bd in breakdowns(flight.records).items()},
        }
    telemetry_doc: Dict[str, object] = {}
    if sampler is not None:
        telemetry_doc = {"summary": sampler.summary(),
                         "timeline": sampler.timeline.as_dict()}
    faults_doc: Dict[str, object] = {}
    if injector is not None:
        faults_doc = fault_report(injector)
    session_doc = dict(session) if session is not None else {}
    for result in results:
        result.instrumentation = dict(snapshot)
        result.flight = dict(flight_summary)
        result.telemetry = dict(telemetry_doc)
        result.faults = dict(faults_doc)
        result.session = dict(session_doc)
        result.wall_s = wall_s
    return results


#: request-stream ops understood by :func:`run_stream` — the full
#: persistency vocabulary: ``read``/``write`` (nt-store) hit the memory
#: system as before, ``write_nt`` is an explicit nt-store alias,
#: ``store`` is a regular cached store (volatile until flushed+fenced),
#: ``flush`` is a ``clwb``/``clflushopt``-style cache-line write-back,
#: and ``fence`` drains/orders.
_STREAM_OPS = ("read", "write", "write_nt", "store", "flush", "fence")

#: simulated retire latency of a regular cached store.  A store
#: completes into the CPU cache hierarchy, never reaching the memory
#: system the simulator models, so its cost is a constant — what
#: matters for persistency is program order, which back-to-back
#: issuance preserves.
_STORE_PS = 1_000


def run_stream(target: str, ops: Sequence[Mapping[str, object]],
               overrides: Optional[Mapping[str, object]] = None,
               faults: Optional[Mapping[str, object]] = None,
               session: Optional[Mapping[str, object]] = None,
               progress: Optional[ProgressReporter] = None,
               prof: Optional[Profiler] = None,
               issue: str = "chained",
               shards: Optional[int] = None
               ) -> Dict[str, object]:
    """Drive a registry target with a raw request stream.

    Each op is a mapping ``{"op": <one of _STREAM_OPS>}`` with optional
    ``addr`` (default 0), ``count`` (default 1), and ``stride`` (default
    64) so clients can express compact sweeps without shipping one JSON
    object per request.  With the default ``issue="chained"`` ops
    execute back-to-back in simulated time (each issues at the prior
    op's completion), which makes the outcome a pure function of the
    stream — the served/batch bit-identity contract for raw streams.

    ``issue="open"`` switches to the shard plane
    (:func:`repro.shard.executor.run_shard_stream`): requests issue at
    stream-declared offsets inside fence-delimited epochs, which is what
    lets ``shards`` partition the run by iMC channel with bit-identical
    merged output.  ``shards`` above 1 requires ``issue="open"`` — a
    chained stream is serial by definition — and the shard plane runs
    uninstrumented, so ``faults`` plans are chained-plane only.
    ``shards=None`` defers to the ``--shards`` session default.

    Op semantics:

    * ``read`` / ``write`` — memory-system accesses as before
      (``write`` is the nt-store path; its return is the persistence
      point);
    * ``write_nt`` — explicit nt-store.  Uses the target's ``write_nt``
      method when it has one (the PMEP emulator), else ``write``;
    * ``store`` — a regular cached store: retires in ``_STORE_PS`` of
      CPU time without touching the memory system, acknowledged in the
      ``cache`` persistence domain (volatile until flushed + fenced);
    * ``flush`` — cache-line write-back (``clwb``/``clflushopt``).
      Rides the write datapath for timing, recorded as a flush (not an
      ack) in the persistence history via the injector's flush scope;
    * ``fence`` — drain/order (``sfence`` after nt-stores, the
      persistence barrier after flushes).

    ``faults`` is a plan document (``repro.faultplan/1`` mapping or a
    :class:`FaultPlan`): a per-stream :class:`FaultInjector` +
    :class:`PersistenceChecker` are constructed here and attached to
    the target build, and the result carries the fault report — with
    the persistence audit when a power cut triggered — under
    ``"faults"`` (``{}`` when no plan).  This is what the litmus
    harness (:mod:`repro.litmus`) builds on.

    Returns a JSON-safe summary: per-op counts, final simulated time,
    cumulative latency, the target's instrumentation snapshot, and the
    fault report.
    """
    if issue not in ("chained", "open"):
        raise ValueError(f"unknown issue mode {issue!r} "
                         f"(choose 'chained' or 'open')")
    if issue == "open" or shards not in (None, 0, 1):
        if issue != "open":
            raise ValueError(
                "shards > 1 requires issue='open': a chained stream "
                "issues each request at the prior completion, which is "
                "serial by definition")
        if faults is not None:
            raise ValueError(
                "fault plans are chained-plane only; the shard plane "
                "runs uninstrumented (issue='open' cannot take faults)")
        from repro.shard.executor import run_shard_stream
        return run_shard_stream(target, ops, shards=shards,
                                overrides=overrides, session=session,
                                progress=progress)
    injector: Optional[FaultInjector] = None
    if faults is not None:
        plan = (faults if isinstance(faults, FaultPlan)
                else FaultPlan.from_dict(faults))
        injector = FaultInjector(plan, checker=PersistenceChecker())
    fa_session = (faults_session(injector) if injector is not None
                  else nullcontext())
    with fa_session, progress_session(progress), prof_session(prof), \
            Collection() as collection:
        if progress is not None:
            progress.phase(f"stream:{target}")
        system = registry.acquire(target, **dict(overrides or {}))
        fa = injector if injector is not None else NULL_FAULTS
        now = 0
        counts = {op: 0 for op in _STREAM_OPS}
        busy_ps = 0
        for item in ops:
            op = str(item.get("op", "read"))
            if op not in _STREAM_OPS:
                raise ValueError(
                    f"unknown stream op {op!r}"
                    f"{_suggest(op, _STREAM_OPS)}"
                    f"; choose from: {', '.join(_STREAM_OPS)}")
            addr = int(item.get("addr", 0))
            count = int(item.get("count", 1))
            stride = int(item.get("stride", 64))
            for i in range(count):
                issued = now
                if op == "fence":
                    now = system.fence(now)
                elif op == "store":
                    now = issued + _STORE_PS
                    fa.note_store(addr + i * stride, now)
                elif op == "flush":
                    with fa.flush_scope():
                        now = system.write(addr + i * stride, now)
                elif op == "write_nt":
                    method = getattr(system, "write_nt", None) or system.write
                    now = method(addr + i * stride, now)
                else:
                    now = getattr(system, op)(addr + i * stride, now)
                busy_ps += now - issued
            counts[op] += count
        snapshot = collection.merged()
    _release_collected(collection)
    faults_doc: Dict[str, object] = {}
    if injector is not None:
        faults_doc = fault_report(injector)
    total = sum(counts.values())
    return {
        "target": target,
        "overrides": dict(overrides or {}),
        "ops": total,
        "counts": counts,
        "sim_end_ps": now,
        "busy_ps": busy_ps,
        "mean_latency_ps": (busy_ps / total) if total else 0.0,
        "instrumentation": snapshot,
        "faults": faults_doc,
        "session": dict(session) if session is not None else {},
    }


#: job tuple: (exp_id, scale_value, seed, flight_spec, telemetry_spec,
#:             faults_spec) — retries re-send the identical tuple, so
#: re-executions preserve the seed and every session spec bit-for-bit.
_Job = Tuple[str, str, int, Optional[Dict[str, object]],
             Optional[Dict[str, object]], Optional[Dict[str, object]]]


def _worker(job: _Job) -> Tuple[str, List[ExperimentResult], float,
                                List[FlightRecord]]:
    exp_id, scale_value, seed, flight_spec, telemetry_spec, faults_spec = job
    start = time.time()
    recorder = make_flight_recorder(flight_spec)
    results = run_experiment(exp_id, Scale(scale_value), seed,
                             flight=recorder, telemetry=telemetry_spec,
                             faults=faults_spec)
    records = recorder.records if recorder is not None else []
    return exp_id, results, time.time() - start, records


def _campaign_child(conn, job: _Job) -> None:
    """Worker-process entry: run one job, ship outcome over the pipe.

    The remote traceback is stringified here — exception objects from
    experiment code don't always unpickle in the parent, and the
    original stack is gone by then anyway (the lost-traceback bug this
    replaces ``ProcessPoolExecutor`` to fix).
    """
    try:
        conn.send(("ok", _worker(job)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _failure_result(exp_id: str, status: str, error: str,
                    attempts: int) -> ExperimentResult:
    """Placeholder result for an experiment that never produced one."""
    spec = REGISTRY.get(exp_id)
    result = ExperimentResult(
        experiment=exp_id,
        title=spec.description if spec is not None else exp_id,
        notes="no data: experiment did not complete",
    )
    result.status = status
    result.error = error
    result.attempts = attempts
    return result


def _mp_context():
    """Prefer fork (cheap, inherits registry mutations made by callers
    such as tests registering synthetic specs); fall back to the
    platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def campaign_exit_code(results: Sequence[ExperimentResult]) -> int:
    """0 when every result is ok, 1 when none are, 4 when partial."""
    if not results:
        return EXIT_ALL_FAILED
    ok = sum(1 for r in results if r.status == "ok")
    if ok == len(results):
        return EXIT_OK
    return EXIT_ALL_FAILED if ok == 0 else EXIT_PARTIAL
