"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows/series
mirror what the paper plots, plus the digitized reference values where
the paper reported measurements.  ``render()`` pretty-prints the
comparison; benchmarks under ``benchmarks/`` call these and record the
numbers in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentResult, Scale

__all__ = ["ExperimentResult", "Scale"]
