"""Tables I, II, III/V and IV.

Tables I/II are static (capability matrix and prober overview); Table
III/V reports the simulated configuration; Table IV verifies the SPEC
workload generators against their target MPKI/footprints.
"""

from __future__ import annotations

from repro import registry
from repro.common.units import GIB, pretty_size
from repro.cpu import FullSystem
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.report import TABLE_I, TABLE_II
from repro.vans import VansConfig
from repro.workloads import SPEC_WORKLOADS, spec_trace


def run_table1(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    result = ExperimentResult(
        "tab1", "profiling-tool capability matrix",
        columns=["tool"] + TABLE_I["columns"],
    )
    for tool, caps in TABLE_I["rows"].items():
        result.add_row(tool, *caps)
    return result


def run_table2(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    result = ExperimentResult(
        "tab2", "LENS probers and microbenchmarks",
        columns=["prober", "microbenchmark", "hardware behavior",
                 "microarchitecture"],
    )
    for row in TABLE_II:
        result.add_row(*row)
    return result


def run_table5(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Table V: the simulated system configuration."""
    cfg = VansConfig().with_dimms(6)
    desc = cfg.describe()
    result = ExperimentResult(
        "tab5", "simulated NVRAM system configuration",
        columns=["parameter", "value"],
    )
    for key, value in desc.items():
        if key.endswith("bytes"):
            value = pretty_size(value)
        result.add_row(key, value)
    result.add_row("lsq", f"{cfg.dimm.lsq.entries} x {cfg.dimm.lsq.entry_bytes}B")
    result.add_row("rmw", f"{cfg.dimm.rmw.entries} x {cfg.dimm.rmw.entry_bytes}B")
    result.add_row("ait", f"{cfg.dimm.ait.entries} x {pretty_size(cfg.dimm.ait.entry_bytes)}")
    result.add_row("on-dimm dram", f"{pretty_size(cfg.dimm.dram_capacity_bytes)} "
                                   f"{cfg.dimm.dram_timing.name}")
    return result


def run_table4(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Table IV: measured generator MPKI vs the paper's values."""
    nops = 20000 if scale is Scale.SMOKE else 80000
    warmup = nops // 3
    result = ExperimentResult(
        "tab4", "SPEC workloads: generator calibration",
        columns=["workload", "suite", "target mpki", "measured mpki",
                 "footprint"],
    )
    worst = 0.0
    for wl in SPEC_WORKLOADS:
        system = FullSystem(
            registry.build("ramulator-ddr4", frontend_ps=30_000),
            name=wl.name)
        report = system.run(spec_trace(wl.name, nops + warmup),
                            warmup_ops=warmup)
        result.add_row(wl.name, wl.suite, wl.llc_mpki, report.llc_mpki,
                       f"{wl.footprint_bytes / GIB:.2f}GB")
        if wl.llc_mpki:
            worst = max(worst, abs(report.llc_mpki - wl.llc_mpki) / wl.llc_mpki)
    result.metrics["worst_relative_mpki_error"] = worst
    return result


def run(scale: Scale = Scale.SMOKE):
    return (run_table1(scale), run_table2(scale), run_table4(scale),
            run_table5(scale))
