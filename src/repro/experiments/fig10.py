"""Figure 10 — sensitivity of the VANS latency curves.

(a) media capacity (2/4/8/16 GB): the curves are invariant because the
    on-DIMM buffers and queues hide the media behind fixed-size tiers;
(b) DIMM count (1/2/4/6, 4KB interleaved): more DIMMs postpone the
    buffering inflections (aggregate buffer capacity grows) and reduce
    store latency once the WPQ would have overflowed.
"""

from __future__ import annotations

from typing import List

from repro.common.units import GIB, KIB, MIB
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro import registry


def _regions(scale: Scale) -> List[int]:
    if scale is Scale.SMOKE:
        return [1 * KIB, 16 * KIB, 256 * KIB, 4 * MIB, 16 * MIB, 64 * MIB]
    return [64 * (1 << i) for i in range(4, 21)]


def run_capacity(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 10a: media capacity does not move the latency curves."""
    regions = _regions(scale)
    pc = PointerChasing(seed=12)
    result = ExperimentResult(
        "fig10a", "ld latency per CL (ns) across media capacities",
        columns=["region"] + [f"{g}GB" for g in (2, 4, 8, 16)],
    )
    curves = {}
    for gb in (2, 4, 8, 16):
        curves[gb] = pc.latency_sweep(
            registry.factory("vans", media_capacity=gb * GIB), regions,
            op="read")
        result.series[f"{gb}GB"] = curves[gb]
    for i, region in enumerate(regions):
        result.add_row(region, *(curves[g].values[i] for g in (2, 4, 8, 16)))
    spreads = []
    for i in range(len(regions)):
        vals = [curves[g].values[i] for g in (2, 4, 8, 16)]
        spreads.append((max(vals) - min(vals)) / max(vals))
    result.metrics["max_relative_spread"] = max(spreads)
    result.notes = "expected: curves coincide (media latency is hidden)"
    return result


def run_dimm_count(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 10b: more interleaved DIMMs postpone the buffering effects."""
    regions = _regions(scale)
    pc = PointerChasing(seed=13)
    counts = (1, 2, 4, 6)
    result = ExperimentResult(
        "fig10b", "ld latency per CL (ns) across DIMM counts",
        columns=["region"] + [f"{n}dimm" for n in counts],
    )
    curves = {}
    for n in counts:
        curves[n] = pc.latency_sweep(
            registry.factory("vans", ndimms=n), regions, op="read")
        result.series[f"{n}dimm"] = curves[n]
    for i, region in enumerate(regions):
        result.add_row(region, *(curves[n].values[i] for n in counts))
    # at a region that overflows one DIMM's RMW reach but not six DIMMs'
    probe = 64 * KIB
    if probe in regions:
        i = regions.index(probe)
        result.metrics["lat_1dimm_at_64K"] = curves[1].values[i]
        result.metrics["lat_6dimm_at_64K"] = curves[6].values[i]
    result.notes = ("expected: with N DIMMs the aggregate buffer reach is "
                    "N x 16KB/16MB, so inflections shift right")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_capacity(scale), run_dimm_count(scale)
