"""Terminal plotting for experiment series.

Dependency-free ASCII charts so the runner can show the curve *shapes*
(the thing this reproduction validates) directly in the terminal:

* :func:`line_plot` — multi-series plot with a log-ish x-axis label row;
* :func:`bar_chart` — horizontal bars for categorical comparisons;
* :func:`sparkline` — one-line trend summary.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.units import pretty_size
from repro.engine.stats import LatencySeries

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-character-per-point trend line."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK[0] * len(vals)
    span = hi - lo
    return "".join(_SPARK[int((v - lo) / span * (len(_SPARK) - 1))]
                   for v in vals)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart, one row per label."""
    if not values:
        return ""
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(value / peak * width))
        lines.append(f"{label:<{label_w}}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def line_plot(series: Dict[str, LatencySeries], height: int = 12,
              x_is_bytes: bool = True) -> str:
    """Plot one or more (x, y) series on a shared character grid.

    Points are placed by *index* on the x axis (experiment sweeps are
    log-spaced, so index spacing is visually correct) and scaled y.
    """
    if not series:
        return ""
    first = next(iter(series.values()))
    npoints = max(len(s) for s in series.values())
    if npoints < 2:
        return ""
    all_values = [v for s in series.values() for v in s.values]
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    width = npoints
    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox@%"

    for si, (name, s) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for i, value in enumerate(s.values):
            row = height - 1 - int((value - lo) / span * (height - 1))
            grid[row][i] = mark

    lines = []
    for r, row in enumerate(grid):
        y_val = hi - (r / (height - 1)) * span
        lines.append(f"{y_val:8.0f} |" + "".join(row))
    # x labels: first, middle, last
    xs = first.xs
    fmt = (lambda x: pretty_size(int(x))) if x_is_bytes else str
    lo_x, mid_x, hi_x = fmt(xs[0]), fmt(xs[len(xs) // 2]), fmt(xs[-1])
    axis = " " * 9 + "+" + "-" * (width - 1)
    label_row = (" " * 10 + lo_x
                 + mid_x.rjust(max(1, width // 2 - len(lo_x)))
                 + hi_x.rjust(max(1, width - width // 2 - len(mid_x))))
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    return "\n".join(lines + [axis, label_row, "legend: " + legend])
