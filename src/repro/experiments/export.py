"""Machine-readable export of experiment results.

``ExperimentResult`` renders for terminals; this module serializes the
same data to JSON (one document per run, all experiments included) and
CSV (one file per result) so external plotting/diffing tools can consume
the reproduction's numbers.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.experiments.common import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """Plain-dict form of one result (JSON-safe)."""
    return {
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "series": {
            name: {"x": series.xs, "y": series.values}
            for name, series in result.series.items()
        },
        "metrics": dict(result.metrics),
        "notes": result.notes,
        "instrumentation": dict(result.instrumentation),
        "flight": dict(result.flight),
        "telemetry": dict(result.telemetry),
        "wall_s": result.wall_s,
        "status": result.status,
        "error": result.error,
        "attempts": result.attempts,
        "faults": dict(result.faults),
        "session": dict(result.session),
    }


def save_json(results: Iterable[ExperimentResult],
              path: Union[str, Path]) -> int:
    """Write all results as one JSON document; returns the count."""
    payload = [result_to_dict(r) for r in results]
    with open(path, "w", encoding="ascii") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
    return len(payload)


def load_json(path: Union[str, Path]) -> List[dict]:
    """Read back a results document."""
    with open(path, "r", encoding="ascii") as fh:
        return json.load(fh)


def save_csv(result: ExperimentResult, path: Union[str, Path]) -> int:
    """Write one result's rows as CSV; returns the row count."""
    with open(path, "w", encoding="ascii", newline="") as fh:
        writer = csv.writer(fh)
        if result.columns:
            writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow(row)
    return len(result.rows)
