"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.engine.stats import LatencySeries


class Scale(Enum):
    """Experiment sizing.

    SMOKE keeps every experiment in CI-seconds territory; PAPER uses the
    full sweeps (minutes in pure Python).  Both produce the same curve
    *shapes*; PAPER adds points and samples.
    """

    SMOKE = "smoke"
    PAPER = "paper"


@dataclass
class ExperimentResult:
    """Rows/series of one reproduced table or figure."""

    experiment: str
    title: str
    columns: List[str] = field(default_factory=list)
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, LatencySeries] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: merged observability snapshot of every registry-built system the
    #: experiment used (``dotted.path -> number``); attached by the
    #: runner, deterministic (no wall-clock data ever lands here).
    instrumentation: Dict[str, float] = field(default_factory=dict)
    #: flight-recorder summary (sampling metadata + per-op latency
    #: breakdowns) attached by the runner when ``--flight`` is on.
    flight: Dict[str, object] = field(default_factory=dict)
    #: sim-time telemetry (sampler summary + serialized timeline)
    #: attached by the runner when ``--telemetry`` is on.  Deterministic:
    #: only simulated time and simulator state, never wall clock.
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: wall-clock seconds the producing experiment took (attached by the
    #: runner; excluded from determinism comparisons by definition).
    wall_s: float = 0.0
    #: run outcome: "ok" | "failed" | "timeout" | "quarantined".  The
    #: crash-tolerant runner degrades gracefully — a campaign always
    #: yields one result per experiment, with non-"ok" placeholders for
    #: the ones that raised, hung, or were quarantined after retries.
    status: str = "ok"
    #: remote traceback (or watchdog message) for non-"ok" results
    error: str = ""
    #: execution attempts consumed (1 on first-try success)
    attempts: int = 1
    #: fault-run report (``repro.faultreport/1``) attached by the runner
    #: when the campaign ran under a fault plan; includes the
    #: persistence audit when a power cut triggered.
    faults: Dict[str, object] = field(default_factory=dict)
    #: serving-session identity (session/tenant ids) attached when the
    #: result was produced by a ``repro-serve`` session.  Deliberately a
    #: separate field: the simulation payload (metrics, series,
    #: telemetry) stays bit-identical between served and batch runs.
    session: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def render(self) -> str:
        """Aligned-text rendering of the rows plus headline metrics."""
        out = [f"== {self.experiment}: {self.title} =="]
        if self.status != "ok":
            out.append(f"status: {self.status.upper()} "
                       f"after {self.attempts} attempt(s)")
            if self.error:
                last = self.error.strip().splitlines()[-1]
                out.append(f"error: {last}")
        if self.columns:
            widths = [len(c) for c in self.columns]
            str_rows = []
            for row in self.rows:
                cells = [_fmt(v) for v in row]
                widths = [max(w, len(c)) for w, c in zip(widths, cells)]
                str_rows.append(cells)
            header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
            out.append(header)
            out.append("-" * len(header))
            for cells in str_rows:
                out.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for key, value in self.metrics.items():
            out.append(f"{key}: {_fmt(value)}")
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
