"""Figure 12 — cloud-workload inefficiencies on NVRAM.

(a) Redis: read operations (pointer chasing) dominate — CPI, LLC misses
    and TLB misses of the read phase normalized to the rest (paper:
    read CPI ~8.8x);
(b) YCSB: the ten most-written cache lines trigger disproportionate
    wear-leveling (paper: 503x), raising write amplification and average
    latency.

Wear-leveling thresholds are scaled to the trace length (the paper ran
billions of instructions; we preserve the writes-per-migration ratio).
"""

from __future__ import annotations

from repro import registry
from repro.cpu import FullSystem
from repro.experiments.common import ExperimentResult, Scale
from repro.vans import VansSystem
from repro.workloads import redis_trace, ycsb_trace


def _scaled_vans(track_line_wear: bool = False,
                 migrate_threshold: int = 300) -> VansSystem:
    """VANS with wear thresholds scaled to trace-sized runs."""
    return registry.build("vans", track_line_wear=track_line_wear,
                          migrate_threshold=migrate_threshold)


def run_redis(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 12a: Redis read-phase overheads, normalized to the rest."""
    nops = 40000 if scale is Scale.SMOKE else 200000
    system = FullSystem(_scaled_vans(), name="redis")
    report = system.run(redis_trace(nops + nops // 4), warmup_ops=nops // 4)

    read_cpi = report.phase_cpi.get("read", 0.0)
    rest_cpi = report.phase_cpi.get("rest", 1e-9)
    read_llc = report.phase_llc_misses.get("read", 0)
    rest_llc = max(1, report.phase_llc_misses.get("rest", 0))
    read_tlb = report.phase_tlb_misses.get("read", 0)
    rest_tlb = max(1, report.phase_tlb_misses.get("rest", 0))

    result = ExperimentResult(
        "fig12a", "Redis profiling (read phase normalized to rest)",
        columns=["metric", "read/rest"],
    )
    result.add_row("cpi", read_cpi / rest_cpi)
    result.add_row("llc_miss", read_llc / rest_llc)
    result.add_row("tlb_miss", read_tlb / rest_tlb)
    result.metrics["read_cpi"] = read_cpi
    result.metrics["rest_cpi"] = rest_cpi
    result.notes = "paper: read CPI 8.8x the rest"
    return result


def run_ycsb(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 12b: YCSB Top10 hot lines vs the rest."""
    nops = 60000 if scale is Scale.SMOKE else 300000
    backend = _scaled_vans(track_line_wear=True)
    system = FullSystem(backend, name="ycsb")
    system.run(ycsb_trace(nops))

    wear = backend.dimm.wear
    top = wear.top_written_lines(10)
    top_addrs = {addr for addr, _ in top}
    top_writes = sum(count for _, count in top)
    rest_writes = max(1, sum(wear.line_wear.values()) - top_writes)

    # migrations attributable to the Top10 lines' wear blocks
    block = wear.config.block_bytes
    top_blocks = {addr // block for addr in top_addrs}
    top_migrations = sum(count for b, count in wear.migration_counts.items()
                         if b in top_blocks)
    rest_migrations = wear.migrations - top_migrations

    result = ExperimentResult(
        "fig12b", "YCSB: Top10 most-written lines vs rest",
        columns=["metric", "top10", "rest", "ratio"],
    )
    result.add_row("writes", top_writes, rest_writes,
                   top_writes / rest_writes)
    ntop = max(1, len(top_addrs))
    nrest = max(1, len(wear.line_wear) - ntop)
    per_line_top = top_writes / ntop
    per_line_rest = rest_writes / nrest
    result.add_row("writes per line", per_line_top, per_line_rest,
                   per_line_top / per_line_rest)
    result.add_row("wear migrations", top_migrations, rest_migrations,
                   top_migrations / max(1, rest_migrations))
    result.metrics["migrations"] = wear.migrations
    result.metrics["write_amplification"] = backend.dimm.write_amplification
    result.notes = ("paper: Top10 lines ~15% of traffic trigger 503x the "
                    "wear-leveling of all other lines")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_redis(scale), run_ycsb(scale)
