"""Figure 3 — conventional simulators cannot match Optane.

(a) average accuracy of DRAMSim2-DDR3 / Ramulator-DDR4 / Ramulator-PCM
    against the Optane reference on four metrics (bw-ld, bw-st, lat-ld,
    lat-st) across access sizes;
(b) Ramulator-PCM pointer-chasing read latency vs Optane: the PCM model
    is flat where the device steps through its buffer tiers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro import registry
from repro.baselines.slow_dram import SlowDramSystem
from repro.common.units import KIB, MIB
from repro.experiments.common import ExperimentResult, Scale
from repro.lens.analysis import accuracy
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride
from repro.reference import OptaneReference

SIMULATORS: Dict[str, Callable[[], SlowDramSystem]] = {
    name: registry.factory(name)
    for name in ("dramsim2-ddr3", "ramulator-ddr4", "ramulator-pcm")
}


def _metrics_for(factory: Callable, regions: List[int], pc: PointerChasing,
                 stride: Stride, ref: OptaneReference):
    """(lat-ld, lat-st, bw-ld, bw-st) accuracies vs the reference."""
    lat_ld = pc.latency_sweep(factory, regions, op="read")
    lat_st = pc.latency_sweep(factory, regions, op="write")
    ref_ld = [ref.pc_read_latency_ns(r) for r in regions]
    ref_st = [ref.pc_store_latency_ns(r) for r in regions]
    acc_lat_ld = accuracy(lat_ld.values, ref_ld)
    acc_lat_st = accuracy(lat_st.values, ref_st)

    bw_ld = stride.read_bandwidth_gbs(factory(), 4 * MIB)
    bw_st = stride.write_bandwidth_gbs(factory(), 4 * MIB, nt=True)
    acc_bw_ld = accuracy([bw_ld], [ref.bandwidth_gbs("load", "optane-1dimm")])
    acc_bw_st = accuracy([bw_st], [ref.bandwidth_gbs("store-nt", "optane-1dimm")])
    return acc_lat_ld, acc_lat_st, acc_bw_ld, acc_bw_st


def run_accuracy(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 3a: per-simulator average accuracy vs Optane."""
    regions = [1 * KIB, 16 * KIB, 256 * KIB, 1 * MIB, 16 * MIB, 64 * MIB]
    if scale is Scale.PAPER:
        regions = [64 * (1 << i) for i in range(4, 21, 1)]
    pc = PointerChasing(seed=3)
    stride = Stride()
    ref = registry.build("optane-ref", noise=0.0)

    result = ExperimentResult(
        "fig3a", "simulator accuracy vs Optane (higher is better)",
        columns=["simulator", "lat-ld", "lat-st", "bw-ld", "bw-st", "avg"],
    )
    for name, factory in SIMULATORS.items():
        accs = _metrics_for(factory, regions, pc, stride, ref)
        result.add_row(name, *accs, sum(accs) / len(accs))
    vans_accs = _metrics_for(registry.factory("vans"), regions, pc, stride, ref)
    result.add_row("vans", *vans_accs, sum(vans_accs) / len(vans_accs))
    result.metrics["vans_minus_best_baseline"] = (
        sum(vans_accs) / 4
        - max(sum(row[1:5]) / 4 for row in result.rows[:-1])
    )
    result.notes = ("Conventional DRAM-architecture simulators miss the "
                    "Optane behaviours; VANS tracks them (Fig. 3a / 9e).")
    return result


def run_pcm_latency(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Fig. 3b: Ramulator-PCM vs Optane pointer-chasing latency."""
    regions = [256, 1 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB]
    pc = PointerChasing(seed=4)
    ref = registry.build("optane-ref")
    pcm = pc.latency_sweep(registry.factory("ramulator-pcm"), regions, op="read")
    result = ExperimentResult(
        "fig3b", "PtrChasing read latency per CL (ns): Ramulator-PCM vs Optane",
        columns=["region", "ramulator-pcm", "optane(ref)"],
    )
    for region, lat in pcm:
        result.add_row(int(region), lat, ref.pc_read_latency_ns(int(region)))
    result.series["ramulator-pcm"] = pcm
    vals = pcm.values
    result.metrics["pcm_flatness"] = max(vals) / max(min(vals), 1e-9)
    result.notes = ("The PCM-on-DDR model stays flat; the device's 16KB "
                    "buffer inflection is absent from it.")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_accuracy(scale), run_pcm_latency(scale)
