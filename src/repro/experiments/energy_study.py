"""Energy study (extension beyond the paper's evaluation).

Applies the energy model to the workloads the paper profiles:

* read vs write energy per GB of traffic (writes dominate — the
  3D-XPoint program energy plus RMW amplification);
* the Lazy cache's energy saving on concentrated writes (it was
  motivated by performance in Section V-C, but absorbing hot writes
  also removes their media-program and migration energy).
"""

from __future__ import annotations

from dataclasses import replace

from repro import registry
from repro.common.rng import make_rng
from repro.common.units import KIB, MIB
from repro.energy import energy_of
from repro.experiments.common import ExperimentResult, Scale


def run_read_vs_write(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Energy per MB of traffic, by access pattern."""
    nops = 1500 if scale is Scale.SMOKE else 8000
    rng = make_rng(31, "energy")
    patterns = {
        "sequential-read": ("r", lambda i: i * 64),
        "random-read": ("r", lambda i: rng.randrange(1 << 20) * 64),
        "sequential-write": ("w", lambda i: i * 64),
        "random-write": ("w", lambda i: rng.randrange(1 << 20) * 64),
    }
    result = ExperimentResult(
        "energy-rw", "energy per MB of requested traffic (uJ/MB)",
        columns=["pattern", "uJ/MB", "media-write share"],
    )
    for name, (kind, addr_fn) in patterns.items():
        system = registry.build("vans")
        now = 0
        for i in range(nops):
            addr = addr_fn(i)
            now = (system.write(addr, now) if kind == "w"
                   else system.read(addr, now))
        system.fence(now)
        report = energy_of(system)
        mb = nops * 64 / MIB
        result.add_row(name, report.total_j * 1e6 / mb,
                       report.fraction("media-write"))
    by_name = {row[0]: row[1] for row in result.rows}
    result.metrics["random_write_over_seq_read"] = (
        by_name["random-write"] / by_name["sequential-read"])
    result.notes = ("random small writes are the energy worst case: "
                    "program energy + RMW merge fills + amplification")
    return result


def run_lazy_cache_energy(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Energy of a concentrated overwrite stream with/without Lazy cache."""
    threshold = 400
    iters = threshold * (4 if scale is Scale.SMOKE else 12)

    def run(lazy: bool):
        system = registry.build("vans", lazy_cache=lazy,
                                migrate_threshold=threshold)
        now = 0
        for _ in range(iters):
            for line in range(0, 256, 64):
                now = system.write(line, now)
            now = system.fence(now)
        return energy_of(system)

    base = run(False)
    lazy = run(True)
    result = ExperimentResult(
        "energy-lazy", "Lazy cache energy effect (hot 256B overwrite)",
        columns=["configuration", "total uJ", "media-write uJ",
                 "migration uJ"],
    )
    for name, rep in (("baseline", base), ("lazy cache", lazy)):
        result.add_row(name, rep.total_j * 1e6,
                       rep.by_component["media-write"] * 1e6,
                       rep.by_component["wear-migration"] * 1e6)
    result.metrics["energy_saving"] = 1.0 - lazy.total_j / base.total_j
    result.notes = ("absorbing wear-hot writes in 3KB of SRAM removes "
                    "their media-program and migration energy")
    return result


def run(scale: Scale = Scale.SMOKE):
    return run_read_vs_write(scale), run_lazy_cache_energy(scale)
