"""PMEP-style NVRAM emulation (Dulloor et al., EuroSys'14 [11]).

PMEP emulates NVRAM on a DRAM machine by (a) injecting a fixed additional
latency on loads that miss the LLC and (b) throttling write bandwidth
with DRAM thermal-control registers.  Consequently it behaves exactly
like DRAM with a constant added delay:

* latency per cache line is *flat* across access-region sizes (no
  on-DIMM buffer inflections) — the PMEP curve in Figure 1b;
* regular cached stores are as fast as loads (both hit the emulated
  latency), while non-temporal stores are *slower* than cached stores
  because they pay the uncached path — the inversion versus real Optane
  shown in Figure 1a.
"""

from __future__ import annotations

from repro.common.units import GIB, NS
from repro.dram.device import DramDevice
from repro.dram.timing import DDR4_2666
from repro.engine.queueing import Server
from repro.target import TargetSystem


class PMEPModel(TargetSystem):
    """Delay-injection + bandwidth-throttle NVRAM emulator."""

    def __init__(
        self,
        read_delay_ps: int = 170 * NS,
        write_delay_ps: int = 5 * NS,
        nt_write_ps: int = 60 * NS,       # uncached nt-store path
        write_bw_line_ps: int = 8 * NS,   # throttled write drain per 64B
        capacity_bytes: int = 4 * GIB,
        nchannels: int = 4,
    ) -> None:
        self.read_delay_ps = read_delay_ps
        self.write_delay_ps = write_delay_ps
        self.nt_write_ps = nt_write_ps
        self.dram = DramDevice(DDR4_2666, nchannels=nchannels,
                               capacity_bytes=capacity_bytes)
        self._throttle = Server()
        self._throttle_ps = write_bw_line_ps
        self.name = "pmep"
        self._rebuild_fast_paths()

    def _rebuild_fast_paths(self) -> None:
        """Bind uninstrumented read/write when nothing records (the
        registry re-invokes this after attaching session telemetry)."""
        if self._uninstrumented():
            self.read = self._read_fast
            self.write = self._write_fast
        else:
            self.__dict__.pop("read", None)
            self.__dict__.pop("write", None)

    def _read_fast(self, addr: int, now: int) -> int:
        return self.dram.access(addr, False, now) + self.read_delay_ps

    def _write_fast(self, addr: int, now: int) -> int:
        start = self._throttle.serve(now, self._throttle_ps)
        return self.dram.access(addr, True, start) + self.write_delay_ps

    def read(self, addr: int, now: int) -> int:
        """DRAM access plus the injected constant NVRAM delay."""
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        done = self.dram.access(addr, False, now) + self.read_delay_ps
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write(self, addr: int, now: int) -> int:
        """Cached store write-back: PMEP only injects delay on demand
        loads, so store streams run at (throttled) DRAM speed — which is
        why PMEP ranks cached stores *above* nt-stores (Fig. 1a)."""
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        start = self._throttle.serve(now, self._throttle_ps)
        done = self.dram.access(addr, True, start) + self.write_delay_ps
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write_nt(self, addr: int, now: int) -> int:
        """Non-temporal store: the uncached path is serialized and slow
        on the emulation platform (it occupies the throttled channel for
        the whole uncached transaction)."""
        start = self._throttle.serve(now, self.nt_write_ps)
        self.dram.access(addr, True, start)
        return start + self.nt_write_ps

    def fence(self, now: int) -> int:
        return now

    def profile_points(self):
        yield from super().profile_points()
        yield ("pmep.write_nt", self, "write_nt")

    def reset(self) -> None:
        """Warm-cache reset: idle DRAM and throttle server."""
        self.dram.reset()
        self._throttle.reset()
        self._rebuild_fast_paths()
