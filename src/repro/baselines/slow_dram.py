"""DRAMSim2/Ramulator-style simulators: DDR state machines, no Optane
microarchitecture.

These model memory exactly as a conventional DRAM simulator does — banks,
rows, JEDEC timing — optionally with PCM-stretched array timings (the
Ramulator PCM plug-in).  Because there is no on-DIMM buffer hierarchy,
their pointer-chasing latency is flat in the access-region size (modulo
row-buffer effects), reproducing the mismatch of Figure 3.
"""

from __future__ import annotations

from repro.common.units import GIB, NS
from repro.dram.device import DramDevice
from repro.dram.timing import DDR3_1600, DDR4_2666, DDR4Timing, PCM_TIMING
from repro.target import TargetSystem


class SlowDramSystem(TargetSystem):
    """Conventional DRAM-architecture memory simulator."""

    def __init__(
        self,
        timing: DDR4Timing,
        name: str,
        nchannels: int = 4,
        capacity_bytes: int = 4 * GIB,
        frontend_ps: int = 60 * NS,
    ) -> None:
        self.dram = DramDevice(timing, nchannels=nchannels,
                               capacity_bytes=capacity_bytes)
        self.frontend_ps = frontend_ps
        self.name = name
        self.stats = self.dram.stats
        self._c_reads = self.stats.counter("slowdram.reads")
        self._c_writes = self.stats.counter("slowdram.writes")
        self._rebuild_fast_paths()

    def _rebuild_fast_paths(self) -> None:
        """Bind uninstrumented read/write when nothing records (the
        registry re-invokes this after attaching session telemetry)."""
        if self._uninstrumented():
            self.read = self._read_fast
            self.write = self._write_fast
        else:
            self.__dict__.pop("read", None)
            self.__dict__.pop("write", None)

    def _read_fast(self, addr: int, now: int) -> int:
        self._c_reads.add()
        return self.dram.access(addr, False, now + self.frontend_ps)

    def _write_fast(self, addr: int, now: int) -> int:
        self._c_writes.add()
        return self.dram.access(addr, True, now + self.frontend_ps)

    def read(self, addr: int, now: int) -> int:
        self._c_reads.add()
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        done = self.dram.access(addr, False, now + self.frontend_ps)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write(self, addr: int, now: int) -> int:
        self._c_writes.add()
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        done = self.dram.access(addr, True, now + self.frontend_ps)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def fence(self, now: int) -> int:
        return now

    def reset(self) -> None:
        """Warm-cache reset: idle DRAM state machines, zero counters
        (``self.stats`` aliases the device registry, which
        ``dram.reset()`` already zeroes)."""
        self.dram.reset()
        self._rebuild_fast_paths()


def dramsim2_ddr3(**kwargs) -> SlowDramSystem:
    """DRAMSim2 configured for DDR3-1600 (the paper's Figure 3a bar)."""
    return SlowDramSystem(DDR3_1600, name="dramsim2-ddr3", **kwargs)


def ramulator_ddr4(**kwargs) -> SlowDramSystem:
    """Ramulator's DDR4 model."""
    return SlowDramSystem(DDR4_2666, name="ramulator-ddr4", **kwargs)


def ramulator_pcm(**kwargs) -> SlowDramSystem:
    """Ramulator's PCM model: DDR machine with stretched array timings."""
    return SlowDramSystem(PCM_TIMING, name="ramulator-pcm", **kwargs)
