"""Baseline NVRAM emulators/simulators the paper compares against.

All of them share the "NVRAM is a slower DRAM" assumption that the paper
shows to be wrong (Sections II-B, II-C):

* :class:`~repro.baselines.pmep.PMEPModel` — the Persistent Memory
  Emulation Platform [11]: stall the CPU a fixed extra latency per access
  and throttle bandwidth.
* :class:`~repro.baselines.quartz.QuartzModel` — Quartz [56]: epoch-based
  delay injection proportional to observed DRAM accesses.
* :class:`~repro.baselines.slow_dram.SlowDramSystem` — DRAMSim2 [46] /
  Ramulator [32] style simulators: a conventional DDR state machine with
  (optionally PCM-stretched) timings, no on-DIMM buffer hierarchy.
"""

from repro.baselines.pmep import PMEPModel
from repro.baselines.quartz import QuartzModel
from repro.baselines.slow_dram import SlowDramSystem, ramulator_pcm, dramsim2_ddr3, ramulator_ddr4

__all__ = [
    "PMEPModel",
    "QuartzModel",
    "SlowDramSystem",
    "ramulator_pcm",
    "dramsim2_ddr3",
    "ramulator_ddr4",
]
