"""Quartz-style NVRAM emulation (Volos et al., Middleware'15 [56]).

Quartz models NVRAM latency in *epochs*: it counts DRAM accesses with
performance counters and, at each epoch boundary, spins the CPU for the
aggregate extra delay the slower NVRAM would have added.  Per-request
latencies are therefore DRAM latencies; only long-run averages reflect
the target latency, and no buffer/queue microarchitecture exists at all.
"""

from __future__ import annotations

from repro.common.units import GIB, NS
from repro.dram.device import DramDevice
from repro.dram.timing import DDR4_2666
from repro.target import TargetSystem


class QuartzModel(TargetSystem):
    """Epoch-based delay-injection emulator."""

    def __init__(
        self,
        extra_read_ps: int = 240 * NS,
        extra_write_ps: int = 0,
        epoch_accesses: int = 1024,
        capacity_bytes: int = 4 * GIB,
    ) -> None:
        self.extra_read_ps = extra_read_ps
        self.extra_write_ps = extra_write_ps
        self.epoch_accesses = epoch_accesses
        self.dram = DramDevice(DDR4_2666, nchannels=4,
                               capacity_bytes=capacity_bytes)
        self._pending_delay_ps = 0
        self._accesses = 0
        self._epoch_skew_ps = 0  # accumulated injected stall
        self.name = "quartz"
        self._rebuild_fast_paths()

    def _rebuild_fast_paths(self) -> None:
        """Bind uninstrumented read/write when nothing records (the
        registry re-invokes this after attaching session telemetry)."""
        if self._uninstrumented():
            self.read = self._read_fast
            self.write = self._write_fast
        else:
            self.__dict__.pop("read", None)
            self.__dict__.pop("write", None)

    def _read_fast(self, addr: int, now: int) -> int:
        return self._account(self.extra_read_ps,
                             self.dram.access(addr, False, now))

    def _write_fast(self, addr: int, now: int) -> int:
        return self._account(self.extra_write_ps,
                             self.dram.access(addr, True, now))

    def _account(self, extra_ps: int, now: int) -> int:
        """Bank the emulation delay; inject it at epoch boundaries."""
        self._pending_delay_ps += extra_ps
        self._accesses += 1
        if self._accesses % self.epoch_accesses == 0:
            stall = self._pending_delay_ps
            self._pending_delay_ps = 0
            self._epoch_skew_ps += stall
            return now + stall
        return now

    def read(self, addr: int, now: int) -> int:
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        done = self._account(self.extra_read_ps,
                             self.dram.access(addr, False, now))
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write(self, addr: int, now: int) -> int:
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        done = self._account(self.extra_write_ps,
                             self.dram.access(addr, True, now))
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    @property
    def injected_stall_ps(self) -> int:
        return self._epoch_skew_ps

    def reset(self) -> None:
        """Warm-cache reset: idle DRAM, epoch accounting back to zero."""
        self.dram.reset()
        self._pending_delay_ps = 0
        self._accesses = 0
        self._epoch_skew_ps = 0
        self._rebuild_fast_paths()
