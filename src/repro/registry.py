"""Unified target registry: every memory system under test, by name.

Before this module existed each experiment hand-constructed its systems
(``VansSystem(VansConfig().with_dimms(6))``, ad-hoc wear-scaled configs,
baselines with tweaked frontends, ...).  The registry centralizes all of
that behind named, parameterized specs:

``build(name, **overrides)``
    Construct one system.  Overrides are spec-specific knobs — for the
    VANS family they map onto the :class:`~repro.vans.config.VansConfig`
    tree (``ndimms=6``, ``media_capacity=8*GIB``, ``lazy_cache=True``,
    ``migrate_threshold=300``, ``combine_window_ps=0``, ...), for the
    baselines they pass through to the model constructor
    (``frontend_ps=30_000``).

``factory(name, **overrides)``
    A zero-argument callable for harnesses that rebuild a fresh system
    per sweep point (LENS probers, latency sweeps).

Every system built here gets a real :class:`~repro.instrument.InstrumentBus`
attached (pass ``instrument=False`` to opt out) and is announced to the
active :class:`~repro.instrument.Collection`, which is how the
experiment runner attaches a merged observability snapshot to every
:class:`~repro.experiments.common.ExperimentResult` without any
experiment threading stats plumbing by hand.

Unknown names raise :class:`~repro.common.errors.UnknownTargetError`
(a :class:`~repro.common.errors.ReproError`), which CLIs translate to
exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.baselines.pmep import PMEPModel
from repro.baselines.quartz import QuartzModel
from repro.baselines.slow_dram import dramsim2_ddr3, ramulator_ddr4, ramulator_pcm
from repro.common.errors import UnknownTargetError
from repro.faults.injector import current as current_faults
from repro.flight.recorder import current as current_flight
from repro.instrument import NULL_BUS, InstrumentBus, announce
from repro.reference import OptaneReference
from repro.target import TargetSystem
from repro.telemetry.sampler import current as current_telemetry
from repro.vans.config import VansConfig
from repro.vans.memory_mode import MemoryModeSystem
from repro.vans.system import VansSystem


@dataclass(frozen=True)
class TargetSpec:
    """One named target: a description plus a parameterized builder."""

    name: str
    description: str
    builder: Callable[..., Any]
    category: str = "baseline"   # "vans" | "baseline" | "reference"
    #: True when the builder returns a :class:`TargetSystem` (drivable by
    #: LENS / trace replay); the Optane reference model is analytic.
    is_system: bool = True
    defaults: Mapping[str, Any] = field(default_factory=dict)


_SPECS: Dict[str, TargetSpec] = {}


def register_target(spec: TargetSpec) -> TargetSpec:
    """Add (or replace) a spec; returns it for chaining."""
    _SPECS[spec.name] = spec
    return spec


def spec(name: str) -> TargetSpec:
    """Look up a spec; raises :class:`UnknownTargetError` if absent."""
    try:
        return _SPECS[name]
    except KeyError:
        raise UnknownTargetError(name, _SPECS) from None


def target_names(category: Optional[str] = None,
                 systems_only: bool = False) -> List[str]:
    """Sorted names, optionally filtered."""
    return sorted(
        s.name for s in _SPECS.values()
        if (category is None or s.category == category)
        and (not systems_only or s.is_system)
    )


def build(name: str, **overrides: Any):
    """Construct the named target with per-call overrides.

    The built system is announced to the active instrumentation
    :class:`~repro.instrument.Collection` (if any).
    """
    target_spec = spec(name)
    kwargs = {**target_spec.defaults, **overrides}
    system = target_spec.builder(**kwargs)
    announce(system)
    telemetry = current_telemetry()
    if telemetry.enabled and isinstance(system, TargetSystem):
        telemetry.attach(system)
        system.telemetry = telemetry
    faults = current_faults()
    if faults.enabled and not faults.published and not faults.plan.empty:
        # Publish the injection counters onto the first instrumented
        # system only: merged collection snapshots sum per path across
        # systems, so a second registration would double-count faults.
        # Empty plans publish nothing — their runs must stay
        # bit-identical to NULL_FAULTS runs (the zero-cost contract).
        bus = getattr(system, "instrument", None)
        if isinstance(bus, InstrumentBus):
            faults.publish(bus)
    if isinstance(system, TargetSystem):
        # Session instrumentation was attached instance-side above;
        # recompile the system's hot-path method bindings to match
        # (fast uninstrumented variants vs the full class methods).
        system._rebuild_fast_paths()
    return system


def factory(name: str, **overrides: Any) -> Callable[[], TargetSystem]:
    """A zero-arg constructor for ``build(name, **overrides)``.

    Validates the name eagerly so a typo fails at wiring time, not in
    the middle of a sweep.
    """
    spec(name)
    return lambda: build(name, **overrides)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _bus(instrument: bool):
    return InstrumentBus() if instrument else NULL_BUS


def derive_vans_config(
    base: Optional[VansConfig] = None,
    *,
    ndimms: Optional[int] = None,
    interleaved: Optional[bool] = None,
    media_capacity: Optional[int] = None,
    lazy_cache: Optional[bool] = None,
    migrate_threshold: Optional[int] = None,
    wear_decay_window: Optional[int] = None,
    combine_window_ps: Optional[int] = None,
    engine_holds_partial: Optional[bool] = None,
    ddrt_detailed: Optional[bool] = None,
    table_cache_entries: Optional[int] = None,
    collect_latency_histograms: Optional[bool] = None,
) -> VansConfig:
    """Apply flat override knobs onto a :class:`VansConfig` tree.

    Every knob an experiment used to hand-splice with nested
    ``dataclasses.replace`` calls is a named parameter here; ``None``
    means "keep the base value".
    """
    cfg = base or VansConfig()
    if ndimms is not None or interleaved is not None:
        cfg = cfg.with_dimms(
            cfg.ndimms if ndimms is None else ndimms, interleaved)
    if media_capacity is not None:
        cfg = cfg.with_media_capacity(media_capacity)
    if lazy_cache is not None:
        cfg = cfg.with_lazy_cache(lazy_cache)

    dimm = cfg.dimm
    if migrate_threshold is not None or wear_decay_window is not None:
        wear = dimm.wear
        if migrate_threshold is not None:
            wear = replace(wear, migrate_threshold=migrate_threshold)
        if wear_decay_window is not None:
            wear = replace(wear, decay_window_writes=wear_decay_window)
        dimm = replace(dimm, wear=wear)
    if combine_window_ps is not None:
        dimm = replace(dimm, lsq=replace(dimm.lsq,
                                         combine_window_ps=combine_window_ps))
    if engine_holds_partial is not None or ddrt_detailed is not None:
        timing = dimm.timing
        if engine_holds_partial is not None:
            timing = replace(timing, engine_holds_partial=engine_holds_partial)
        if ddrt_detailed is not None:
            timing = replace(timing, ddrt_detailed=ddrt_detailed)
        dimm = replace(dimm, timing=timing)
    if table_cache_entries is not None:
        dimm = replace(dimm, ait=replace(dimm.ait,
                                         table_cache_entries=table_cache_entries))
    if dimm is not cfg.dimm:
        cfg = replace(cfg, dimm=dimm)
    if collect_latency_histograms is not None:
        cfg = replace(cfg, collect_latency_histograms=collect_latency_histograms)
    return cfg


def _build_vans(config: Optional[VansConfig] = None,
                track_line_wear: bool = False,
                instrument: bool = True,
                flight=None,
                faults=None,
                **config_overrides: Any) -> VansSystem:
    cfg = derive_vans_config(config, **config_overrides)
    return VansSystem(cfg, track_line_wear=track_line_wear,
                      instrument=_bus(instrument),
                      flight=flight if flight is not None else current_flight(),
                      faults=faults if faults is not None else current_faults())


def _build_memory_mode(instrument: bool = True, flight=None, faults=None,
                       **kwargs: Any) -> MemoryModeSystem:
    return MemoryModeSystem(
        instrument=_bus(instrument),
        flight=flight if flight is not None else current_flight(),
        faults=faults if faults is not None else current_faults(), **kwargs)


def _passthrough(builder: Callable[..., TargetSystem]):
    def _build(instrument: bool = True, **kwargs: Any) -> TargetSystem:
        # The DRAM-era baselines have no bus-wired internals; their
        # stats registries already feed instrument_snapshot().
        del instrument
        system = builder(**kwargs)
        flight = current_flight()
        if flight.enabled:
            # no internal stations, but submit() still records op-level
            # begin/complete so baselines appear in flight reports
            system.flight = flight
        faults = current_faults()
        if faults.enabled:
            system.faults = faults
        return system
    return _build


def _build_reference(**kwargs: Any) -> OptaneReference:
    return OptaneReference(**kwargs)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

register_target(TargetSpec(
    "vans", "validated Optane-DIMM model, App Direct mode (1 DIMM)",
    _build_vans, category="vans"))
register_target(TargetSpec(
    "vans-6dimm", "6 interleaved Optane DIMMs (the paper's full system)",
    _build_vans, category="vans", defaults={"ndimms": 6}))
register_target(TargetSpec(
    "vans-lazy", "VANS with the Section V-C Lazy cache enabled",
    _build_vans, category="vans", defaults={"lazy_cache": True}))
register_target(TargetSpec(
    "memory-mode", "DRAM DIMMs as a direct-mapped cache over NVRAM",
    _build_memory_mode, category="vans"))
register_target(TargetSpec(
    "pmep", "PMEP delay-injection + bandwidth-throttle emulator",
    _passthrough(PMEPModel)))
register_target(TargetSpec(
    "quartz", "Quartz epoch-based delay-injection emulator",
    _passthrough(QuartzModel)))
register_target(TargetSpec(
    "dramsim2-ddr3", "DRAMSim2-style DDR3-1600 simulator",
    _passthrough(dramsim2_ddr3)))
register_target(TargetSpec(
    "ramulator-ddr4", "Ramulator-style DDR4-2666 simulator",
    _passthrough(ramulator_ddr4)))
register_target(TargetSpec(
    "ramulator-pcm", "Ramulator PCM plug-in (stretched DDR timings)",
    _passthrough(ramulator_pcm)))
register_target(TargetSpec(
    "optane-ref", "digitized Optane measurements (analytic reference)",
    _build_reference, category="reference", is_system=False))
