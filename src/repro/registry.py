"""Unified target registry: every memory system under test, by name.

Before this module existed each experiment hand-constructed its systems
(``VansSystem(VansConfig().with_dimms(6))``, ad-hoc wear-scaled configs,
baselines with tweaked frontends, ...).  The registry centralizes all of
that behind named, parameterized specs:

``build(name, **overrides)``
    Construct one system.  Overrides are spec-specific knobs — for the
    VANS family they map onto the :class:`~repro.vans.config.VansConfig`
    tree (``ndimms=6``, ``media_capacity=8*GIB``, ``lazy_cache=True``,
    ``migrate_threshold=300``, ``combine_window_ps=0``, ...), for the
    baselines they pass through to the model constructor
    (``frontend_ps=30_000``).

``factory(name, **overrides)``
    A zero-argument callable for harnesses that rebuild a fresh system
    per sweep point (LENS probers, latency sweeps).

Every system built here gets a real :class:`~repro.instrument.InstrumentBus`
attached (pass ``instrument=False`` to opt out) and is announced to the
active :class:`~repro.instrument.Collection`, which is how the
experiment runner attaches a merged observability snapshot to every
:class:`~repro.experiments.common.ExperimentResult` without any
experiment threading stats plumbing by hand.

Unknown names raise :class:`~repro.common.errors.UnknownTargetError`
(a :class:`~repro.common.errors.ReproError`), which CLIs translate to
exit code 2.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.baselines.pmep import PMEPModel
from repro.baselines.quartz import QuartzModel
from repro.baselines.slow_dram import (
    SlowDramSystem,
    dramsim2_ddr3,
    ramulator_ddr4,
    ramulator_pcm,
)
from repro.common.errors import UnknownOverrideError, UnknownTargetError
from repro.faults.injector import NULL_FAULTS
from repro.faults.injector import current as current_faults
from repro.flight.recorder import NULL_FLIGHT
from repro.flight.recorder import current as current_flight
from repro.instrument import NULL_BUS, InstrumentBus, announce
from repro.progress import TelemetryFanout
from repro.progress import current as current_progress
from repro.prof.profiler import current as current_prof
from repro.prof.profiler import uninstrument as prof_uninstrument
from repro.reference import OptaneReference
from repro.target import TargetSystem
from repro.telemetry.sampler import current as current_telemetry
from repro.vans.config import VansConfig
from repro.vans.memory_mode import MemoryModeSystem
from repro.vans.system import VansSystem


def _allowed_params(*callables: Callable[..., Any],
                    exclude: tuple = (),
                    extra: tuple = ()) -> FrozenSet[str]:
    """Union of named parameters across builder callables.

    ``**kwargs`` catch-alls are skipped (the callable they forward to is
    listed explicitly instead), so the resulting set is the exact
    spelling a caller may use — the basis for typo rejection.
    """
    allowed = set(extra)
    for fn in callables:
        for p in inspect.signature(fn).parameters.values():
            if p.kind in (p.VAR_KEYWORD, p.VAR_POSITIONAL):
                continue
            if p.name == "self" or p.name in exclude:
                continue
            allowed.add(p.name)
    return frozenset(allowed)


@dataclass(frozen=True)
class TargetSpec:
    """One named target: a description plus a parameterized builder."""

    name: str
    description: str
    builder: Callable[..., Any]
    category: str = "baseline"   # "vans" | "baseline" | "reference"
    #: True when the builder returns a :class:`TargetSystem` (drivable by
    #: LENS / trace replay); the Optane reference model is analytic.
    is_system: bool = True
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Exact override names :func:`build` accepts for this target.
    #: ``None`` disables validation (externally registered specs that
    #: never declared their surface).
    allowed: Optional[FrozenSet[str]] = None


_SPECS: Dict[str, TargetSpec] = {}


def register_target(spec: TargetSpec) -> TargetSpec:
    """Add (or replace) a spec; returns it for chaining."""
    _SPECS[spec.name] = spec
    return spec


def spec(name: str) -> TargetSpec:
    """Look up a spec; raises :class:`UnknownTargetError` if absent."""
    try:
        return _SPECS[name]
    except KeyError:
        raise UnknownTargetError(name, _SPECS) from None


def target_names(category: Optional[str] = None,
                 systems_only: bool = False) -> List[str]:
    """Sorted names, optionally filtered."""
    return sorted(
        s.name for s in _SPECS.values()
        if (category is None or s.category == category)
        and (not systems_only or s.is_system)
    )


def _validate_overrides(target_spec: TargetSpec,
                        overrides: Mapping[str, Any]) -> None:
    """Reject override kwargs the target's builder does not understand.

    Without this a typo like ``lazy_cahe=True`` silently builds the
    default system and the experiment quietly measures the wrong thing.
    """
    allowed = target_spec.allowed
    if allowed is None:
        return
    for key in overrides:
        if key not in allowed:
            raise UnknownOverrideError(target_spec.name, key, allowed)


def _attach_session(system: Any) -> Any:
    """Wire a built (or warm-cache reused) system into the session.

    Announces to the active instrumentation Collection, attaches live
    telemetry instance-side, publishes fault counters, and recompiles
    the system's hot-path method bindings to match.
    """
    announce(system)
    telemetry = current_telemetry()
    if telemetry.enabled and isinstance(system, TargetSystem):
        telemetry.attach(system)
        system.telemetry = telemetry
    progress = current_progress()
    if progress.enabled and isinstance(system, TargetSystem):
        # Progress rides the telemetry tick seam: the reporter (or a
        # fanout of sampler + reporter when both sessions are active)
        # is installed instance-side, so every completed request's
        # sim-time tick also advances the progress frames.  Frames are
        # advisory — the sampler still sees the identical tick
        # sequence, and release() pops the instance attribute, so
        # warm-cache eligibility and bit-identity are unaffected.
        progress.attach(system)
        if telemetry.enabled:
            system.telemetry = TelemetryFanout(telemetry, progress)
        else:
            system.telemetry = progress
    faults = current_faults()
    if faults.enabled and not faults.published and not faults.plan.empty:
        # Publish the injection counters onto the first instrumented
        # system only: merged collection snapshots sum per path across
        # systems, so a second registration would double-count faults.
        # Empty plans publish nothing — their runs must stay
        # bit-identical to NULL_FAULTS runs (the zero-cost contract).
        bus = getattr(system, "instrument", None)
        if isinstance(bus, InstrumentBus):
            faults.publish(bus)
    if isinstance(system, TargetSystem):
        # Session instrumentation was attached instance-side above;
        # recompile the system's hot-path method bindings to match
        # (fast uninstrumented variants vs the full class methods).
        system._rebuild_fast_paths()
        # The host profiler wraps last, over the final (possibly fast)
        # bindings: timings then cover exactly the code production runs
        # execute, and the session tear-down restores the bindings.
        prof = current_prof()
        if prof.enabled:
            prof.instrument(system)
    return system


def build(name: str, **overrides: Any):
    """Construct the named target with per-call overrides.

    The built system is announced to the active instrumentation
    :class:`~repro.instrument.Collection` (if any).  Unknown override
    names raise :class:`~repro.common.errors.UnknownOverrideError`.

    When the warm cache is enabled (:func:`enable_warm_cache`) and a
    previously :func:`release`-d system matches ``(name, overrides)``
    exactly, that system is reused instead of rebuilt — except under an
    active flight/fault session, whose sinks must be constructor-wired
    and therefore always force a fresh build.
    """
    target_spec = spec(name)
    _validate_overrides(target_spec, overrides)
    if (_WARM_LIMIT > 0 and not current_flight().enabled
            and not current_faults().enabled):
        key = _warm_key(name, overrides)
        if key is not None:
            parked = _WARM_CACHE.get(key)
            if parked:
                system = parked.pop()
                if not parked:
                    del _WARM_CACHE[key]
                _WARM_STATS["hits"] += 1
                return _attach_session(system)
            _WARM_STATS["misses"] += 1
    kwargs = {**target_spec.defaults, **overrides}
    system = target_spec.builder(**kwargs)
    if isinstance(system, TargetSystem):
        system._registry_key = _warm_key(name, overrides)
    return _attach_session(system)


def factory(name: str, **overrides: Any) -> Callable[[], TargetSystem]:
    """A zero-arg constructor for ``build(name, **overrides)``.

    Validates the name and override spellings eagerly so a typo fails
    at wiring time, not in the middle of a sweep.
    """
    _validate_overrides(spec(name), overrides)
    return lambda: build(name, **overrides)


# ----------------------------------------------------------------------
# warm target cache (build → acquire → run → reset → release)
# ----------------------------------------------------------------------
#
# Building a full VANS system is the dominant fixed cost of short served
# sessions: config-tree derivation, station wiring, AIT table setup.
# When serving many sessions against the same named targets the registry
# can park finished systems and hand them back out instead, relying on
# the ``TargetSystem.reset()`` lifecycle to restore as-built state.
#
# Eligibility is strict — only systems whose flight/fault sinks are the
# construction-time null objects may be parked, because real sinks are
# constructor-wired into subcomponents and cannot be detached by reset.
# Telemetry is attached instance-side, so release simply pops it.

_WARM_LIMIT = 0
_WARM_CACHE: Dict[Tuple[Any, ...], List[Any]] = {}
_WARM_STATS = {"hits": 0, "misses": 0, "parked": 0, "dropped": 0,
               "ineligible": 0}


def _warm_key(name: str, overrides: Mapping[str, Any]):
    """Cache key for (target, overrides); ``None`` if unhashable."""
    try:
        key = (name, tuple(sorted(overrides.items())))
        hash(key)
        return key
    except TypeError:
        return None


def enable_warm_cache(limit: int = 8) -> None:
    """Turn on warm-target reuse, parking at most ``limit`` systems."""
    global _WARM_LIMIT
    _WARM_LIMIT = max(0, int(limit))
    for k in _WARM_STATS:
        _WARM_STATS[k] = 0


def disable_warm_cache() -> None:
    """Turn off reuse and drop every parked system."""
    global _WARM_LIMIT
    _WARM_LIMIT = 0
    _WARM_CACHE.clear()


def warm_cache_enabled() -> bool:
    return _WARM_LIMIT > 0


def warm_cache_stats() -> Dict[str, int]:
    """Counters plus current occupancy (for /stats and tests)."""
    stats = dict(_WARM_STATS)
    stats["size"] = sum(len(v) for v in _WARM_CACHE.values())
    stats["limit"] = _WARM_LIMIT
    return stats


def acquire(name: str, **overrides: Any):
    """The warm-cache lifecycle spelling of :func:`build`.

    Reuses a parked system when one matches ``(name, overrides)``
    exactly, building fresh otherwise.  A reused system has been
    :meth:`~repro.target.TargetSystem.reset` and produces bit-identical
    results to a fresh build.  Pair with :func:`release` when the
    session is done with it.
    """
    return build(name, **overrides)


def release(system: Any) -> bool:
    """Return a system acquired via :func:`acquire`/:func:`build` to the
    warm cache.  Returns ``True`` if it was parked for reuse.

    Systems wired with real flight/fault sinks at construction are never
    parked (the sinks are threaded through subcomponent constructors and
    would leak into the next session); the cache is also bounded, so a
    full cache simply drops the system.
    """
    if _WARM_LIMIT <= 0 or not isinstance(system, TargetSystem):
        return False
    key = getattr(system, "_registry_key", None)
    if key is None:
        return False
    if system.flight is not NULL_FLIGHT or system.faults is not NULL_FAULTS:
        _WARM_STATS["ineligible"] += 1
        return False
    # Telemetry is attached instance-side by _attach_session; detach it
    # so the class-level NULL_TELEMETRY default shows through again.
    system.__dict__.pop("telemetry", None)
    # Likewise strip any host-profiler wrappers before parking, so a
    # reused system never times (or slows) a later unprofiled session.
    prof_uninstrument(system)
    system.reset()
    if sum(len(v) for v in _WARM_CACHE.values()) >= _WARM_LIMIT:
        _WARM_STATS["dropped"] += 1
        return False
    _WARM_CACHE.setdefault(key, []).append(system)
    _WARM_STATS["parked"] += 1
    return True


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _bus(instrument: bool):
    return InstrumentBus() if instrument else NULL_BUS


def derive_vans_config(
    base: Optional[VansConfig] = None,
    *,
    ndimms: Optional[int] = None,
    interleaved: Optional[bool] = None,
    media_capacity: Optional[int] = None,
    lazy_cache: Optional[bool] = None,
    migrate_threshold: Optional[int] = None,
    wear_decay_window: Optional[int] = None,
    combine_window_ps: Optional[int] = None,
    engine_holds_partial: Optional[bool] = None,
    ddrt_detailed: Optional[bool] = None,
    table_cache_entries: Optional[int] = None,
    collect_latency_histograms: Optional[bool] = None,
) -> VansConfig:
    """Apply flat override knobs onto a :class:`VansConfig` tree.

    Every knob an experiment used to hand-splice with nested
    ``dataclasses.replace`` calls is a named parameter here; ``None``
    means "keep the base value".
    """
    cfg = base or VansConfig()
    if ndimms is not None or interleaved is not None:
        cfg = cfg.with_dimms(
            cfg.ndimms if ndimms is None else ndimms, interleaved)
    if media_capacity is not None:
        cfg = cfg.with_media_capacity(media_capacity)
    if lazy_cache is not None:
        cfg = cfg.with_lazy_cache(lazy_cache)

    dimm = cfg.dimm
    if migrate_threshold is not None or wear_decay_window is not None:
        wear = dimm.wear
        if migrate_threshold is not None:
            wear = replace(wear, migrate_threshold=migrate_threshold)
        if wear_decay_window is not None:
            wear = replace(wear, decay_window_writes=wear_decay_window)
        dimm = replace(dimm, wear=wear)
    if combine_window_ps is not None:
        dimm = replace(dimm, lsq=replace(dimm.lsq,
                                         combine_window_ps=combine_window_ps))
    if engine_holds_partial is not None or ddrt_detailed is not None:
        timing = dimm.timing
        if engine_holds_partial is not None:
            timing = replace(timing, engine_holds_partial=engine_holds_partial)
        if ddrt_detailed is not None:
            timing = replace(timing, ddrt_detailed=ddrt_detailed)
        dimm = replace(dimm, timing=timing)
    if table_cache_entries is not None:
        dimm = replace(dimm, ait=replace(dimm.ait,
                                         table_cache_entries=table_cache_entries))
    if dimm is not cfg.dimm:
        cfg = replace(cfg, dimm=dimm)
    if collect_latency_histograms is not None:
        cfg = replace(cfg, collect_latency_histograms=collect_latency_histograms)
    return cfg


def _build_vans(config: Optional[VansConfig] = None,
                track_line_wear: bool = False,
                instrument: bool = True,
                flight=None,
                faults=None,
                **config_overrides: Any) -> VansSystem:
    cfg = derive_vans_config(config, **config_overrides)
    return VansSystem(cfg, track_line_wear=track_line_wear,
                      instrument=_bus(instrument),
                      flight=flight if flight is not None else current_flight(),
                      faults=faults if faults is not None else current_faults())


def _build_memory_mode(instrument: bool = True, flight=None, faults=None,
                       **kwargs: Any) -> MemoryModeSystem:
    return MemoryModeSystem(
        instrument=_bus(instrument),
        flight=flight if flight is not None else current_flight(),
        faults=faults if faults is not None else current_faults(), **kwargs)


def _passthrough(builder: Callable[..., TargetSystem]):
    def _build(instrument: bool = True, **kwargs: Any) -> TargetSystem:
        # The DRAM-era baselines have no bus-wired internals; their
        # stats registries already feed instrument_snapshot().
        del instrument
        system = builder(**kwargs)
        flight = current_flight()
        if flight.enabled:
            # no internal stations, but submit() still records op-level
            # begin/complete so baselines appear in flight reports
            system.flight = flight
        faults = current_faults()
        if faults.enabled:
            system.faults = faults
        return system
    return _build


def _build_reference(**kwargs: Any) -> OptaneReference:
    return OptaneReference(**kwargs)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

#: ``_build_vans`` forwards its ``**config_overrides`` to
#: :func:`derive_vans_config`, so the valid surface is the union of both
#: signatures (minus the internal ``base`` positional).
_VANS_ALLOWED = _allowed_params(_build_vans, derive_vans_config,
                                exclude=("base",))
_MEMMODE_ALLOWED = _allowed_params(_build_memory_mode,
                                   MemoryModeSystem.__init__)
#: The DRAM-era passthroughs accept their model constructor's knobs plus
#: the registry-level ``instrument`` opt-out.
_SLOWDRAM_ALLOWED = _allowed_params(SlowDramSystem.__init__,
                                    exclude=("timing", "name"),
                                    extra=("instrument",))

register_target(TargetSpec(
    "vans", "validated Optane-DIMM model, App Direct mode (1 DIMM)",
    _build_vans, category="vans", allowed=_VANS_ALLOWED))
register_target(TargetSpec(
    "vans-6dimm", "6 interleaved Optane DIMMs (the paper's full system)",
    _build_vans, category="vans", defaults={"ndimms": 6},
    allowed=_VANS_ALLOWED))
register_target(TargetSpec(
    "vans-lazy", "VANS with the Section V-C Lazy cache enabled",
    _build_vans, category="vans", defaults={"lazy_cache": True},
    allowed=_VANS_ALLOWED))
register_target(TargetSpec(
    "memory-mode", "DRAM DIMMs as a direct-mapped cache over NVRAM",
    _build_memory_mode, category="vans", allowed=_MEMMODE_ALLOWED))
register_target(TargetSpec(
    "pmep", "PMEP delay-injection + bandwidth-throttle emulator",
    _passthrough(PMEPModel),
    allowed=_allowed_params(PMEPModel.__init__, extra=("instrument",))))
register_target(TargetSpec(
    "quartz", "Quartz epoch-based delay-injection emulator",
    _passthrough(QuartzModel),
    allowed=_allowed_params(QuartzModel.__init__, extra=("instrument",))))
register_target(TargetSpec(
    "dramsim2-ddr3", "DRAMSim2-style DDR3-1600 simulator",
    _passthrough(dramsim2_ddr3), allowed=_SLOWDRAM_ALLOWED))
register_target(TargetSpec(
    "ramulator-ddr4", "Ramulator-style DDR4-2666 simulator",
    _passthrough(ramulator_ddr4), allowed=_SLOWDRAM_ALLOWED))
register_target(TargetSpec(
    "ramulator-pcm", "Ramulator PCM plug-in (stretched DDR timings)",
    _passthrough(ramulator_pcm), allowed=_SLOWDRAM_ALLOWED))
register_target(TargetSpec(
    "optane-ref", "digitized Optane measurements (analytic reference)",
    _build_reference, category="reference", is_system=False,
    allowed=_allowed_params(OptaneReference.__init__)))
