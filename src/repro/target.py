"""The ``TargetSystem`` interface LENS drives.

The paper runs LENS against a physical Optane server; here LENS drives
anything implementing this protocol: the VANS simulator, the baseline
emulators/simulators, or the digitized Optane reference model.  All
methods deal in absolute simulated time (integer picoseconds) so a
harness can thread a clock through a request stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.engine.request import CACHE_LINE, Op, Request
from repro.faults.injector import NULL_FAULTS
from repro.flight.recorder import NULL_FLIGHT
from repro.prof.profiler import NULL_PROF
from repro.telemetry.sampler import NULL_TELEMETRY


class TargetSystem(ABC):
    """A memory system under test."""

    #: short identifier used in reports
    name: str = "target"

    #: per-request flight recorder (instrumented systems overwrite this
    #: instance-side; the class default is the zero-cost no-op)
    flight = NULL_FLIGHT

    #: sim-time telemetry sampler (instance-side when a telemetry session
    #: is active; the class default is the zero-cost no-op)
    telemetry = NULL_TELEMETRY

    #: fault injector (instance-side when a faults session is active;
    #: the class default is the zero-cost no-op)
    faults = NULL_FAULTS

    #: host wall-clock profiler (instance-side when a profiling session
    #: is active; the class default is the zero-cost no-op).  Unlike the
    #: other hooks, the profiler does not flip :meth:`_uninstrumented`:
    #: it wraps whatever bindings are live — precompiled fast variants
    #: included — so timings stay representative of production runs.
    prof = NULL_PROF

    def _rebuild_fast_paths(self) -> None:
        """Recompile hot-path method bindings after instrumentation changes.

        Mirrors the engine kernel's precompiled dispatch slot: systems
        with uninstrumented fast variants of ``read``/``write`` bind them
        instance-side here when ``flight``/``telemetry``/``faults`` are
        all the null no-ops, and restore the full class implementations
        otherwise.  The registry calls this after attaching session
        instrumentation; the default is a no-op.
        """

    def _uninstrumented(self) -> bool:
        """True when every instrumentation hook is the zero-cost null."""
        return (self.flight is NULL_FLIGHT
                and self.telemetry is NULL_TELEMETRY
                and self.faults is NULL_FAULTS)

    def profile_points(self):
        """Host-profiler attribution points: ``(key, owner, method)``.

        The profiler wraps ``getattr(owner, method)`` instance-side for
        the session; composite systems override this to also yield
        their internal station callsites (iMC, DIMM, media, ...).
        Owners without a ``__dict__`` (slotted stations) are skipped by
        the profiler — their time lands in the enclosing component's
        key.
        """
        label = self.name
        yield (f"{label}.read", self, "read")
        yield (f"{label}.write", self, "write")
        yield (f"{label}.fence", self, "fence")

    @abstractmethod
    def read(self, addr: int, now: int) -> int:
        """64B read issued at ``now``; returns the data-return time."""

    @abstractmethod
    def write(self, addr: int, now: int) -> int:
        """64B nt-store issued at ``now``; returns its accept time
        (persistence point for NVRAM systems)."""

    def fence(self, now: int) -> int:
        """Drain the persistence path; returns the drain-complete time.

        Systems with no buffered persistence (plain DRAM models) complete
        immediately.
        """
        return now

    def submit(self, request: Request) -> Request:
        """Execute one :class:`Request`, filling its timestamps.

        When a flight recorder is attached and samples this request, the
        resulting :class:`~repro.flight.FlightRecord` (tagged with the
        request id and exact op name) is hung on ``request.flight``.
        """
        fl = self.flight
        if fl.enabled:
            fl.begin(request.op.name.lower(), request.addr, request.size,
                     issue_ps=request.issue_ps, req_id=request.req_id)
        if request.op is Op.FENCE:
            request.accept_ps = request.issue_ps
            request.complete_ps = self.fence(request.issue_ps)
        elif request.op.is_write:
            request.accept_ps = self.write(request.addr, request.issue_ps)
            request.complete_ps = request.accept_ps
        else:
            request.accept_ps = request.issue_ps
            request.complete_ps = self.read(request.addr, request.issue_ps)
        if fl.enabled:
            fl.end(request.complete_ps)
            record = fl.last
            if record is not None and record.req_id == request.req_id:
                request.flight = record
        tel = self.telemetry
        if tel.enabled:
            tel.tick(request.complete_ps)
        return request

    def warm_fill(self, start_addr: int, length: int) -> None:
        """Optional fast-forward warm-up of internal buffer state."""

    def instrument_snapshot(self) -> dict:
        """Flat observability snapshot (``dotted.path -> number``).

        The default pulls the system's :class:`StatsRegistry` when it has
        one; systems wired to an instrument bus override this to merge in
        their gauges as well.
        """
        stats = getattr(self, "stats", None)
        return dict(stats.snapshot()) if stats is not None else {}

    def stat_registries(self) -> list:
        """Every :class:`StatsRegistry` the telemetry sampler should read.

        Composite systems whose inner components keep their own registry
        (e.g. Memory-mode wrapping an NVRAM backend) override this so the
        sampler sees all of them.
        """
        stats = getattr(self, "stats", None)
        return [stats] if stats is not None else []

    def reset_state(self) -> None:
        """Optional: drop all internal state between experiment phases."""

    def reset(self) -> None:
        """Restore as-built state so a reused instance is indistinguishable
        from a freshly constructed one.

        This is the warm-cache lifecycle hook (build → acquire → run →
        reset → release): the target registry parks released systems and
        hands them back out instead of rebuilding, relying on ``reset()``
        to make a reused target produce bit-identical results to a fresh
        build.  Unlike :meth:`reset_state` (which only drops buffer/cache
        contents between experiment phases), ``reset()`` must also zero
        every statistic, station clock, and accumulated timing state.

        The default covers systems whose only mutable state is a stats
        registry plus whatever :meth:`reset_state` clears; stateful
        systems override it and reset every component.
        """
        self.reset_state()
        stats = getattr(self, "stats", None)
        if stats is not None:
            stats.reset()

    def line_span(self, start_addr: int, length: int):
        """Iterate the 64B line addresses covering a byte range."""
        addr = start_addr - (start_addr % CACHE_LINE)
        end = start_addr + length
        while addr < end:
            yield addr
            addr += CACHE_LINE
