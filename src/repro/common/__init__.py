"""Shared utilities: units, errors, and deterministic randomness."""

from repro.common.units import (
    KIB,
    MIB,
    GIB,
    NS,
    US,
    MS,
    SEC,
    ns_to_ps,
    ps_to_ns,
    ps_to_us,
    freq_mhz_to_period_ps,
    align_down,
    align_up,
    is_power_of_two,
    pretty_size,
    pretty_time,
)
from repro.common.errors import (
    ReproError,
    ConfigError,
    ProtocolError,
    SimulationError,
)
from repro.common.rng import make_rng

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "NS",
    "US",
    "MS",
    "SEC",
    "ns_to_ps",
    "ps_to_ns",
    "ps_to_us",
    "freq_mhz_to_period_ps",
    "align_down",
    "align_up",
    "is_power_of_two",
    "pretty_size",
    "pretty_time",
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "SimulationError",
    "make_rng",
]
