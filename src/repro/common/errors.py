"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class ProtocolError(ReproError):
    """A device violated a bus/DIMM protocol rule.

    Raised by the DDR4 protocol checker when a command stream breaks a
    timing or state constraint, mirroring the role of Micron's Verilog
    verification model in the paper.
    """


class SimulationError(ReproError):
    """The simulation reached an impossible or deadlocked state."""


class FaultPlanError(ReproError):
    """A fault-injection plan document is malformed or inconsistent.

    Raised when a ``repro.faultplan/1`` document fails validation or a
    :class:`~repro.faults.plan.FaultSpec` is constructed with
    contradictory trigger/parameter combinations.
    """


class UnknownTargetError(ReproError):
    """A target-system name not present in the target registry.

    Carries the unknown name and the sorted list of known names so
    callers (library users and CLIs alike) can render a helpful message;
    CLIs translate this to exit code 2.
    """

    def __init__(self, name: str, known=()):
        self.name = name
        self.known = sorted(known)
        choices = ", ".join(self.known) or "(none registered)"
        super().__init__(f"unknown target {name!r}; choose from: {choices}")


class UnknownExperimentError(ReproError):
    """An experiment id not present in the experiment registry."""

    def __init__(self, name: str, known=()):
        self.name = name
        self.known = sorted(known)
        choices = ", ".join(self.known) or "(none registered)"
        super().__init__(f"unknown experiment {name!r}; "
                         f"known experiments: {choices}")
