"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class ProtocolError(ReproError):
    """A device violated a bus/DIMM protocol rule.

    Raised by the DDR4 protocol checker when a command stream breaks a
    timing or state constraint, mirroring the role of Micron's Verilog
    verification model in the paper.
    """


class SimulationError(ReproError):
    """The simulation reached an impossible or deadlocked state."""
