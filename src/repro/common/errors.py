"""Exception hierarchy for the repro package."""

import difflib


def _suggest(name, known):
    """``"; did you mean 'x'?"`` (or ``'x' or 'y'``) for a typo'd name."""
    matches = difflib.get_close_matches(name, known, n=2, cutoff=0.5)
    if not matches:
        return ""
    if len(matches) == 1:
        return f"; did you mean {matches[0]!r}?"
    return f"; did you mean {matches[0]!r} or {matches[1]!r}?"


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class ProtocolError(ReproError):
    """A device violated a bus/DIMM protocol rule.

    Raised by the DDR4 protocol checker when a command stream breaks a
    timing or state constraint, mirroring the role of Micron's Verilog
    verification model in the paper.
    """


class SimulationError(ReproError):
    """The simulation reached an impossible or deadlocked state."""


class FaultPlanError(ReproError):
    """A fault-injection plan document is malformed or inconsistent.

    Raised when a ``repro.faultplan/1`` document fails validation or a
    :class:`~repro.faults.plan.FaultSpec` is constructed with
    contradictory trigger/parameter combinations.
    """


class UnknownTargetError(ReproError):
    """A target-system name not present in the target registry.

    Carries the unknown name and the sorted list of known names so
    callers (library users and CLIs alike) can render a helpful message;
    CLIs translate this to exit code 2.
    """

    def __init__(self, name: str, known=()):
        self.name = name
        self.known = sorted(known)
        choices = ", ".join(self.known) or "(none registered)"
        super().__init__(f"unknown target {name!r}"
                         f"{_suggest(name, self.known)}"
                         f"; choose from: {choices}")


class UnknownExperimentError(ReproError):
    """An experiment id not present in the experiment registry."""

    def __init__(self, name: str, known=()):
        self.name = name
        self.known = sorted(known)
        choices = ", ".join(self.known) or "(none registered)"
        super().__init__(f"unknown experiment {name!r}"
                         f"{_suggest(name, self.known)}"
                         f"; known experiments: {choices}")


class UnknownOverrideError(ReproError):
    """``registry.build`` was passed an override kwarg the target's
    builder does not accept.

    A typo like ``lazy_cahe=True`` must fail loudly instead of silently
    building the default configuration; the error names the bad key and
    the valid override set (with a closest-match suggestion).
    """

    def __init__(self, target: str, key: str, allowed=()):
        self.target = target
        self.key = key
        self.allowed = sorted(allowed)
        choices = ", ".join(self.allowed) or "(none)"
        super().__init__(f"unknown override {key!r} for target "
                         f"{target!r}{_suggest(key, self.allowed)}"
                         f"; valid overrides: {choices}")


class QuotaExceededError(ReproError):
    """A serve-session submission exceeded its tenant's quota.

    The session scheduler raises this for backpressure (bounded per-tenant
    queues) and quota enforcement; the wire protocol maps it to a
    429-style ``{"error": {"code": 429}}`` rejection.
    """

    #: HTTP-flavoured status code carried on the wire
    code = 429

    def __init__(self, tenant: str, reason: str):
        self.tenant = tenant
        self.reason = reason
        super().__init__(f"tenant {tenant!r} over quota: {reason}")
