"""Units used across the simulator.

All simulated time is kept as *integer picoseconds*.  Picoseconds are fine
enough to represent both a 2666MT/s memory clock (tCK = 750ps exactly) and
a 2.2GHz CPU clock (~455ps) without accumulating floating-point drift, and
integers keep event ordering deterministic.

Sizes are plain integers in bytes.
"""

from __future__ import annotations

# --- size units (bytes) ---
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- time units (picoseconds) ---
NS = 1_000
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS


def ns_to_ps(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return int(round(ns * NS))


def ps_to_ns(ps: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return ps / NS


def ps_to_us(ps: int) -> float:
    """Convert picoseconds to microseconds."""
    return ps / US


def freq_mhz_to_period_ps(mhz: float) -> int:
    """Clock period in integer picoseconds for a frequency in MHz.

    >>> freq_mhz_to_period_ps(2666)
    375

    Note: DDR buses transfer on both edges, so a "2666MHz" (really
    2666MT/s) DDR4 device has tCK = 750ps; callers pass the actual clock
    frequency (1333MHz) when they mean the clock.
    """
    return int(round(1_000_000 / mhz))


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    return align_down(value + alignment - 1, alignment)


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for 0 and non-powers."""
    return value > 0 and (value & (value - 1)) == 0


def pretty_size(nbytes: int) -> str:
    """Human-readable byte size, e.g. ``16K``, ``4M``, ``256``."""
    for unit, suffix in ((GIB, "G"), (MIB, "M"), (KIB, "K")):
        if nbytes >= unit and nbytes % unit == 0:
            return f"{nbytes // unit}{suffix}"
        if nbytes >= unit:
            return f"{nbytes / unit:.1f}{suffix}"
    return str(nbytes)


def pretty_time(ps: int) -> str:
    """Human-readable time for an integer picosecond value."""
    if ps >= SEC:
        return f"{ps / SEC:.3f}s"
    if ps >= MS:
        return f"{ps / MS:.3f}ms"
    if ps >= US:
        return f"{ps / US:.3f}us"
    if ps >= NS:
        return f"{ps / NS:.1f}ns"
    return f"{ps}ps"
