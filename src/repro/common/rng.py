"""Deterministic random number generation helpers.

Every stochastic element of the simulator (pointer-chasing permutations,
zipfian key draws, media latency jitter) takes an explicit seed so that
experiments are reproducible run-to-run.
"""

from __future__ import annotations

import random


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent :class:`random.Random` for ``(seed, stream)``.

    Using a stream label decorrelates consumers that share a top-level
    experiment seed: ``make_rng(7, "pc-perm")`` and ``make_rng(7, "media")``
    produce unrelated sequences.
    """
    return random.Random(f"{seed}:{stream}")
