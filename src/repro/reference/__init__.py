"""Digitized Optane DIMM measurement reference.

The paper validates VANS against a physical Optane server.  Without the
hardware, this package provides the *measured* side of every comparison:
an empirical model of the curves the paper reports (read/write latency
tiers with their 16KB/16MB and 512B/4KB inflections, bandwidth ordering,
wear-leveling tails, SPEC speedups).  See DESIGN.md for the substitution
rationale.
"""

from repro.reference.optane import OptaneReference, SPEC_REFERENCE, SpecRefRow

__all__ = ["OptaneReference", "SPEC_REFERENCE", "SpecRefRow"]
