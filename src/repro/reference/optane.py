"""Empirical model of the paper's Optane DIMM measurements.

Every number here is digitized from the paper's text and figures (values
read off plots are estimates; EXPERIMENTS.md lists them next to what the
simulator produces).  The model is analytic: latency tiers are blended by
buffer hit probabilities, which is exactly the steady-state behaviour of
LRU buffers under uniform-random pointer chasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.rng import make_rng
from repro.common.units import KIB, MIB

# --- measured latency tiers (ns per cache line) -----------------------

READ_TIER_RMW_NS = 120.0   # RMW-buffer hit (region <= 16KB)
READ_TIER_AIT_NS = 260.0   # AIT-buffer hit (16KB < region <= 16MB)
READ_TIER_MEDIA_NS = 420.0  # media access (region > 16MB)

STORE_TIER_WPQ_NS = 60.0    # WPQ accept (region <= 512B)
STORE_TIER_LSQ_NS = 110.0   # WPQ full, LSQ absorbing (512B..4KB)
STORE_TIER_DRAIN_NS = 330.0  # LSQ full, drain-rate limited (> 4KB)

RMW_CAPACITY = 16 * KIB
AIT_CAPACITY = 16 * MIB
WPQ_CAPACITY = 512
LSQ_CAPACITY = 4 * KIB

#: Figure 1a single-thread bandwidth (GB/s), digitized.
BANDWIDTH_GBS: Dict[str, Dict[str, float]] = {
    "pmep-6dimm": {"load": 7.5, "store": 7.0, "store-clwb": 4.5, "store-nt": 2.5},
    "optane-6dimm": {"load": 6.6, "store": 1.9, "store-clwb": 2.2, "store-nt": 4.6},
    "optane-1dimm": {"load": 2.3, "store": 0.8, "store-clwb": 0.9, "store-nt": 1.6},
}

#: Overwrite-test behaviour (Figure 7b): one long tail roughly every
#: this many 256B overwrite iterations, with this magnitude.
OVERWRITE_TAIL_INTERVAL = 14_000
OVERWRITE_TAIL_US = 50.0
OVERWRITE_BASE_US = 0.35


@dataclass(frozen=True)
class SpecRefRow:
    """Per-benchmark server measurements for Figure 11 / Table IV.

    ``dram_ipc`` and ``llc_miss_rate`` are the DRAM-server measurements
    (Fig. 11a/b axes); ``nvram_speedup`` is ExecTimeDRAM/ExecTimeNVRAM on
    the Optane server (Fig. 11c, < 1 because NVRAM is slower).  MPKI and
    footprints are Table IV exact values; the rest are plot digitizations
    (monotone in memory intensity).
    """

    name: str
    suite: str
    llc_mpki: float
    footprint_gb: float
    dram_ipc: float
    llc_miss_rate: float
    nvram_speedup: float


SPEC_REFERENCE: List[SpecRefRow] = [
    SpecRefRow("gcc", "2006", 2.9, 1.2, 1.10, 0.55, 0.72),
    SpecRefRow("mcf", "2006", 27.1, 9.1, 0.35, 0.70, 0.42),
    SpecRefRow("sjeng", "2006", 2.7, 0.63, 1.25, 0.35, 0.80),
    SpecRefRow("libquantum", "2006", 3.4, 2.3, 1.05, 0.60, 0.70),
    SpecRefRow("omnetpp", "2006", 2.1, 1.4, 1.30, 0.45, 0.78),
    SpecRefRow("cactusADM", "2006", 2.0, 2.2, 1.40, 0.40, 0.82),
    SpecRefRow("lbm", "2006", 7.7, 2.9, 0.80, 0.65, 0.55),
    SpecRefRow("wrf", "2006", 2.4, 1.0, 1.35, 0.38, 0.80),
    SpecRefRow("gcc17", "2017", 21.5, 1.1, 0.45, 0.68, 0.45),
    SpecRefRow("mcf17", "2017", 26.3, 8.7, 0.38, 0.72, 0.43),
    SpecRefRow("omnetpp17", "2017", 2.1, 0.96, 1.28, 0.44, 0.77),
    SpecRefRow("deepsjeng17", "2017", 2.5, 0.58, 1.22, 0.36, 0.80),
    SpecRefRow("xz17", "2017", 2.7, 1.8, 1.15, 0.42, 0.76),
]


class OptaneReference:
    """Analytic 'real machine': the measured curves the paper reports."""

    def __init__(self, noise: float = 0.02, seed: int = 7) -> None:
        self.noise = noise
        self._rng = make_rng(seed, "optane-ref")
        self.name = "optane-ref"

    # -- internal helpers ----------------------------------------------

    def _jitter(self, value: float) -> float:
        if self.noise <= 0:
            return value
        return value * (1.0 + self._rng.uniform(-self.noise, self.noise))

    @staticmethod
    def _hit_fraction(capacity: int, region: int) -> float:
        """Steady-state hit rate of an LRU buffer under uniform-random
        accesses over ``region`` bytes."""
        if region <= 0:
            return 1.0
        return min(1.0, capacity / region)

    # -- pointer-chasing latency curves (Figs. 1b, 5a) ------------------

    def pc_read_latency_ns(self, region_bytes: int, block_bytes: int = 64,
                           ndimms: int = 1) -> float:
        """Average read latency per cache line for a pointer-chasing test
        over ``region_bytes`` (64B accesses within ``block_bytes`` blocks).

        ``ndimms`` scales the buffer reach: with N interleaved DIMMs a
        region spreads over N RMW/AIT buffers (Fig. 9b / 10b).
        """
        p_rmw = self._hit_fraction(RMW_CAPACITY * ndimms, region_bytes)
        p_ait = self._hit_fraction(AIT_CAPACITY * ndimms, region_bytes)
        # Larger PC-blocks amortize the per-entry fill over more lines.
        lines_per_entry = max(1, min(block_bytes, 256) // 64)
        miss_rmw = (1.0 - p_rmw) / lines_per_entry
        hit_rmw = 1.0 - (1.0 - p_rmw)  # resident fraction
        p_media = (1.0 - p_ait)
        lat = (
            hit_rmw * READ_TIER_RMW_NS
            + miss_rmw * ((1.0 - p_media) * READ_TIER_AIT_NS
                          + p_media * READ_TIER_MEDIA_NS)
            + ((1.0 - p_rmw) - miss_rmw) * READ_TIER_RMW_NS
        )
        return self._jitter(lat)

    def pc_store_latency_ns(self, region_bytes: int, block_bytes: int = 64,
                            ndimms: int = 1) -> float:
        """Average nt-store accept latency per cache line (Fig. 5a st)."""
        p_wpq = self._hit_fraction(WPQ_CAPACITY * ndimms, region_bytes)
        p_lsq = self._hit_fraction(LSQ_CAPACITY * ndimms, region_bytes)
        lat = (
            p_wpq * STORE_TIER_WPQ_NS
            + (p_lsq - p_wpq) * STORE_TIER_LSQ_NS
            + (1.0 - p_lsq) * STORE_TIER_DRAIN_NS
        )
        return self._jitter(lat)

    def raw_latency_ns(self, region_bytes: int) -> float:
        """Read-after-write roundtrip per CL (Fig. 5c RaW curve).

        Small regions pay the LSQ flush (fence) and bus-redirection
        penalties, amortized away by ~4KB (the LSQ capacity).
        """
        r_plus_w = self.pc_read_latency_ns(region_bytes) + self.pc_store_latency_ns(
            region_bytes
        )
        fence_penalty = 900.0 * min(1.0, LSQ_CAPACITY / max(region_bytes, 64))
        return self._jitter(r_plus_w + fence_penalty)

    # -- amplification scores (Fig. 6) ----------------------------------

    def read_amp_score(self, block_bytes: int, level: str = "rmw") -> float:
        """Amplification score = overflow/non-overflow latency ratio.

        Drops to ~1 when the PC-block size reaches the buffer entry size
        (256B for the RMW buffer, 4KB for the AIT buffer).
        """
        if level == "rmw":
            entry, t_hit, t_miss = 256, READ_TIER_RMW_NS, READ_TIER_AIT_NS
        else:
            entry, t_hit, t_miss = 4096, READ_TIER_AIT_NS, READ_TIER_MEDIA_NS
        lines = max(1, block_bytes // 64)
        fills = max(1, block_bytes // entry) if block_bytes >= entry else 1
        overflow = (fills * t_miss + (lines - fills) * t_hit) / lines
        return self._jitter(overflow / t_hit)

    def write_amp_score(self, block_bytes: int, level: str = "wpq") -> float:
        """Write amplification score (WPQ 512B / LSQ 256B granularity)."""
        if level == "wpq":
            entry, t_fast, t_slow = 512, STORE_TIER_WPQ_NS, STORE_TIER_LSQ_NS
        else:
            entry, t_fast, t_slow = 256, STORE_TIER_LSQ_NS, STORE_TIER_DRAIN_NS
        lines = max(1, block_bytes // 64)
        flushes = max(1, block_bytes // entry) if block_bytes >= entry else 1
        overflow = (flushes * t_slow + (lines - flushes) * t_fast) / lines
        return self._jitter(overflow / t_fast)

    # -- bandwidth (Fig. 1a) --------------------------------------------

    def bandwidth_gbs(self, op: str, system: str = "optane-6dimm") -> float:
        """Single-thread bandwidth for ``op`` in {load, store,
        store-clwb, store-nt}."""
        return self._jitter(BANDWIDTH_GBS[system][op])

    # -- overwrite / wear-leveling (Fig. 7b-c, Fig. 9d) ------------------

    def overwrite_latency_us(self, iteration: int) -> float:
        """Latency of overwrite iteration ``iteration`` (256B writes)."""
        if iteration > 0 and iteration % OVERWRITE_TAIL_INTERVAL == 0:
            return self._jitter(OVERWRITE_TAIL_US)
        return self._jitter(OVERWRITE_BASE_US)

    def tail_ratio_permille(self, region_bytes: int) -> float:
        """Long-tail frequency vs. overwrite region size (Fig. 7c)."""
        if region_bytes <= 64 * KIB:
            base = 1000.0 / OVERWRITE_TAIL_INTERVAL
        else:
            # spreading across wear blocks defeats the hot-block detector
            base = (1000.0 / OVERWRITE_TAIL_INTERVAL) * math.exp(
                -(region_bytes / (64 * KIB) - 1.0)
            )
        return self._jitter(base)

    # -- interleaving (Fig. 7a) ------------------------------------------

    def sequential_write_time_us(self, nbytes: int, interleaved: bool) -> float:
        """Execution time of an nbytes sequential write burst."""
        lines = nbytes // 64
        per_line_ns = 40.0
        if not interleaved:
            total = lines * per_line_ns
        else:
            # every 4KB chunk starts on a fresh DIMM whose WPQ is empty:
            # the first 8 lines of each chunk are absorbed quickly.
            chunk_lines = 4096 // 64
            full, rest = divmod(lines, chunk_lines)
            fast, slow = 10.0, per_line_ns
            chunk_ns = 8 * fast + (chunk_lines - 8) * slow
            total = full * chunk_ns + min(rest, 8) * fast + max(0, rest - 8) * slow
            total *= 0.92  # cross-DIMM drain overlap
        return self._jitter(total / 1000.0)

    # -- SPEC (Fig. 11 / Table IV) ---------------------------------------

    def spec_rows(self) -> List[SpecRefRow]:
        return list(SPEC_REFERENCE)

    def spec_row(self, name: str) -> SpecRefRow:
        for row in SPEC_REFERENCE:
            if row.name == name:
                return row
        raise KeyError(name)

    # -- cloud profiling (Fig. 12) ----------------------------------------

    def redis_profile(self) -> Dict[str, Tuple[float, float]]:
        """(read, rest) normalized CPI / LLC miss / TLB miss (Fig. 12a)."""
        return {"cpi": (8.8, 1.0), "llc_miss": (7.5, 1.0), "tlb_miss": (6.0, 1.0)}

    def ycsb_profile(self) -> Dict[str, Tuple[float, float]]:
        """(top10, rest) normalized wear / write-amp / latency (Fig. 12b)."""
        return {"wear_leveling": (503.0, 1.0), "write_amp": (2.6, 1.0),
                "avg_latency": (1.8, 1.0)}
