"""repro — reproduction of "Characterizing and Modeling Non-Volatile
Memory Systems" (MICRO 2020): the LENS profiler and the VANS simulator.

Public API tour:

* ``VansSystem`` / ``VansConfig`` — the validated Optane-DIMM simulator
  (App Direct mode); ``MemoryModeSystem`` for Memory mode.
* ``repro.lens`` — the LENS probers and microbenchmarks; run
  ``lens.characterize(lambda: VansSystem())`` to reverse engineer a
  memory system from its performance patterns.
* ``repro.cpu.FullSystem`` — the trace-driven full-system harness
  (core + caches + TLBs over any memory backend).
* ``repro.baselines`` — PMEP / Quartz / DRAMSim2 / Ramulator-style
  models the paper compares against.
* ``repro.workloads`` — SPEC-calibrated and cloud workload generators.
* ``repro.optim`` — Pre-translation and Lazy cache.
* ``repro.experiments`` — one module per paper table/figure.
"""

# version first: submodules (telemetry.manifest) read it during import,
# possibly while this package is still partially initialized.
__version__ = "1.0.0"

from repro.target import TargetSystem
from repro.vans import VansConfig, VansSystem, MemoryModeSystem
from repro.vans.config import optane_config
from repro.reference import OptaneReference

__all__ = [
    "TargetSystem",
    "VansConfig",
    "VansSystem",
    "MemoryModeSystem",
    "optane_config",
    "OptaneReference",
    "__version__",
]
