"""Shared ``--telemetry`` option wiring for the command-line tools.

Mirrors :mod:`repro.tools.flight_opts`: every CLI that drives targets
supports the same telemetry flags; this module owns adding them to a
parser, turning them into a sampler *spec* (a plain dict, so it crosses
process boundaries to parallel workers), and rendering/exporting the
post-run timelines (terminal sparklines, long-form CSV, Chrome counter
tracks).
"""

from __future__ import annotations

import argparse
from typing import Dict, Iterable, Optional

from repro.telemetry import (
    DEFAULT_INTERVAL_PS,
    Timeline,
    render_timeline,
    save_chrome_counters,
    save_timelines_csv,
)
from repro.common.units import US


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", action="store_true",
                        help="sample sim-time telemetry timelines and "
                             "print sparklines per experiment")
    parser.add_argument("--telemetry-interval", type=float,
                        default=DEFAULT_INTERVAL_PS / US, metavar="USEC",
                        help="sampling interval in simulated microseconds "
                             "(default %(default)g)")
    parser.add_argument("--telemetry-csv", metavar="PATH",
                        help="export all sampled series as long-form CSV "
                             "(implies --telemetry)")
    parser.add_argument("--telemetry-trace", metavar="PATH",
                        help="export timelines as Chrome counter tracks "
                             "(implies --telemetry)")


def telemetry_spec_from_args(args: argparse.Namespace
                             ) -> Optional[Dict[str, object]]:
    """A sampler spec matching the parsed flags, or ``None`` when off.

    The spec (not a live sampler) is what travels: each experiment run —
    serial or in a worker process — constructs its own sampler from it,
    which is what keeps ``--workers N`` bit-identical to serial.
    """
    if not (args.telemetry or args.telemetry_csv or args.telemetry_trace):
        return None
    return {"interval_ps": int(args.telemetry_interval * US)}


def timelines_from_results(results: Iterable) -> Dict[str, Timeline]:
    """``experiment id -> Timeline`` from results carrying telemetry.

    Results of one experiment share the run's timeline, so the first one
    seen per experiment wins.
    """
    timelines: Dict[str, Timeline] = {}
    for result in results:
        doc = getattr(result, "telemetry", None) or {}
        timeline_doc = doc.get("timeline")
        if timeline_doc and result.experiment not in timelines:
            timelines[result.experiment] = Timeline.from_dict(timeline_doc)
    return timelines


def report_telemetry(results: Iterable, args: argparse.Namespace) -> None:
    """Print sparklines and run the exports after a sampled run."""
    timelines = timelines_from_results(results)
    if not timelines:
        return
    for experiment in sorted(timelines):
        print(f"\n[{experiment}]")
        print(render_timeline(timelines[experiment]))
    if getattr(args, "telemetry_csv", None):
        rows = save_timelines_csv(timelines, args.telemetry_csv)
        print(f"\n[exported {rows} telemetry rows to {args.telemetry_csv}]")
    if getattr(args, "telemetry_trace", None):
        events = save_chrome_counters(timelines, args.telemetry_trace)
        print(f"[exported {events} counter events to {args.telemetry_trace}]")
