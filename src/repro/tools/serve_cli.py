"""``repro-serve``: the simulation-as-a-service CLI.

Subcommands:

``daemon``
    Host the session daemon: ``repro-serve daemon --port 7421
    --workers 4``.  Prints the bound address (``--port 0`` picks a free
    port) and serves until interrupted.
``run``
    Client one-shot: open a session against a running daemon, run a
    named experiment, print its rendered tables (or ``--json``).
``stream``
    Client one-shot for a raw request stream against a registry target.
``smoke``
    Self-contained end-to-end check (used by CI): hosts a daemon
    in-process, runs ``fig1`` through a session twice — cold build and
    warm-cache reuse — and asserts both are bit-identical to the batch
    runner's payload, exercises one quota rejection, and verifies the
    shutdown leaves no worker processes behind.

Exit codes follow the repo convention: 0 ok, 1 failure, 2 usage
(unknown experiment/target/override — with closest-match suggestions).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.common.errors import QuotaExceededError, ReproError

#: result_to_dict keys that may differ between served and batch runs by
#: construction (wall clock; serving identity; retry accounting)
NONPAYLOAD_KEYS = ("wall_s", "session", "attempts")


def payload_fingerprint(result_doc: Dict[str, Any]) -> Dict[str, Any]:
    """A served/batch-comparable view of one serialized result."""
    return {k: v for k, v in result_doc.items() if k not in NONPAYLOAD_KEYS}


def _cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.log import ServeLog
    from repro.serve.server import ServeDaemon

    log = ServeLog(level=args.log_level, json_lines=args.log_json)
    daemon = ServeDaemon(host=args.host, port=args.port,
                         workers=args.workers, warm_cache=args.warm_cache,
                         max_active=args.max_active,
                         max_queued=args.max_queued,
                         job_timeout_s=args.job_timeout, seed=args.seed,
                         log=log, metrics_port=args.metrics_port)

    async def _serve() -> None:
        await daemon.start()
        print(f"repro-serve listening on {daemon.host}:{daemon.port} "
              f"({args.workers} worker(s), warm cache "
              f"{args.warm_cache})", flush=True)
        if daemon._metrics_http is not None:
            print(f"repro-serve metrics on http://{daemon.host}:"
                  f"{daemon._metrics_http.port}/metrics", flush=True)
        try:
            await daemon.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro-serve: interrupted; shutting down", file=sys.stderr)
    finally:
        daemon.pool.shutdown()
    return 0


def _live_status_printer():
    """A progress handler that keeps one status line current.

    Rewrites in place on a TTY; emits one line per frame otherwise so
    CI logs still show the stream.
    """
    end = "\r" if sys.stdout.isatty() else "\n"

    def on_progress(frame: Dict[str, Any]) -> None:
        print(f"[live] phase={frame.get('phase')} "
              f"done={frame.get('done_requests', 0)} "
              f"sim={frame.get('sim_time_ns', 0)}ns "
              f"frame={frame.get('frame', 0)}",
              end=end, flush=True)

    return on_progress


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    telemetry = ({"interval_ps": args.telemetry} if args.telemetry
                 else None)
    on_progress = _live_status_printer() if args.progress else None
    with ServeClient(args.host, args.port, tenant=args.tenant) as client:
        reply = client.run_experiment(args.experiment, scale=args.scale,
                                      seed=args.seed, telemetry=telemetry,
                                      on_progress=on_progress)
    if on_progress is not None:
        print(flush=True)             # end the live status line
    results = reply.get("results", [])
    if args.json:
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(reply, fh, indent=2, sort_keys=True)
        print(f"[saved result message to {args.json}]")
    for doc in results:
        print(f"== {doc['experiment']}: {doc['title']} ==")
        for key, value in doc.get("metrics", {}).items():
            print(f"{key}: {value}")
        print()
    session = reply.get("manifest", {}).get("session", {})
    print(f"[session {session.get('session')} tenant "
          f"{session.get('tenant')}; {len(results)} result(s)]")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    ops = [{"op": args.op, "addr": 0, "count": args.count,
            "stride": args.stride}]
    issue = None
    if args.shards is not None or args.open_loop:
        issue = "open"
        ops.append({"op": "fence"})
    with ServeClient(args.host, args.port, tenant=args.tenant) as client:
        reply = client.run_stream(args.target, ops, issue=issue,
                                  shards=args.shards)
    stream = reply.get("stream", {})
    print(f"target {stream.get('target')}: {stream.get('ops')} op(s), "
          f"sim end {stream.get('sim_end_ps')} ps, "
          f"mean latency {stream.get('mean_latency_ps'):.0f} ps")
    if args.json:
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(reply, fh, indent=2, sort_keys=True)
        print(f"[saved result message to {args.json}]")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.experiments.exec import run_experiment
    from repro.experiments.export import result_to_dict
    from repro.serve.client import ServeClient
    from repro.serve.server import running_daemon

    failures: List[str] = []
    telemetry = {"interval_ps": 200_000}
    flight = {"mode": "every", "every": 8}
    seed = args.seed

    def check(condition: bool, label: str) -> None:
        print(f"[{'ok' if condition else 'FAIL'}] {label}", flush=True)
        if not condition:
            failures.append(label)

    batch = [payload_fingerprint(result_to_dict(r))
             for r in run_experiment(args.experiment, seed=seed,
                                     telemetry=telemetry)]
    print(f"[batch {args.experiment}: {len(batch)} result(s)]", flush=True)
    from repro.experiments.exec import make_flight_recorder
    batch_flight = [payload_fingerprint(result_to_dict(r))
                    for r in run_experiment(
                        args.experiment, seed=seed,
                        flight=make_flight_recorder(flight))]
    print(f"[batch {args.experiment} + flight recorder]", flush=True)

    with running_daemon(workers=2, warm_cache=8, max_active=1,
                        max_queued=1, seed=seed) as daemon:
        with ServeClient("127.0.0.1", daemon.port,
                         tenant="smoke") as client:
            frames: List[Dict[str, Any]] = []
            live = _live_status_printer()

            def on_progress(frame: Dict[str, Any]) -> None:
                frames.append(frame)
                live(frame)

            cold = client.run_experiment(
                args.experiment, seed=seed, telemetry=telemetry,
                progress=True, on_progress=on_progress)
            if sys.stdout.isatty():
                print(flush=True)     # end the live status line
            warm = client.run_experiment(args.experiment, seed=seed,
                                         telemetry=telemetry)
            served_cold = [payload_fingerprint(d) for d in cold["results"]]
            served_warm = [payload_fingerprint(d) for d in warm["results"]]
            check(served_cold == batch,
                  "served (cold build, progress streaming) == batch "
                  "runner, bit-identical")
            check(served_warm == batch,
                  "served (warm-cache reuse) == batch runner, "
                  "bit-identical")
            check(len(frames) >= 2,
                  f"progress streamed >=2 frames before the terminal "
                  f"reply ({len(frames)} frame(s))")
            sims = [f.get("sim_time_ns", 0) for f in frames]
            check(sims == sorted(sims),
                  "progress sim_time_ns is monotone non-decreasing")
            check(warm["warm_cache"]["hits"] > 0,
                  f"warm cache reused targets "
                  f"({warm['warm_cache']['hits']} hit(s))")
            check(all(d["session"] == {"session": client.session,
                                       "tenant": "smoke"}
                      for d in cold["results"]),
                  "results carry the session identity")
            check(cold["manifest"]["session"]["session"] == client.session,
                  "manifest carries the session identity")

            flighted = client.run_experiment(args.experiment, seed=seed,
                                             flight=flight)
            served_flight = [payload_fingerprint(d)
                             for d in flighted["results"]]
            check(served_flight == batch_flight,
                  "served flight breakdowns == batch runner, "
                  "bit-identical")

            # backpressure: 1 active + 1 queued, third submit must be
            # rejected with a 429 while the first two are still busy
            busy_ops = [{"op": "read", "count": 30_000, "stride": 64}]
            first = client.submit_stream("vans", busy_ops)
            second = client.submit_stream("vans", busy_ops)
            third = client.submit_stream("vans", busy_ops)

            # mid-run metrics scrape: jobs are still active/queued, so
            # the exposition must already carry scheduler, pool, and
            # warm-cache series and parse strictly
            from repro.serve.metrics import parse_exposition
            exposition = client.metrics(format="prometheus")
            try:
                samples = parse_exposition(exposition)
            except ValueError as exc:
                samples = {}
                print(f"[exposition error] {exc}", file=sys.stderr)
            check(len(samples) > 0,
                  f"mid-run Prometheus exposition parses "
                  f"({len(samples)} sample(s))")
            check(any(k.startswith("repro_serve_scheduler_jobs_total")
                      for k in samples)
                  and "repro_serve_workers" in samples
                  and any(k.startswith(
                      "repro_serve_warm_cache_events_total")
                      for k in samples),
                  "exposition covers scheduler, pool, and warm cache")
            check(samples.get("repro_serve_jobs_in_flight", 0) >= 1,
                  "mid-run scrape sees in-flight jobs")
            metrics_doc = client.metrics()
            check(metrics_doc["counters"]["progress_frames_total"]
                  >= len(frames),
                  "daemon counted the relayed progress frames")

            rejection = client.wait(third, raise_on_error=False)
            check(rejection.get("type") == "rejected"
                  and rejection.get("code") == 429,
                  "quota overflow rejected with code 429")
            ok_first = client.wait(first)
            ok_second = client.wait(second)
            check(ok_first["stream"]["ops"] == 30_000
                  and ok_second["stream"]["sim_end_ps"]
                  == ok_first["stream"]["sim_end_ps"],
                  "queued stream jobs completed deterministically")
        pool = daemon.pool
    check(pool.processes_alive() == 0,
          "shutdown left no orphaned worker processes")
    if failures:
        print(f"[smoke FAILED: {len(failures)} check(s)]", file=sys.stderr)
        return 1
    print("[smoke ok]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-serve",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    daemon_p = sub.add_parser("daemon", help="host the session daemon")
    daemon_p.add_argument("--host", default="127.0.0.1")
    daemon_p.add_argument("--port", type=int, default=7421,
                          help="TCP port (0 picks a free one)")
    daemon_p.add_argument("--workers", type=int, default=2,
                          help="persistent worker processes")
    daemon_p.add_argument("--warm-cache", type=int, default=8,
                          help="built targets each worker may park "
                               "for reuse (0 disables)")
    daemon_p.add_argument("--max-active", type=int, default=2,
                          help="per-tenant concurrently running jobs")
    daemon_p.add_argument("--max-queued", type=int, default=8,
                          help="per-tenant queued jobs before 429")
    daemon_p.add_argument("--job-timeout", type=float, default=None,
                          metavar="S", help="watchdog per job (seconds)")
    daemon_p.add_argument("--seed", type=int, default=42)
    daemon_p.add_argument("--log-level", default="info",
                          choices=["debug", "info", "warning", "error",
                                   "off"],
                          help="structured log verbosity (stderr)")
    daemon_p.add_argument("--log-json", action="store_true",
                          help="emit logs as JSON lines instead of text")
    daemon_p.add_argument("--metrics-port", type=int, default=None,
                          metavar="PORT",
                          help="also serve Prometheus text on plain "
                               "HTTP GET /metrics (0 picks a free port)")
    daemon_p.set_defaults(func=_cmd_daemon)

    run_p = sub.add_parser("run", help="run one experiment via a session")
    run_p.add_argument("experiment")
    run_p.add_argument("--host", default="127.0.0.1")
    run_p.add_argument("--port", type=int, default=7421)
    run_p.add_argument("--tenant", default="cli")
    run_p.add_argument("--scale", default="smoke",
                       choices=["smoke", "paper"])
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--telemetry", type=int, default=0, metavar="PS",
                       help="sample sim-time telemetry every PS ps")
    run_p.add_argument("--json", metavar="PATH",
                       help="save the full result message as JSON")
    run_p.add_argument("--progress", action="store_true",
                       help="stream live progress frames while waiting")
    run_p.set_defaults(func=_cmd_run)

    stream_p = sub.add_parser("stream",
                              help="drive a target with a request stream")
    stream_p.add_argument("target")
    stream_p.add_argument("--host", default="127.0.0.1")
    stream_p.add_argument("--port", type=int, default=7421)
    stream_p.add_argument("--tenant", default="cli")
    stream_p.add_argument("--op", default="read",
                          choices=["read", "write", "fence"])
    stream_p.add_argument("--count", type=int, default=1024)
    stream_p.add_argument("--stride", type=int, default=64)
    stream_p.add_argument("--shards", type=int, default=None,
                          help="shard the stream by iMC channel on the "
                               "server (implies open-loop issue)")
    stream_p.add_argument("--open", action="store_true", dest="open_loop",
                          help="open-loop fence-delimited issue "
                               "(the shard plane) instead of chained")
    stream_p.add_argument("--json", metavar="PATH")
    stream_p.set_defaults(func=_cmd_stream)

    smoke_p = sub.add_parser("smoke",
                             help="end-to-end serve check (CI)")
    smoke_p.add_argument("--experiment", default="fig1")
    smoke_p.add_argument("--seed", type=int, default=42)
    smoke_p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except QuotaExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        # unknown experiment/target/override: the message carries the
        # closest-match suggestion and the valid-name list.  Usage-level
        # server replies (code 2) exit 2 like every repro CLI; internal
        # server failures exit 1.
        print(f"error: {exc}", file=sys.stderr)
        return 1 if getattr(exc, "code", 2) == 1 else 2
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
