"""Trace capture and replay from the command line.

Examples::

    # capture a pointer-chasing run into a trace file
    python -m repro.tools.trace_cli capture --pattern chase \
        --region 1048576 --ops 5000 out.trace

    # replay any trace against any target
    python -m repro.tools.trace_cli replay out.trace --target ramulator-pcm
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from contextlib import nullcontext

from repro import registry
from repro.common.errors import UnknownTargetError
from repro.common.rng import make_rng
from repro.engine.request import CACHE_LINE, Op
from repro.flight import session as flight_session
from repro.tools.flight_opts import (add_flight_args, recorder_from_args,
                                     report_flight)
from repro.tools.targets import make_target
from repro.vans.tracing import TraceRecord, load_trace, replay, save_trace


def generate_pattern(pattern: str, region: int, ops: int, seed: int):
    rng = make_rng(seed, f"trace-{pattern}")
    lines = max(1, region // CACHE_LINE)
    if pattern == "chase":
        for _ in range(ops):
            yield TraceRecord(Op.READ, rng.randrange(lines) * CACHE_LINE)
    elif pattern == "seq-write":
        for i in range(ops):
            yield TraceRecord(Op.WRITE_NT, (i % lines) * CACHE_LINE)
        yield TraceRecord(Op.FENCE)
    elif pattern == "overwrite":
        for _ in range(ops):
            for line in range(0, 256, CACHE_LINE):
                yield TraceRecord(Op.WRITE_NT, line)
            yield TraceRecord(Op.FENCE)
    else:
        raise SystemExit(f"unknown pattern {pattern!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    cap = sub.add_parser("capture", help="generate a trace file")
    cap.add_argument("output")
    cap.add_argument("--pattern", default="chase",
                     choices=["chase", "seq-write", "overwrite"])
    cap.add_argument("--region", type=int, default=1 << 20)
    cap.add_argument("--ops", type=int, default=5000)
    cap.add_argument("--seed", type=int, default=0)

    rep = sub.add_parser("replay", help="replay a trace against a target")
    rep.add_argument("input")
    rep.add_argument(
        "--target", default="vans",
        help="system to replay against "
             f"({', '.join(registry.target_names(systems_only=True))})")
    add_flight_args(rep)

    args = parser.parse_args(argv)
    if args.command == "capture":
        count = save_trace(
            generate_pattern(args.pattern, args.region, args.ops, args.seed),
            args.output)
        print(f"wrote {count} records to {args.output}")
        return 0

    recorder = recorder_from_args(args)
    session = flight_session(recorder) if recorder is not None else nullcontext()
    try:
        with session:
            target = make_target(args.target)()
            result = replay(load_trace(args.input), target)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"target: {target.name}")
    print(f"reads:  {result.reads.count:>8}  mean {result.read_mean_ns:.1f} ns")
    print(f"writes: {result.writes.count:>8}  mean {result.write_mean_ns:.1f} ns")
    print(f"fences: {result.fences}")
    print(f"simulated time: {result.end_ps / 1e9:.3f} ms")
    report_flight(recorder, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
