"""``repro-shard``: drive, check, and cross-check the shard plane.

Usage::

    repro-shard run --target vans --shards 4 --requests 20000
    repro-shard identity --shards 2 4            # serial vs sharded, byte-compare
    repro-shard crosscheck --level media         # vector vs scalar media engine

``run`` compiles a synthetic open-loop stream (or one read from a JSON
ops file), executes it across ``--shards`` workers, and prints the
merged ``repro.shard/1`` document.

``identity`` is the CI teeth: it runs the *same* stream serially and
under each requested shard count, strips the variant keys (plan,
engine, fork), and byte-compares the canonical JSON.  Any difference
is a determinism bug — exit ``3``.

``crosscheck`` runs the media-level stream once with the scalar
(authoritative) engine and once with the numpy-vectorized engine and
demands identical documents — the LegacyEngine-style checksum gate for
the batched timing math.  Exit ``3`` on divergence, ``0`` if numpy is
unavailable (the vector path is then never used in production either).

Exit codes: ``0`` ok, ``2`` usage error, ``3`` identity/cross-check
violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.common.errors import ReproError

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_MISMATCH = 3


def _parse_override(text: str) -> tuple:
    """``key=value`` with JSON value coercion (bare words stay strings)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} is not key=value")
    key, _, raw = text.partition("=")
    try:
        value: Any = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _build_ops(args: argparse.Namespace) -> List[Dict[str, Any]]:
    if args.ops:
        try:
            with open(args.ops, "r", encoding="utf-8") as fh:
                ops = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read ops file {args.ops}: {exc}")
        if not isinstance(ops, list):
            raise ReproError(f"ops file {args.ops} must hold a JSON list")
        return ops
    from repro.shard.stream import synthetic_stream
    return synthetic_stream(args.kind, args.requests, stride=args.stride,
                            fence_every=args.fence_every,
                            write_ratio=args.write_ratio, seed=args.seed)


def _canonical(doc: Dict[str, Any]) -> str:
    from repro.shard.executor import identity_view
    return json.dumps(identity_view(doc), sort_keys=True,
                      separators=(",", ":"))


def _run_one(args: argparse.Namespace, ops: List[Dict[str, Any]],
             shards: int, engine: str, fork: Optional[bool]
             ) -> Dict[str, Any]:
    from repro.shard.executor import run_shard_stream
    return run_shard_stream(args.target, ops, shards=shards,
                            overrides=dict(args.override or []),
                            level=args.level, engine=engine, fork=fork)


def _cmd_run(args: argparse.Namespace) -> int:
    ops = _build_ops(args)
    fork = {"auto": None, "on": True, "off": False}[args.fork]
    doc = _run_one(args, ops, args.shards, args.engine, fork)
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return EXIT_OK


def _cmd_identity(args: argparse.Namespace) -> int:
    ops = _build_ops(args)
    serial = _run_one(args, ops, 1, args.engine, False)
    want = _canonical(serial)
    print(f"identity: target={args.target} level={args.level} "
          f"requests={serial['counts'].get('read', 0) + serial['counts'].get('write', 0) + serial['counts'].get('write_nt', 0)} "
          f"epochs={serial['epochs']} checksum={serial['checksum']}")
    failures = 0
    for shards in args.shards:
        for fork in ((False, True) if args.forked else (False,)):
            doc = _run_one(args, ops, shards, args.engine, fork)
            mode = "forked" if fork else "in-process"
            label = f"shards={shards} ({mode}, plan {doc['plan']['effective']})"
            if _canonical(doc) == want:
                print(f"  {label}: identical")
            else:
                failures += 1
                print(f"  {label}: MISMATCH "
                      f"(checksum {doc['checksum']} vs {serial['checksum']})",
                      file=sys.stderr)
    if failures:
        print(f"\nshard identity violated in {failures} case(s)",
              file=sys.stderr)
        return EXIT_MISMATCH
    print("shard identity holds: merged output is byte-identical to serial")
    return EXIT_OK


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    from repro.shard.vector import HAVE_NUMPY
    if not HAVE_NUMPY:
        print("numpy unavailable; vector engine disabled — nothing to check")
        return EXIT_OK
    ops = _build_ops(args)
    scalar = _run_one(args, ops, args.shards, "scalar", False)
    vector = _run_one(args, ops, args.shards, "vector", False)
    print(f"crosscheck: target={args.target} level={args.level} "
          f"shards={args.shards} epochs={scalar['epochs']}")
    print(f"  scalar checksum {scalar['checksum']}")
    print(f"  vector checksum {vector['checksum']}")
    if _canonical(scalar) != _canonical(vector):
        print("\nvector engine diverged from the scalar reference",
              file=sys.stderr)
        return EXIT_MISMATCH
    print("vector engine matches the scalar reference byte-for-byte")
    return EXIT_OK


def _add_stream_args(parser: argparse.ArgumentParser,
                     level_default: str = "system") -> None:
    parser.add_argument("--target", default="vans",
                        help="registry target (default: %(default)s)")
    parser.add_argument("--override", action="append", metavar="KEY=VAL",
                        type=_parse_override,
                        help="config override (repeatable; JSON values)")
    parser.add_argument("--level", default=level_default,
                        choices=["system", "media"],
                        help="execution level (default: %(default)s)")
    parser.add_argument("--ops", metavar="PATH",
                        help="JSON ops file instead of a synthetic stream")
    parser.add_argument("--kind", default="burst",
                        choices=["seq", "burst", "rand"],
                        help="synthetic stream shape (default: %(default)s)")
    parser.add_argument("--requests", type=int, default=20000,
                        help="synthetic stream length (default: %(default)s)")
    parser.add_argument("--stride", type=int, default=256)
    parser.add_argument("--fence-every", type=int, default=1024)
    parser.add_argument("--write-ratio", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shard",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a stream across shards")
    _add_stream_args(p_run)
    p_run.add_argument("--shards", type=int, default=2)
    p_run.add_argument("--engine", default="auto",
                       choices=["auto", "scalar", "vector"])
    p_run.add_argument("--fork", default="auto",
                       choices=["auto", "on", "off"],
                       help="worker processes (default: auto by cpu count)")
    p_run.set_defaults(func=_cmd_run)

    p_id = sub.add_parser(
        "identity", help="byte-compare serial vs sharded output")
    _add_stream_args(p_id)
    p_id.add_argument("--shards", type=int, nargs="+", default=[2, 4],
                      help="shard counts to compare against serial "
                           "(default: %(default)s)")
    p_id.add_argument("--engine", default="scalar",
                      choices=["auto", "scalar", "vector"],
                      help="engine for every run (default: %(default)s so "
                           "the check isolates sharding, not vectorization)")
    p_id.add_argument("--forked", action="store_true",
                      help="also check the forked-worker execution path")
    p_id.set_defaults(func=_cmd_identity)

    p_cc = sub.add_parser(
        "crosscheck", help="vector vs scalar media-engine equivalence")
    _add_stream_args(p_cc, level_default="media")
    p_cc.add_argument("--shards", type=int, default=1)
    p_cc.set_defaults(func=_cmd_crosscheck)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
