"""``repro-prof``: host wall-clock profiling for the simulator itself.

Four subcommands:

* ``run <experiment>`` — run any registry experiment under the
  profiler and print a top-N self-time table (where the *host's* wall
  time went, per station callsite);
* ``kernel <case>`` — profile a ``repro-bench --suite kernel``
  workload on the optimized engine, attributing per-handler dispatch;
* ``diff a.json b.json`` — compare two profile documents and name the
  handlers that moved (turns a bench exit-3 perf regression into a
  diagnosis);
* ``health`` — engine kernel-health snapshot scraped from a running
  serve daemon.

``run``/``kernel`` export the deterministic ``repro.prof/1`` JSON plus
speedscope, collapsed-stack, and Chrome-trace renderings.  Exit codes:
0 ok, 2 usage / unreachable daemon, 3 ``diff --fail-on-movers`` found
significant movers.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter_ns
from typing import Any, Dict, List, Optional

from repro.prof import (
    Profiler,
    diff_profiles,
    format_movers,
    profile_from_dict,
    to_chrome,
    to_collapsed,
    to_speedscope,
)

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_MOVERS = 3


def _top_table(doc: Dict[str, Any], top: int) -> str:
    """Top-N frames by self time, with share-of-total columns."""
    total = max(1, doc.get("total_self_ns") or 1)
    frames = sorted(doc.get("frames", {}).items(),
                    key=lambda kv: (-kv[1]["self_ns"], kv[0]))
    lines = [f"{'KEY':<44} {'CALLS':>10} {'SELF(ms)':>10} "
             f"{'CUM(ms)':>10} {'SELF%':>7}"]
    for key, frame in frames[:top]:
        lines.append(
            f"{key:<44} {frame['calls']:>10} "
            f"{frame['self_ns'] / 1e6:>10.2f} "
            f"{frame['cum_ns'] / 1e6:>10.2f} "
            f"{frame['self_ns'] / total:>7.1%}")
    if len(frames) > top:
        rest = sum(f["self_ns"] for _, f in frames[top:])
        lines.append(f"{'(other ' + str(len(frames) - top) + ' keys)':<44} "
                     f"{'':>10} {rest / 1e6:>10.2f} {'':>10} "
                     f"{rest / total:>7.1%}")
    return "\n".join(lines)


def _export(doc: Dict[str, Any], args: argparse.Namespace) -> None:
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"profile JSON -> {args.json}")
    if args.speedscope:
        with open(args.speedscope, "w") as fh:
            json.dump(to_speedscope(doc, name=doc["meta"].get(
                "workload", "repro-prof")), fh, indent=2)
        print(f"speedscope -> {args.speedscope}")
    if args.collapsed:
        with open(args.collapsed, "w") as fh:
            fh.write(to_collapsed(doc))
        print(f"collapsed stacks -> {args.collapsed}")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(to_chrome(doc), fh, indent=2)
        print(f"chrome trace -> {args.chrome}")


def _report(doc: Dict[str, Any], wall_ns: int, top: int) -> None:
    coverage = (doc["total_self_ns"] / wall_ns) if wall_ns else 0.0
    print(_top_table(doc, top))
    print(f"\nwall {wall_ns / 1e6:.2f}ms, attributed self time "
          f"{doc['total_self_ns'] / 1e6:.2f}ms "
          f"({coverage:.1%} coverage)")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.common import Scale
    from repro.experiments.exec import REGISTRY, run_experiment

    if args.experiment not in REGISTRY:
        print(f"error: unknown experiment {args.experiment!r}; known: "
              f"{', '.join(sorted(REGISTRY))}", file=sys.stderr)
        return EXIT_USAGE
    scale = Scale(args.scale)
    prof = Profiler()
    start = perf_counter_ns()
    with prof.frame(f"experiment.{args.experiment}"):
        run_experiment(args.experiment, scale, args.seed, prof=prof)
    wall_ns = perf_counter_ns() - start
    doc = prof.to_dict(wall_ns=wall_ns, meta={
        "workload": f"experiment.{args.experiment}",
        "scale": scale.value, "seed": args.seed})
    _report(doc, wall_ns, args.top)
    _export(doc, args)
    return EXIT_OK


def _cmd_kernel(args: argparse.Namespace) -> int:
    from repro.engine.event import Engine
    from repro.engine.kernelbench import CASES, SMOKE_EVENTS

    cases = sorted(CASES) if args.case == "all" else [args.case]
    unknown = [c for c in cases if c not in CASES]
    if unknown:
        print(f"error: unknown kernel case(s) {', '.join(unknown)}; "
              f"known: {', '.join(sorted(CASES))} (or 'all')",
              file=sys.stderr)
        return EXIT_USAGE
    nevents = args.events if args.events is not None else SMOKE_EVENTS
    prof = Profiler()
    start = perf_counter_ns()
    for case in cases:
        engine = Engine()
        prof.attach_engine(engine)
        with prof.frame(f"kernel.{case}"):
            CASES[case](engine, nevents, args.seed)
    wall_ns = perf_counter_ns() - start
    prof.uninstrument_all()
    doc = prof.to_dict(wall_ns=wall_ns, meta={
        "workload": f"kernel.{args.case}", "events": nevents,
        "seed": args.seed})
    _report(doc, wall_ns, args.top)
    _export(doc, args)
    return EXIT_OK


def _load_profile(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return profile_from_dict(json.load(fh))


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        base = _load_profile(args.baseline)
        cand = _load_profile(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    movers = diff_profiles(base, cand,
                           min_share_pts=args.min_share_pts,
                           min_ratio=args.min_ratio,
                           min_self_ms=args.min_self_ms)
    print(format_movers(movers), end="")
    if movers and args.fail_on_movers:
        return EXIT_MOVERS
    return EXIT_OK


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient
    try:
        with ServeClient(args.host, args.port,
                         tenant="repro-prof") as client:
            doc = client.metrics()
    # Unreachable daemon is a usage-level condition, not a crash: one
    # line on stderr and exit 2 (matches repro-top).
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: cannot reach daemon at {args.host}:{args.port} "
              f"({exc})", file=sys.stderr)
        return EXIT_USAGE
    kernel = (doc.get("pool") or {}).get("kernel") or {}
    if not kernel:
        print("no kernel health reported yet (no jobs completed)")
        return EXIT_OK
    print(f"engines            {kernel.get('engines', 0)}")
    print(f"events dispatched  {kernel.get('events', 0)}")
    print(f"pool hit rate      {kernel.get('pool_hit_rate', 0.0):.1%} "
          f"(hits {kernel.get('pool_hits', 0)}, "
          f"misses {kernel.get('pool_misses', 0)})")
    print(f"far migrations     {kernel.get('far_migrations', 0)}")
    print(f"compactions        {kernel.get('compactions', 0)} "
          f"({kernel.get('compacted_entries', 0)} entries)")
    print(f"singleton lane     {kernel.get('singleton_dispatches', 0)}")
    print(f"buckets occupied   {kernel.get('buckets', 0)} "
          f"(far events {kernel.get('far_events', 0)})")
    hist = kernel.get("batch_hist") or {}
    if hist:
        print("batch sizes        "
              + "  ".join(f"{label}:{hist[label]}"
                          for label in sorted(hist)))
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-prof",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_exports(p: argparse.ArgumentParser) -> None:
        p.add_argument("--top", type=int, default=20, metavar="N",
                       help="rows in the self-time table")
        p.add_argument("--json", metavar="PATH",
                       help="write the repro.prof/1 profile document")
        p.add_argument("--speedscope", metavar="PATH",
                       help="write a speedscope flamegraph file")
        p.add_argument("--collapsed", metavar="PATH",
                       help="write collapsed stacks (flamegraph.pl)")
        p.add_argument("--chrome", metavar="PATH",
                       help="write a Chrome trace-event file")

    p_run = sub.add_parser("run", help="profile a registry experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--scale", default="smoke",
                       choices=("smoke", "paper"))
    p_run.add_argument("--seed", type=int, default=42)
    add_exports(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_kernel = sub.add_parser(
        "kernel", help="profile a kernelbench workload")
    p_kernel.add_argument("case",
                          help="kernelbench case name, or 'all'")
    p_kernel.add_argument("--events", type=int, default=None)
    p_kernel.add_argument("--seed", type=int, default=0)
    add_exports(p_kernel)
    p_kernel.set_defaults(fn=_cmd_kernel)

    p_diff = sub.add_parser(
        "diff", help="attribute a regression to moved handlers")
    p_diff.add_argument("baseline")
    p_diff.add_argument("candidate")
    p_diff.add_argument("--min-share-pts", type=float, default=5.0,
                        help="share-of-total move floor (pct points)")
    p_diff.add_argument("--min-ratio", type=float, default=1.5,
                        help="self-time ratio floor")
    p_diff.add_argument("--min-self-ms", type=float, default=1.0,
                        help="absolute self-time move floor (ms)")
    p_diff.add_argument("--fail-on-movers", action="store_true",
                        help="exit 3 when any mover is reported")
    p_diff.set_defaults(fn=_cmd_diff)

    p_health = sub.add_parser(
        "health", help="kernel health from a running serve daemon")
    p_health.add_argument("--host", default="127.0.0.1")
    p_health.add_argument("--port", type=int, default=7421)
    p_health.set_defaults(fn=_cmd_health)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
