"""``repro-faults``: drive a target under a fault plan, audit persistence.

Usage::

    repro-faults --power-cut-at-request 2000 --target vans-lazy
    repro-faults --plan plan.json --json report.json
    repro-faults --power-cut-at-ps 200000000 --fail-on-lost   # CI gate
    repro-faults --example > plan.json                        # starter plan
    repro-faults --check plan.json                            # validate plan
    repro-faults --check-report report.json                   # validate report

Builds a registry target under an active fault session, drives a
deterministic write/fence/read loop against it, and prints the fault-run
report (schema ``repro.faultreport/1``).  When the plan carries a power
cut, the report includes the ADR persistence audit: every write the
program was *told* is durable (WPQ-accepted or fenced) that would not
survive the cut is listed as lost.

The workload is a closed loop over a small set of hot cache lines —
enough writes to exercise wear-leveling migrations, periodic fences so
the persistence domains differ between targets (``vans`` fences drain
to media; ``vans-lazy`` leaves dirty lines in the volatile cache).

Exit codes: ``0`` ok, ``2`` usage error (bad plan / unknown target),
``3`` the persistence audit found lost acknowledged writes and
``--fail-on-lost`` was given.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro import registry
from repro.common.errors import FaultPlanError, UnknownTargetError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    PersistenceChecker,
    fault_report,
    load_plan,
    power_cut_plan,
    random_plan,
    render_fault_report,
    session,
    validate_fault_report,
    validate_plan,
)

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_LOST = 3


def _drive(system, writes: int, hot_lines: int, stride: int,
           fence_every: int, read_every: int) -> int:
    """Deterministic closed-loop workload; returns the final sim time."""
    now = 0
    for i in range(writes):
        addr = (i % hot_lines) * stride
        now = system.write(addr, now)
        if fence_every and (i + 1) % fence_every == 0:
            now = system.fence(now)
        if read_every and (i + 1) % read_every == 0:
            now = system.read(addr, now)
    return now


def _resolve_plan(args) -> FaultPlan:
    """Plan from --plan / --power-cut-* / --random (validated)."""
    if args.plan:
        plan = load_plan(args.plan)
    elif args.power_cut_at_ps is not None \
            or args.power_cut_at_request is not None:
        plan = power_cut_plan(at_ps=args.power_cut_at_ps,
                              at_request=args.power_cut_at_request)
    elif args.random is not None:
        plan = random_plan(args.random, requests=args.writes)
    else:
        raise FaultPlanError(
            "no fault plan: give --plan, --power-cut-at-ps, "
            "--power-cut-at-request, or --random")
    if args.seed is not None:
        plan = dataclasses.replace(plan, seed=args.seed)
    return plan


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    src = parser.add_argument_group("fault plan")
    src.add_argument("--plan", metavar="PATH",
                     help="JSON fault plan (schema repro.faultplan/1)")
    src.add_argument("--power-cut-at-ps", type=int, metavar="PS",
                     help="single power cut at this simulated time")
    src.add_argument("--power-cut-at-request", type=int, metavar="N",
                     help="single power cut after the Nth request")
    src.add_argument("--random", type=int, metavar="SEED",
                     help="generate a reproducible random plan")
    src.add_argument("--seed", type=int, default=None,
                     help="override the plan's seed field")
    wl = parser.add_argument_group("workload")
    wl.add_argument("--target", default="vans",
                    help="registry target to drive (default: %(default)s)")
    wl.add_argument("--writes", type=int, default=4000,
                    help="nt-stores to issue (default: %(default)s)")
    wl.add_argument("--hot-lines", type=int, default=8,
                    help="distinct cache lines written "
                         "(default: %(default)s)")
    wl.add_argument("--stride", type=int, default=64, metavar="BYTES",
                    help="address stride between hot lines "
                         "(default: %(default)s)")
    wl.add_argument("--fence-every", type=int, default=64, metavar="N",
                    help="fence after every N writes; 0 = never "
                         "(default: %(default)s)")
    wl.add_argument("--read-every", type=int, default=16, metavar="N",
                    help="read back after every N writes; 0 = never "
                         "(default: %(default)s)")
    wl.add_argument("--migrate-threshold", type=int, default=None,
                    help="wear-leveler migration threshold override "
                         "(VANS-family targets only)")
    out = parser.add_argument_group("output")
    out.add_argument("--json", metavar="PATH", dest="json_path",
                     help="also write the fault report as JSON")
    out.add_argument("--fail-on-lost", action="store_true",
                     help="exit 3 when the persistence audit reports "
                          "lost acknowledged writes")
    aux = parser.add_argument_group("auxiliary modes")
    aux.add_argument("--example", action="store_true",
                     help="print a starter fault plan and exit")
    aux.add_argument("--check", metavar="PATH",
                     help="validate a fault-plan document and exit")
    aux.add_argument("--check-report", metavar="PATH",
                     help="validate a fault-report document and exit")
    aux.add_argument("--list-targets", action="store_true",
                     help="list drivable registry targets and exit")
    args = parser.parse_args(argv)

    if args.example:
        print(json.dumps(random_plan(0, requests=4000).to_dict(),
                         indent=2, sort_keys=True))
        return EXIT_OK

    if args.list_targets:
        for name in registry.target_names(systems_only=True):
            print(name)
        return EXIT_OK

    if args.check:
        try:
            with open(args.check, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.check}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        problems = validate_plan(doc)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: valid {doc.get('schema')} document "
                  f"({len(doc.get('faults', []))} fault(s))")
        return EXIT_USAGE if problems else EXIT_OK

    if args.check_report:
        try:
            with open(args.check_report, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.check_report}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        problems = validate_fault_report(doc)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check_report}: valid {doc.get('schema')} document")
        return EXIT_USAGE if problems else EXIT_OK

    try:
        plan = _resolve_plan(args)
    except FaultPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    overrides = {}
    if args.migrate_threshold is not None:
        overrides["migrate_threshold"] = args.migrate_threshold
    injector = FaultInjector(plan, checker=PersistenceChecker())
    try:
        with session(injector):
            system = registry.build(args.target, **overrides)
            horizon = _drive(system, args.writes, args.hot_lines,
                             args.stride, args.fence_every, args.read_every)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except TypeError as exc:
        print(f"error: target {args.target!r} rejected overrides: {exc}",
              file=sys.stderr)
        return EXIT_USAGE

    report = fault_report(injector)
    print(f"repro-faults: target={args.target} writes={args.writes} "
          f"horizon={horizon} ps")
    print(render_fault_report(report))

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_path}")

    lost = report.get("persistence", {}).get("lost", [])
    if args.fail_on_lost and lost:
        print(f"FAIL: {len(lost)} acknowledged write(s) lost at power cut",
              file=sys.stderr)
        return EXIT_LOST
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
