"""Shared ``--flight`` option wiring for the command-line tools.

Every CLI that drives a target supports the same three flags; this
module owns adding them to a parser, turning them into a
:class:`~repro.flight.FlightRecorder`, and rendering the post-run
report (per-op latency breakdowns + optional Chrome trace export).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.flight import FlightRecorder, breakdowns, save_chrome_trace


def add_flight_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight", action="store_true",
                        help="record per-request flight spans and print "
                             "per-op latency breakdowns")
    parser.add_argument("--flight-sample", type=int, default=0, metavar="N",
                        help="sample 1 in N requests (implies --flight)")
    parser.add_argument("--flight-out", metavar="PATH",
                        help="export sampled records as a Chrome/Perfetto "
                             "trace.json (implies --flight)")


def recorder_from_args(args: argparse.Namespace) -> Optional[FlightRecorder]:
    """A recorder matching the parsed flags, or ``None`` when off."""
    if not (args.flight or args.flight_sample or args.flight_out):
        return None
    if args.flight_sample > 1:
        return FlightRecorder(mode="every", every=args.flight_sample)
    return FlightRecorder(mode="all")


def report_flight(recorder: Optional[FlightRecorder],
                  args: argparse.Namespace) -> None:
    """Print breakdowns and export the trace after a recorded run."""
    if recorder is None:
        return
    summary = recorder.sampling_summary()
    print(f"\nflight: {summary['kept']}/{summary['seen']} requests recorded "
          f"(mode={summary['mode']})")
    for _op, breakdown in breakdowns(recorder.records).items():
        print(breakdown.render())
    if args.flight_out:
        events = save_chrome_trace(recorder.records, args.flight_out,
                                   extra_metadata={"sampling": summary})
        print(f"[exported {events} trace events to {args.flight_out}]")
