"""``repro-bench``: run a benchmark suite, record it, gate regressions.

Usage::

    repro-bench --suite smoke                       # run + write + diff
    repro-bench --suite smoke --out bench/          # choose output dir
    repro-bench --suite smoke --baseline BENCH_2026-08-05.json
    repro-bench --suite smoke --gate metrics        # CI: metrics only
    repro-bench --check BENCH_2026-08-05.json       # validate a document

Each run writes ``BENCH_<date>.json`` (schema ``repro.bench/2``): per
experiment wall seconds, simulated requests, requests/sec, and the
experiment's model-output metrics; plus run totals (peak RSS included)
and a full run manifest (git SHA, config hash, seeds, environment).
Kernel-suite entries additionally carry the engine's ``kernel_stats()``
health snapshot (never gated — context for diagnosing a perf exit 3).

The fresh run is diffed against the latest prior ``BENCH_*.json`` in the
output directory (or ``--baseline``).  Exit codes: ``0`` ok / no
baseline, ``2`` usage error, ``3`` the gate found regressions beyond
threshold, ``4`` one or more experiments crashed (the partial document
is still written, with ``"completed": false``, so a long suite never
loses its finished measurements to one bad experiment).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
from typing import List, Optional

from repro.experiments.common import Scale
from repro.telemetry.bench import (
    SUITES,
    diff_bench,
    find_baseline,
    gate,
    kernel_gate,
    run_suite,
    suite_ids,
    validate_bench,
)

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_REGRESSION = 3
EXIT_PARTIAL = 4


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _append_summary(path: Optional[str], lines: List[str]) -> None:
    """Append markdown to ``path`` (``$GITHUB_STEP_SUMMARY`` in CI)."""
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except OSError as exc:
        print(f"warning: cannot write summary {path}: {exc}",
              file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", default="smoke",
                        choices=sorted(SUITES),
                        help="suite to run (default: %(default)s)")
    parser.add_argument("--paper", action="store_true",
                        help="paper-scale sweeps (slow)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base RNG seed (default: runner default)")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_<date>.json "
                             "(default: current directory)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="diff against this document instead of the "
                             "latest BENCH_*.json in the output directory")
    parser.add_argument("--gate", default="all",
                        choices=["all", "metrics", "perf", "none"],
                        help="which delta family fails the run "
                             "(default: %(default)s; CI should use "
                             "'metrics' — perf is machine-dependent)")
    parser.add_argument("--metric-threshold", type=float, default=0.001,
                        metavar="REL",
                        help="relative metric drift tolerated "
                             "(default: %(default)s)")
    parser.add_argument("--perf-threshold", type=float, default=0.25,
                        metavar="REL",
                        help="relative slowdown tolerated "
                             "(default: %(default)s)")
    parser.add_argument("--date", metavar="YYYY-MM-DD",
                        help="override the output filename date stamp")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count for the kernel suite's shard.* "
                             "cases (default: each case's own setting)")
    parser.add_argument("--summary", metavar="PATH",
                        help="append a markdown run summary to PATH "
                             "(pass \"$GITHUB_STEP_SUMMARY\" in CI)")
    parser.add_argument("--check", metavar="PATH",
                        help="validate an existing bench document and exit")
    parser.add_argument("--list", action="store_true", dest="list_suites",
                        help="list suites and their experiments, then exit")
    args = parser.parse_args(argv)

    if args.list_suites:
        for name in sorted(SUITES):
            print(f"{name}: {', '.join(suite_ids(name))}")
        return EXIT_OK

    if args.check:
        try:
            doc = _load(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.check}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        problems = validate_bench(doc)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: valid {doc.get('schema')} document "
                  f"({len(doc.get('experiments', {}))} experiments)")
        return EXIT_USAGE if problems else EXIT_OK

    scale = Scale.PAPER if args.paper else Scale.SMOKE
    print(f"repro-bench: suite={args.suite} scale={scale.value} "
          f"({', '.join(suite_ids(args.suite))})")
    config = {"shards": args.shards} if args.shards is not None else None
    doc = run_suite(args.suite, scale, seed=args.seed, config=config)
    problems = validate_bench(doc)
    if problems:  # defensive: a schema bug should fail loudly, not gate
        for problem in problems:
            print(f"internal error: {problem}", file=sys.stderr)
        return EXIT_USAGE

    date = args.date or datetime.date.today().isoformat()
    out_name = f"BENCH_{date}.json"
    out_path = os.path.join(args.out, out_name)
    os.makedirs(args.out, exist_ok=True)

    baseline_path = args.baseline or find_baseline(args.out,
                                                   exclude=out_name)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    totals = doc["totals"]
    print(f"wrote {out_path}: {len(doc['experiments'])} experiments, "
          f"{totals['requests']} requests in {totals['wall_s']:.1f}s "
          f"({totals['requests_per_s']:.0f} req/s, "
          f"peak RSS {totals['peak_rss_kb']} KiB)")

    summary: List[str] = [
        f"### repro-bench: suite `{args.suite}` ({scale.value})",
        "",
        f"- {len(doc['experiments'])} experiments, "
        f"{totals['requests']} requests in {totals['wall_s']:.1f}s "
        f"({totals['requests_per_s']:.0f} req/s, peak RSS "
        f"{totals['peak_rss_kb']} KiB)",
    ]

    if not doc.get("completed", True):
        failed = sorted(exp_id for exp_id, entry
                        in doc["experiments"].items() if "error" in entry)
        print(f"\nPARTIAL RUN: {len(failed)} experiment(s) crashed: "
              f"{', '.join(failed)}", file=sys.stderr)
        for exp_id in failed:
            last = str(doc["experiments"][exp_id]["error"]) \
                .strip().splitlines()[-1]
            print(f"  {exp_id}: {last}", file=sys.stderr)
        print("partial document written; skipping regression gate",
              file=sys.stderr)
        summary.append(f"- **PARTIAL RUN**: {len(failed)} experiment(s) "
                       f"crashed: {', '.join(failed)}")
        _append_summary(args.summary, summary)
        return EXIT_PARTIAL

    if args.suite == "kernel":
        # Same-runner relative gate: both kernels were timed back to
        # back in this very run, so "optimized must not be slower than
        # the legacy heap" holds on any machine at any load.
        summary += ["", "| case | optimized ev/s | legacy ev/s | speedup |",
                    "|---|---:|---:|---:|"]
        for exp_id in sorted(doc["experiments"]):
            entry = doc["experiments"][exp_id]
            if "speedup" in entry:
                print(f"  {exp_id}: {entry['requests_per_s']:.0f} ev/s "
                      f"optimized vs {entry['legacy_events_per_s']:.0f} "
                      f"ev/s legacy ({entry['speedup']:.2f}x)")
                summary.append(
                    f"| {exp_id} | {entry['requests_per_s']:.0f} "
                    f"| {entry['legacy_events_per_s']:.0f} "
                    f"| {entry['speedup']:.2f}x |")
        if args.gate != "none":
            slower = kernel_gate(doc)
            if slower:
                print(f"\nREGRESSION: optimized kernel slower than the "
                      f"legacy heap in {len(slower)} case(s)",
                      file=sys.stderr)
                for line in slower:
                    print(f"  {line}", file=sys.stderr)
                summary.append(f"\n**REGRESSION**: optimized kernel slower "
                               f"than legacy in {len(slower)} case(s)")
                _append_summary(args.summary, summary)
                return EXIT_REGRESSION
            print("kernel gate: optimized >= legacy in every case")
            summary.append("\nkernel gate: optimized >= legacy in "
                           "every case ✓")

    if baseline_path is None:
        print("no prior baseline found; nothing to diff")
        summary.append("- no prior baseline found; nothing to diff")
        _append_summary(args.summary, summary)
        return EXIT_OK

    try:
        baseline = _load(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    stale = validate_bench(baseline)
    if stale:
        print(f"warning: baseline {baseline_path} is invalid "
              f"({'; '.join(stale)}); skipping diff", file=sys.stderr)
        _append_summary(args.summary, summary)
        return EXIT_OK

    deltas = diff_bench(baseline, doc)
    changed = deltas["metrics"] + deltas["perf"]
    print(f"\ndiff vs {baseline_path}: "
          f"{len(deltas['metrics'])} metric / "
          f"{len(deltas['perf'])} perf value(s) changed")
    summary.append(f"- diff vs `{os.path.basename(baseline_path)}`: "
                   f"{len(deltas['metrics'])} metric / "
                   f"{len(deltas['perf'])} perf value(s) changed")
    for delta in changed:
        print(f"  {delta.render()}")
        summary.append(f"  - `{delta.render()}`")

    violations = gate(deltas, args.gate,
                      metric_threshold=args.metric_threshold,
                      perf_threshold=args.perf_threshold)
    if violations:
        print(f"\nREGRESSION: {len(violations)} value(s) beyond threshold "
              f"(gate={args.gate})", file=sys.stderr)
        for delta in violations:
            print(f"  {delta.render()}", file=sys.stderr)
        summary.append(f"\n**REGRESSION**: {len(violations)} value(s) "
                       f"beyond threshold (gate={args.gate})")
        _append_summary(args.summary, summary)
        return EXIT_REGRESSION
    print(f"gate={args.gate}: ok")
    summary.append(f"- gate={args.gate}: ok ✓")
    _append_summary(args.summary, summary)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
