"""Command-line tools: LENS characterization and trace capture/replay."""
