"""LENS from the command line.

Examples::

    python -m repro.tools.lens_cli vans            # full characterization
    python -m repro.tools.lens_cli pmep --buffers  # buffer probe only
    python -m repro.tools.lens_cli vans-6dimm --buffers
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from contextlib import nullcontext

from repro import registry
from repro.common.errors import UnknownTargetError
from repro.common.units import pretty_size
from repro.flight import session as flight_session
from repro.lens.probers.buffer import BufferProber
from repro.lens.report import characterize
from repro.tools.flight_opts import (add_flight_args, recorder_from_args,
                                     report_flight)
from repro.tools.targets import make_target


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reverse engineer a memory system with LENS.")
    parser.add_argument("target",
                        help="memory system to characterize "
                             f"({', '.join(registry.target_names(systems_only=True))})")
    parser.add_argument("--buffers", action="store_true",
                        help="run only the (fast) buffer prober")
    parser.add_argument("--overwrite-iterations", type=int, default=40000,
                        help="overwrite test length for the policy prober")
    add_flight_args(parser)
    args = parser.parse_args(argv)

    try:
        factory = make_target(args.target)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorder = recorder_from_args(args)
    session = flight_session(recorder) if recorder is not None else nullcontext()
    if args.buffers:
        with session:
            report = BufferProber(factory).run()
        caps = [pretty_size(c) for c in report.read_capacities]
        wcaps = [pretty_size(c) for c in report.write_capacities]
        print(f"target: {args.target}")
        print(f"read buffers:    {caps or 'none detected'}")
        print(f"write queues:    {wcaps or 'none detected'}")
        if caps:
            ents = [pretty_size(e) for e in report.read_entry_sizes]
            print(f"read entries:    {ents}")
            print(f"hierarchy:       {report.hierarchy}")
        else:
            print("entry sizes / hierarchy: n/a (no buffer structure)")
        report_flight(recorder, args)
        return 0

    interleaved = None
    if args.target == "vans":
        interleaved = registry.factory("vans-6dimm")
    with session:
        chara = characterize(
            factory,
            interleaved_factory=interleaved,
            overwrite_iterations=args.overwrite_iterations,
        )
    print(chara.render())
    report_flight(recorder, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
