"""Named memory-system targets for the CLI tools.

This module is now a thin compatibility shim over the unified target
registry (:mod:`repro.registry`); the registry is the single place where
named systems are defined and parameterized.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro import registry
from repro.common.errors import UnknownTargetError
from repro.target import TargetSystem

__all__ = ["TARGETS", "make_target", "UnknownTargetError"]

#: drivable (LENS/replay-capable) targets, name -> zero-arg factory
TARGETS: Dict[str, Callable[[], TargetSystem]] = {
    name: registry.factory(name)
    for name in registry.target_names(systems_only=True)
}


def make_target(name: str) -> Callable[[], TargetSystem]:
    """Factory for a named system target.

    Raises :class:`UnknownTargetError` for unknown names; CLIs translate
    that to exit code 2.
    """
    if name not in TARGETS:
        raise UnknownTargetError(name, TARGETS)
    return TARGETS[name]
