"""Named memory-system targets for the CLI tools."""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import PMEPModel, QuartzModel
from repro.baselines.slow_dram import (
    dramsim2_ddr3,
    ramulator_ddr4,
    ramulator_pcm,
)
from repro.target import TargetSystem
from repro.vans import MemoryModeSystem, VansConfig, VansSystem


def _vans(ndimms: int = 1) -> Callable[[], TargetSystem]:
    cfg = VansConfig().with_dimms(ndimms)
    return lambda: VansSystem(cfg)


TARGETS: Dict[str, Callable[[], TargetSystem]] = {
    "vans": _vans(1),
    "vans-6dimm": _vans(6),
    "memory-mode": lambda: MemoryModeSystem(),
    "pmep": lambda: PMEPModel(),
    "quartz": lambda: QuartzModel(),
    "dramsim2-ddr3": dramsim2_ddr3,
    "ramulator-ddr4": ramulator_ddr4,
    "ramulator-pcm": ramulator_pcm,
}


def make_target(name: str) -> Callable[[], TargetSystem]:
    try:
        return TARGETS[name]
    except KeyError:
        known = ", ".join(sorted(TARGETS))
        raise SystemExit(f"unknown target {name!r}; choose from: {known}")
