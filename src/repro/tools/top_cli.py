"""``repro-top``: live terminal dashboard for a running serve daemon.

Polls the daemon's ``metrics`` verb (JSON form) on an interval and
redraws a compact, ``top``-style view — daemon header, worker table,
per-tenant fairness rows, the in-flight job table with live progress
(fed by the jobs' streaming frames), and a throughput sparkline built
from successive ``completed`` counter deltas.

Deliberately curses-free: the screen is repainted with ANSI
clear/home escapes when stdout is a TTY, and printed once per poll as
plain text otherwise — so ``repro-top --once`` doubles as a scriptable
snapshot (CI uploads one as a build artifact).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional

#: eight-level bar glyphs for the throughput sparkline
SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 24) -> str:
    """Render the most recent ``width`` values as a unicode sparkline."""
    tail = values[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK[0] * len(tail)
    return "".join(
        SPARK[min(len(SPARK) - 1,
                  int(v / top * (len(SPARK) - 1) + 0.5))]
        for v in tail)


def _fmt_rate(value: float) -> str:
    return f"{value:6.1f}/s"


def render(doc: Dict[str, Any], history: List[float],
           interval_s: float) -> str:
    """One full dashboard frame from a ``metrics`` (JSON) document."""
    lines: List[str] = []
    counters = doc.get("counters", {})
    sched = doc.get("scheduler", {})
    pool = doc.get("pool", {})
    jobs = doc.get("jobs", {})

    uptime = doc.get("uptime_s", 0.0)
    lines.append(
        f"repro-top  up {uptime:7.1f}s  sessions {doc.get('sessions', 0)}"
        f"  conns {counters.get('connections_total', 0)}"
        f"  frames {counters.get('progress_frames_total', 0)}"
        f"  proto-errs {counters.get('protocol_errors_total', 0)}")

    completed = pool.get("completed", 0)
    rate = history[-1] if history else 0.0
    lines.append(
        f"jobs       done {completed}  err {pool.get('errors', 0)}"
        f"  timeout {pool.get('timeouts', 0)}"
        f"  queued {sched.get('queued', 0)}"
        f"  active {sched.get('active', 0)}"
        f"  {_fmt_rate(rate)}  {sparkline(history)}")

    warm = pool.get("warm_cache", {})
    hits, misses = warm.get("hits", 0), warm.get("misses", 0)
    ratio = f"{hits / (hits + misses):5.1%}" if hits + misses else "  n/a"
    job_ms = pool.get("job_ms", {}) or {}
    lines.append(
        f"cache      hit {ratio}  (h {hits} / m {misses}, "
        f"parked {warm.get('size', 0)})"
        f"   job p50 {job_ms.get('p50', 0):6.0f}ms"
        f"  p99 {job_ms.get('p99', 0):6.0f}ms")

    lines.append("")
    lines.append("WORKER  PID      STATE  JOBS")
    for w in pool.get("worker_states", []):
        state = ("busy" if w.get("busy")
                 else "idle" if w.get("alive") else "DEAD")
        lines.append(f"  w{w.get('index', '?'):<4} {w.get('pid', 0):<8} "
                     f"{state:<6} {w.get('jobs_done', 0)}")

    tenants = sorted(set(sched.get("dispatched_by_tenant", {}))
                     | set(sched.get("queued_by_tenant", {}))
                     | set(sched.get("active_by_tenant", {})))
    if tenants:
        lines.append("")
        lines.append("TENANT            QUEUED  ACTIVE  DISPATCHED")
        for tenant in tenants:
            lines.append(
                f"  {tenant:<16}"
                f" {sched.get('queued_by_tenant', {}).get(tenant, 0):>6}"
                f"  {sched.get('active_by_tenant', {}).get(tenant, 0):>6}"
                f"  {sched.get('dispatched_by_tenant', {}).get(tenant, 0):>10}")

    if jobs:
        lines.append("")
        lines.append("JOB      TENANT        KIND        WHAT            "
                     "PHASE           DONE      SIM(ns)")
        for job_id in sorted(jobs):
            info = jobs[job_id]
            lines.append(
                f"  {job_id:<7} {str(info.get('tenant', '')):<12} "
                f"{str(info.get('kind', '')):<11} "
                f"{str(info.get('what', '')):<15} "
                f"{str(info.get('phase') or '-'):<15} "
                f"{info.get('done_requests', 0):>8} "
                f"{info.get('sim_time_ns', 0):>12}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-top",
                                     description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="S", help="poll interval (seconds)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (scriptable)")
    args = parser.parse_args(argv)

    from repro.serve.client import ServeClient

    history: List[float] = []
    last_completed: Optional[int] = None
    tty = sys.stdout.isatty() and not args.once
    try:
        with ServeClient(args.host, args.port, tenant="repro-top") \
                as client:
            while True:
                doc = client.metrics()
                completed = doc.get("pool", {}).get("completed", 0)
                if last_completed is not None:
                    history.append(
                        max(0, completed - last_completed)
                        / max(args.interval, 1e-6))
                last_completed = completed
                frame = render(doc, history, args.interval)
                if tty:
                    # clear screen + home, then the frame
                    sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                    sys.stdout.flush()
                else:
                    print(frame, flush=True)
                if args.once:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    # Unreachable daemon is a usage-level condition, not a crash: one
    # line on stderr and exit 2 (matches repro-prof health).
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach daemon at {args.host}:{args.port} "
              f"({exc})", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
