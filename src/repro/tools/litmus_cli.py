"""``repro-litmus``: crash-consistency litmus campaigns.

Usage::

    repro-litmus gen --seed 7 --target vans-lazy          # emit a case
    repro-litmus run case.json                            # run + judge
    repro-litmus run --seed 7 --target vans-lazy          # generate+run
    repro-litmus shrink case.json --loss wpq/lazy_dirty   # minimize
    repro-litmus corpus corpus/litmus.json --replay       # CI drift gate
    repro-litmus corpus corpus/litmus.json --add case.json
    repro-litmus campaign --seed 7 --cases 1000 --workers 4 \\
        --require-loss-on vans-lazy                       # fuzz campaign

``gen`` prints seeded ``repro.litmus/1`` case documents.  ``run``
executes one case through the real stream executor under its power-cut
plan and judges the persistence audit against the target's ADR
contract.  ``shrink`` delta-debugs a case to a minimal reproducer
(deterministic: same input, same output, every step re-verified).
``corpus`` validates, replays (exit 3 on any outcome drift or oracle
violation — the CI gate), or extends the known-outcome corpus.
``campaign`` runs thousands of seeded cases through the crash-tolerant
watchdogged scheduler (or through a live ``repro-serve`` daemon with
``--port`` — the thin-client fuzzing path).

Exit codes: ``0`` ok, ``1`` campaign produced nothing (or a required
loss family was not reproduced), ``2`` usage error, ``3`` oracle
violation / corpus drift / shrink gate exceeded, ``4`` partial
campaign (some batches quarantined).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.common.errors import FaultPlanError, ReproError
from repro.litmus.campaign import EXIT_VIOLATION, run_campaign
from repro.litmus.corpus import (case_entry, load_corpus, replay_corpus,
                                 save_corpus)
from repro.litmus.oracle import check, run_case
from repro.litmus.program import DEFAULT_TARGETS, LitmusCase, random_case
from repro.litmus.shrink import shrink_case

EXIT_OK = 0
EXIT_NOTHING = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 4


def _load_case(path: str) -> LitmusCase:
    doc = json.loads(Path(path).read_text())
    return LitmusCase.from_dict(doc)


def _case_from_args(args) -> LitmusCase:
    if args.case:
        return _load_case(args.case)
    if args.seed is None:
        raise FaultPlanError("give a case file or --seed")
    return random_case(args.seed, target=args.target)


def _make_client(args):
    if getattr(args, "port", None) is None:
        return None
    from repro.serve.client import ServeClient
    return ServeClient(args.host, args.port, tenant=args.tenant)


def _write_json(path: Optional[str], doc: Dict[str, Any]) -> None:
    if not path:
        return
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def _print_verdict(name: str, verdict) -> None:
    status = "ok" if verdict.ok else "VIOLATION"
    print(f"{name}: {status} (contract={verdict.contract})")
    outcome = verdict.outcome
    if outcome.get("cut"):
        print(f"  cut fired: {outcome['acked_lines']} acked, "
              f"{outcome['durable_lines']} durable, "
              f"{len(outcome['lost'])} lost")
        for addr, domain, reason in outcome["lost"]:
            print(f"    lost 0x{addr:x} via {domain} ({reason})")
    else:
        print("  cut did not fire")
    for violation in verdict.violations:
        print(f"  violation [{violation['kind']}]: {violation['detail']}")


def _cmd_gen(args) -> int:
    docs = []
    for index in range(args.count):
        case = random_case(args.seed + index, target=args.target)
        docs.append(case.to_dict())
    payload = docs[0] if args.count == 1 else docs
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json_path:
        Path(args.json_path).write_text(text + "\n")
        print(f"wrote {args.json_path} ({args.count} case(s))")
    else:
        print(text)
    return EXIT_OK


def _cmd_run(args) -> int:
    case = _case_from_args(args)
    client = _make_client(args)
    try:
        result = run_case(case, client=client)
    finally:
        if client is not None:
            client.close()
    verdict = check(case, result)
    _print_verdict(case.name, verdict)
    _write_json(args.json_path,
                {"case": case.to_dict(), "verdict": verdict.as_dict()})
    return EXIT_OK if verdict.ok else EXIT_VIOLATION


def _cmd_shrink(args) -> int:
    case = _case_from_args(args)
    signature = None
    if args.loss:
        domain, _, reason = args.loss.partition("/")
        if not reason:
            raise FaultPlanError(
                f"--loss wants DOMAIN/REASON (e.g. wpq/lazy_dirty), "
                f"got {args.loss!r}")
        signature = ("loss", (domain, reason))
    elif args.violation:
        signature = ("violation", args.violation)
    shrunk = shrink_case(case, max_evals=args.max_evals,
                         signature=signature)
    print(f"{case.name}: {len(case.ops)} ops -> {len(shrunk.case.ops)} "
          f"ops (cut@{shrunk.case.cut_at_request}, {shrunk.evals} "
          f"evals, {shrunk.steps} accepted steps)")
    print(f"  signature: {shrunk.signature[0]}:{shrunk.signature[1]}")
    for item in shrunk.case.ops:
        addr = item.get("addr")
        print(f"    {item['op']}" + ("" if addr is None
                                     else f" 0x{addr:x}"))
    _write_json(args.json_path, shrunk.as_dict())
    if args.max_ops is not None and len(shrunk.case.ops) > args.max_ops:
        print(f"FAIL: minimal reproducer has {len(shrunk.case.ops)} ops "
              f"(> --max-ops {args.max_ops})", file=sys.stderr)
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_corpus(args) -> int:
    path = Path(args.corpus)
    if args.add:
        cases: List[Dict[str, Any]] = []
        if path.exists():
            cases = list(load_corpus(path)["cases"])
        known = {entry["name"] for entry in cases}
        for case_path in args.add:
            case = _load_case(case_path)
            entry = case_entry(case)
            if case.name in known:
                cases = [entry if e["name"] == case.name else e
                         for e in cases]
                print(f"updated {case.name}")
            else:
                cases.append(entry)
                print(f"added {case.name} "
                      f"({len(entry['expected']['lost'])} expected "
                      f"loss(es))")
        save_corpus(path, cases)
        print(f"wrote {path} ({len(cases)} case(s))")
        return EXIT_OK
    try:
        doc = load_corpus(path)
    except (OSError, ValueError, FaultPlanError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not args.replay:
        print(f"{path}: valid {doc['schema']} corpus "
              f"({len(doc['cases'])} case(s))")
        return EXIT_OK
    client = _make_client(args)
    try:
        outcome = replay_corpus(doc, client=client)
    finally:
        if client is not None:
            client.close()
    print(f"{path}: replayed {outcome['checked']} case(s), "
          f"{len(outcome['drift'])} drifted, "
          f"{len(outcome['violations'])} violation(s)")
    for entry in outcome["drift"]:
        print(f"  DRIFT {entry['name']}:")
        print(f"    expected {json.dumps(entry['expected'], sort_keys=True)}")
        print(f"    observed {json.dumps(entry['observed'], sort_keys=True)}")
    for entry in outcome["violations"]:
        print(f"  VIOLATION {entry['name']} [{entry['kind']}]: "
              f"{entry['detail']}")
    if outcome["drift"] or outcome["violations"]:
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_campaign(args) -> int:
    targets = tuple(t.strip() for t in args.targets.split(",")
                    if t.strip()) or DEFAULT_TARGETS
    progress = None
    if args.progress:
        from repro.progress import ProgressReporter

        def _emit(frame: Dict[str, Any]) -> None:
            print(json.dumps(frame), file=sys.stderr)

        progress = ProgressReporter(emit=_emit)
    client = _make_client(args)
    try:
        report = run_campaign(args.seed, args.cases, targets=targets,
                              workers=args.workers,
                              timeout_s=args.timeout_s,
                              retries=args.retries, client=client,
                              progress=progress)
    finally:
        if client is not None:
            client.close()
    print(f"campaign seed={args.seed}: {report['completed']}/"
          f"{report['cases']} completed, {report['failed']} failed, "
          f"{report['violation_count']} violation(s)")
    for family, count in sorted(report["loss_families"].items()):
        print(f"  loss family {family}: {count}")
    for violation in report["violations"]:
        print(f"  VIOLATION {violation['name']} [{violation['kind']}]: "
              f"{violation['detail']}")
    _write_json(args.json_path, report)
    code = report["exit_code"]
    if code == EXIT_OK and args.require_loss_on:
        prefix = f"{args.require_loss_on}/"
        if not any(family.startswith(prefix)
                   for family in report["loss_families"]):
            print(f"FAIL: no loss reproduced on {args.require_loss_on} "
                  f"(families: {sorted(report['loss_families'])})",
                  file=sys.stderr)
            return EXIT_NOTHING
    return code


def _add_serve_args(sub) -> None:
    sub.add_argument("--port", type=int, default=None,
                     help="submit through a running repro-serve daemon "
                          "on this port (thin-client mode)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="daemon host (default: %(default)s)")
    sub.add_argument("--tenant", default="litmus",
                     help="serve tenant id (default: %(default)s)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-litmus",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    subs = parser.add_subparsers(dest="command", required=True)

    gen = subs.add_parser("gen", help="generate seeded litmus cases")
    gen.add_argument("--seed", type=int, required=True)
    gen.add_argument("--target", default="vans-lazy",
                     help="registry target (default: %(default)s)")
    gen.add_argument("--count", type=int, default=1,
                     help="cases to emit, seeds seed..seed+count-1 "
                          "(default: %(default)s)")
    gen.add_argument("--json", dest="json_path", metavar="PATH",
                     help="write case doc(s) here instead of stdout")

    run = subs.add_parser("run", help="run one case and judge it")
    run.add_argument("case", nargs="?", help="litmus case JSON file")
    run.add_argument("--seed", type=int, default=None,
                     help="generate the case instead of reading a file")
    run.add_argument("--target", default="vans-lazy")
    run.add_argument("--json", dest="json_path", metavar="PATH")
    _add_serve_args(run)

    shrink = subs.add_parser("shrink",
                             help="delta-debug a case to a minimal "
                                  "reproducer")
    shrink.add_argument("case", nargs="?", help="litmus case JSON file")
    shrink.add_argument("--seed", type=int, default=None)
    shrink.add_argument("--target", default="vans-lazy")
    shrink.add_argument("--loss", metavar="DOMAIN/REASON",
                        help="shrink toward this loss family "
                             "(e.g. wpq/lazy_dirty)")
    shrink.add_argument("--violation", metavar="KIND",
                        help="shrink toward this oracle violation kind")
    shrink.add_argument("--max-evals", type=int, default=2000)
    shrink.add_argument("--max-ops", type=int, default=None,
                        help="exit 3 if the minimal reproducer still "
                             "has more ops than this (CI gate)")
    shrink.add_argument("--json", dest="json_path", metavar="PATH")

    corpus = subs.add_parser("corpus",
                             help="validate / replay / extend the "
                                  "known-outcome corpus")
    corpus.add_argument("corpus", help="corpus JSON file")
    corpus.add_argument("--replay", action="store_true",
                        help="re-execute every case; exit 3 on drift")
    corpus.add_argument("--add", nargs="+", metavar="CASE",
                        help="run case file(s) and record their "
                             "outcomes into the corpus")
    _add_serve_args(corpus)

    campaign = subs.add_parser("campaign",
                               help="run a seeded fuzzing campaign")
    campaign.add_argument("--seed", type=int, required=True)
    campaign.add_argument("--cases", type=int, default=1000)
    campaign.add_argument("--targets", default=",".join(DEFAULT_TARGETS),
                          help="comma-separated registry targets "
                               "(default: %(default)s)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="watchdogged worker processes "
                               "(default: serial)")
    campaign.add_argument("--timeout-s", type=float, default=120.0,
                          help="per-batch watchdog deadline "
                               "(default: %(default)s)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="extra attempts per batch before "
                               "quarantine (default: %(default)s)")
    campaign.add_argument("--require-loss-on", metavar="TARGET",
                          help="exit 1 unless a loss was reproduced on "
                               "this target (the vans-lazy gate)")
    campaign.add_argument("--progress", action="store_true",
                          help="stream progress frames to stderr")
    campaign.add_argument("--json", dest="json_path", metavar="PATH")
    _add_serve_args(campaign)

    args = parser.parse_args(argv)
    handlers = {"gen": _cmd_gen, "run": _cmd_run, "shrink": _cmd_shrink,
                "corpus": _cmd_corpus, "campaign": _cmd_campaign}
    try:
        return handlers[args.command](args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
