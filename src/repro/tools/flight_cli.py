"""Flight-record a workload against any registry target.

The dedicated front end for the per-request flight recorder: drive a
synthetic pattern (or a captured trace file) at a target, then print the
per-stage latency breakdown and optionally export a Chrome/Perfetto
``trace.json`` for ``ui.perfetto.dev``.

Examples::

    # where does a pointer-chase read's time go at 16MB reach?
    python -m repro.tools.flight_cli vans --pattern chase \
        --region 16777216 --ops 2000

    # record a captured trace and open the result in Perfetto
    python -m repro.tools.flight_cli vans --trace run.trace --out trace.json

    # reservoir-sample a long run down to 1000 kept records
    python -m repro.tools.flight_cli vans-6dimm --ops 200000 --reservoir 1000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from contextlib import nullcontext

from repro import registry
from repro.common.errors import ReproError
from repro.flight import FlightRecorder, breakdowns, save_chrome_trace, session
from repro.telemetry import (TelemetrySampler, render_timeline,
                             save_chrome_counters, save_timelines_csv)
from repro.telemetry import session as telemetry_session
from repro.tools.targets import make_target
from repro.tools.telemetry_opts import (add_telemetry_args,
                                        telemetry_spec_from_args)
from repro.tools.trace_cli import generate_pattern
from repro.vans.tracing import load_trace, replay


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record per-request flight spans for a workload and "
                    "report where the latency goes.")
    parser.add_argument("target",
                        help="system to drive "
                             f"({', '.join(registry.target_names(systems_only=True))})")
    parser.add_argument("--trace", metavar="FILE",
                        help="replay a captured trace file instead of a "
                             "synthetic pattern")
    parser.add_argument("--pattern", default="chase",
                        choices=["chase", "seq-write", "overwrite"],
                        help="synthetic workload (default: chase)")
    parser.add_argument("--region", type=int, default=1 << 20,
                        help="working-set bytes for synthetic patterns")
    parser.add_argument("--ops", type=int, default=5000,
                        help="operation count for synthetic patterns")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample", type=int, default=0, metavar="N",
                        help="keep 1 in N requests (default: all)")
    parser.add_argument("--reservoir", type=int, default=0, metavar="K",
                        help="keep a uniform reservoir of K requests")
    parser.add_argument("--out", metavar="PATH",
                        help="write the Chrome/Perfetto trace.json here")
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    if args.sample and args.reservoir:
        print("error: --sample and --reservoir are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.reservoir:
        recorder = FlightRecorder(mode="reservoir", capacity=args.reservoir,
                                  seed=args.seed)
    elif args.sample > 1:
        recorder = FlightRecorder(mode="every", every=args.sample)
    else:
        recorder = FlightRecorder(mode="all")

    telemetry_spec = telemetry_spec_from_args(args)
    sampler = (TelemetrySampler(**telemetry_spec)
               if telemetry_spec is not None else None)
    tel_session = (telemetry_session(sampler) if sampler is not None
                   else nullcontext())
    try:
        with session(recorder), tel_session:
            target = make_target(args.target)()
            if args.trace:
                workload = load_trace(args.trace)
            else:
                workload = generate_pattern(args.pattern, args.region,
                                            args.ops, args.seed)
            result = replay(workload, target)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    summary = recorder.sampling_summary()
    print(f"target: {target.name}  simulated {result.end_ps / 1e9:.3f} ms")
    print(f"flight: {summary['kept']}/{summary['seen']} requests recorded "
          f"(mode={summary['mode']})")
    print()
    for _op, breakdown in breakdowns(recorder.records).items():
        print(breakdown.render())
        print()
    if args.out:
        events = save_chrome_trace(recorder.records, args.out,
                                   extra_metadata={"sampling": summary,
                                                   "target": target.name})
        print(f"[exported {events} trace events to {args.out}; open in "
              "ui.perfetto.dev]")
    if sampler is not None:
        print(render_timeline(sampler.timeline))
        timelines = {target.name: sampler.timeline}
        if args.telemetry_csv:
            rows = save_timelines_csv(timelines, args.telemetry_csv)
            print(f"[exported {rows} telemetry rows to {args.telemetry_csv}]")
        if args.telemetry_trace:
            counters = save_chrome_counters(timelines, args.telemetry_trace)
            print(f"[exported {counters} counter events to "
                  f"{args.telemetry_trace}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
