"""Memory request types shared by all memory models.

A :class:`Request` is one transaction at the memory-bus level: a cache
line (or multi-line) read/write plus the persistence-related operations
the paper's microbenchmarks use (non-temporal stores, ``clwb``
write-backs, fences).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Dict, List, Optional

CACHE_LINE = 64

_next_request_id = itertools.count()


class Op(Enum):
    """Request operation kinds.

    ``WRITE`` is a regular (cached) store arriving at memory as a
    write-back; ``WRITE_NT`` is a non-temporal store that bypasses the CPU
    caches (what LENS uses, via AVX-512 nt instructions); ``CLWB`` is a
    cache-line write-back; ``FENCE`` orders and drains the persistence
    path (``sfence``/``mfence`` at the memory system boundary).
    """

    READ = auto()
    WRITE = auto()
    WRITE_NT = auto()
    CLWB = auto()
    FENCE = auto()

    @property
    def is_write(self) -> bool:
        return self in (Op.WRITE, Op.WRITE_NT, Op.CLWB)

    @property
    def is_read(self) -> bool:
        return self is Op.READ


@dataclass(slots=True)
class Request:
    """One memory transaction.

    Slotted (no per-instance ``__dict__``): request-heavy replays
    allocate millions of these, and the slot layout roughly halves the
    per-request footprint while speeding up field access.  Hot loops
    that burn through short-lived requests can additionally recycle
    instances through a :class:`RequestPool`.

    Attributes:
        addr: physical byte address (64B aligned for line requests).
        size: access size in bytes (usually 64).
        op: operation kind.
        issue_ps: time the requester issued the transaction.
        accept_ps: time the memory system admitted it (>= issue_ps when
            backpressured, e.g. a full WPQ).
        complete_ps: time the transaction finished (data returned for
            reads; durably accepted for writes).
        mkpt_hint: Pre-translation `mkpt` mark (Section V-B of the paper):
            asks the DIMM to return a pre-translated TLB entry for the
            pointer stored at this address alongside the data.
        meta: free-form per-request annotations (experiment bookkeeping).
        flight: the :class:`repro.flight.FlightRecord` of this request's
            station crossings, attached by ``TargetSystem.submit`` when a
            flight recorder sampled it (``None`` otherwise).
    """

    addr: int
    size: int = CACHE_LINE
    op: Op = Op.READ
    issue_ps: int = 0
    accept_ps: int = 0
    complete_ps: int = 0
    mkpt_hint: bool = False
    req_id: int = field(default_factory=lambda: next(_next_request_id))
    meta: Optional[Dict[str, Any]] = None
    flight: Optional[Any] = None

    @property
    def latency_ps(self) -> int:
        """End-to-end latency (completion minus issue)."""
        return self.complete_ps - self.issue_ps

    @property
    def line_addr(self) -> int:
        """Address of the containing 64B cache line."""
        return self.addr - (self.addr % CACHE_LINE)

    def annotate(self, key: str, value: Any) -> None:
        """Attach experiment bookkeeping without always paying dict cost."""
        if self.meta is None:
            self.meta = {}
        self.meta[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(id={self.req_id}, {self.op.name} addr={self.addr:#x} "
            f"size={self.size} issue={self.issue_ps} complete={self.complete_ps})"
        )


class RequestPool:
    """Free-list of :class:`Request` objects for request-heavy loops.

    ``acquire`` hands out a fully re-initialized request (every field
    reset, a *fresh* ``req_id`` drawn from the global counter — recycled
    objects are indistinguishable from newly constructed ones);
    ``release`` returns it to the pool.  Only release requests the
    caller owns outright: a released request must not be referenced by
    flight records, result rows, or any other retained structure.
    """

    __slots__ = ("capacity", "_free")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._free: List[Request] = []

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, addr: int, size: int = CACHE_LINE, op: Op = Op.READ,
                issue_ps: int = 0, mkpt_hint: bool = False) -> Request:
        """A reset request (recycled when available, else newly built)."""
        free = self._free
        if free:
            req = free.pop()
            req.addr = addr
            req.size = size
            req.op = op
            req.issue_ps = issue_ps
            req.accept_ps = 0
            req.complete_ps = 0
            req.mkpt_hint = mkpt_hint
            req.req_id = next(_next_request_id)
            req.meta = None
            req.flight = None
            return req
        return Request(addr=addr, size=size, op=op, issue_ps=issue_ps,
                       mkpt_hint=mkpt_hint)

    def release(self, request: Request) -> None:
        """Return ``request`` to the free list (drop refs it carries)."""
        if len(self._free) < self.capacity:
            request.meta = None
            request.flight = None
            self._free.append(request)
