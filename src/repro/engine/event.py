"""Discrete-event simulation kernel.

Two kernels share one API and one :class:`Event` handle type:

* :class:`Engine` — the fast path.  Pending events live in a bucketed
  :class:`~repro.engine.calendar.CalendarQueue` (int-compared bucket
  heap, lazy per-bucket sorting, far-future heap fallback), fired
  ``Event`` objects are recycled through a free-list pool, cancelled
  events are compacted away once they outnumber the live queue, and the
  run loop is selected from precompiled dispatch slots: a tight
  locals-bound loop with batched same-timestamp dispatch when no
  instrumentation is attached, and an exact replica of the legacy
  per-event loop (telemetry/fault ticks after every callback) when a
  sampler or injector is hooked on.  The slot is re-selected only when
  ``telemetry``/``faults`` are (de)attached — never per event.
* :class:`LegacyEngine` — the seed kernel: one global binary heap of
  ``(time, seq, callback)`` entries.  Kept as the reference for the
  determinism cross-checks in ``tests/test_kernel_calendar.py`` and as
  the comparison side of ``repro-bench --suite kernel``.

Both kernels fire callbacks in exactly the same order: ascending time,
FIFO among equal timestamps (the monotonically increasing sequence
number breaks ties), which keeps every experiment reproducible and
makes the two kernels bit-identical in observable behaviour.

Pooled-handle contract: an :class:`Event` returned by ``schedule_at``
is a live handle until its callback fires or it is cancelled.  After
that the engine may recycle the object for a later ``schedule_at``;
calling :meth:`Event.cancel` on a fired handle is a safe no-op, but
holding a handle past its firing and cancelling it *after* the pool
reused it would cancel the new occupant — don't keep fired handles.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.engine.calendar import CalendarQueue

#: recycled-Event free-list bound (events beyond this are left to GC)
EVENT_POOL_CAP = 4096

#: legacy-heap compaction floor (mirrors CalendarQueue's threshold)
COMPACT_MIN_CANCELLED = 32

#: every live Engine, for process-wide kernel-health aggregation
#: (serve workers ship :func:`aggregate_kernel_stats` to the daemon)
_ENGINES: "weakref.WeakSet[Engine]" = weakref.WeakSet()


def _handler_key(fn: Callable[..., Any]) -> str:
    """Stable attribution key for an event callback.

    ``handler.`` plus the callback's qualname with closure noise
    stripped, e.g. ``AttachedMemory.send.<locals>._complete`` becomes
    ``handler.AttachedMemory.send._complete``.
    """
    target = getattr(fn, "__func__", fn)
    qual = getattr(target, "__qualname__", None)
    if qual is None:
        qual = type(fn).__name__
    return "handler." + qual.replace(".<locals>", "")


def _handler_code(fn: Callable[..., Any]) -> Any:
    """Cache key for :func:`_handler_key` (code object when available,
    so every instance of one closure shares a single dict entry)."""
    target = getattr(fn, "__func__", fn)
    return getattr(target, "__code__", None) or target


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "live", "_engine")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: True while scheduled and not yet fired/recycled
        self.live = True
        #: owning engine (None for free-standing events, e.g. in tests)
        self._engine: Optional[Any] = None

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); lazy deletion).

        The entry stays queued but is counted: once cancelled entries
        outnumber live ones the owning engine compacts them away, so
        timeout-heavy runs no longer grow without bound.  Cancelling an
        already-fired (or already-cancelled) handle is a no-op.
        """
        if self.cancelled or not self.live:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Event loop with an integer-picosecond clock (calendar-queue core)."""

    __slots__ = ("_now", "_seq", "_queue", "_processed", "_pool",
                 "_telemetry", "_faults", "_profiler", "_fast_dispatch",
                 "_handler_keys", "_pool_misses", "_sched_base",
                 "__weakref__")

    def __init__(self, bucket_shift: Optional[int] = None,
                 far_span: Optional[int] = None) -> None:
        self._now = 0
        self._seq = 0
        kwargs = {}
        if bucket_shift is not None:
            kwargs["shift"] = bucket_shift
        if far_span is not None:
            kwargs["span"] = far_span
        self._queue = CalendarQueue(**kwargs)
        self._processed = 0
        self._pool: List[Event] = []
        self._telemetry: Optional[Any] = None
        self._faults: Optional[Any] = None
        self._profiler: Optional[Any] = None
        #: precompiled dispatch slot: True selects the tight
        #: no-instrumentation loop; rebuilt only on (de)attachment.
        self._fast_dispatch = True
        #: callback code object -> attribution key (profiled dispatch)
        self._handler_keys: Dict[Any, str] = {}
        #: fresh Event allocations (pool misses); hits are derived as
        #: scheduled - misses, so the pool-reuse hot path pays nothing
        self._pool_misses = 0
        #: events scheduled before the last reset() (``_seq`` restarts)
        self._sched_base = 0
        _ENGINES.add(self)

    # ------------------------------------------------------------------
    # instrumentation seams (dispatch slot rebuild points)
    # ------------------------------------------------------------------

    @property
    def telemetry(self) -> Optional[Any]:
        """Optional telemetry sampler ticked as the clock advances."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, sampler: Optional[Any]) -> None:
        self._telemetry = sampler
        self._rebuild_dispatch()

    @property
    def faults(self) -> Optional[Any]:
        """Optional fault injector ticked the same way."""
        return self._faults

    @faults.setter
    def faults(self, injector: Optional[Any]) -> None:
        self._faults = injector
        self._rebuild_dispatch()

    @property
    def profiler(self) -> Optional[Any]:
        """Optional host wall-clock profiler (``repro.prof``) timing
        each dispatched callback under a per-handler key."""
        return self._profiler

    @profiler.setter
    def profiler(self, prof: Optional[Any]) -> None:
        self._profiler = prof
        self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        self._fast_dispatch = (self._telemetry is None
                               and self._faults is None
                               and self._profiler is None)

    # ------------------------------------------------------------------
    # clock / introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)

    def pooled(self) -> int:
        """Number of recycled Event objects waiting for reuse."""
        return len(self._pool)

    def compact(self) -> int:
        """Force a cancelled-entry compaction; returns entries removed."""
        return self._queue.compact()

    def _note_cancel(self) -> None:
        self._queue.note_cancel()

    def reset(self) -> None:
        """Rewind the clock to zero and drop all pending events.

        Part of the resettable target lifecycle: a reused engine must
        schedule and fire exactly like a freshly constructed one, so the
        sequence counter restarts too (event ordering ties break on it).
        The recycled-event pool is kept — pooled events carry no state.
        """
        self._sched_base += self._seq
        self._now = 0
        self._seq = 0
        self._processed = 0
        self._queue.clear()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        self._seq += 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.live = True
        else:
            event = Event(time, self._seq, fn, args)
            event._engine = self
            self._pool_misses += 1
        self._queue.push(event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` picoseconds."""
        return self.schedule_at(self._now + delay, fn, *args)

    def _recycle(self, event: Event) -> None:
        event.live = False
        event.fn = None
        event.args = None
        pool = self._pool
        if len(pool) < EVENT_POOL_CAP:
            pool.append(event)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.  Returns the final time.
        """
        if until is None and max_events is None and self._fast_dispatch:
            return self._run_fast()
        if self._profiler is not None:
            return self._run_profiled(until, max_events)
        return self._run_full(until, max_events)

    def _run_fast(self) -> int:
        """Tight dispatch slot: no instrumentation, no bounds.

        Binds the queue internals to locals and batches same-timestamp
        dispatch (the clock is stored once per distinct timestamp, and a
        sorted bucket is consumed in one sweep without re-entering the
        scheduler between callbacks).
        """
        queue = self._queue
        pool = self._pool
        pool_cap = EVENT_POOL_CAP
        open_next = queue._open_next
        shift = queue.shift
        processed = 0
        now = self._now
        while True:
            # singleton lane: when exactly one event is pending the
            # queue parks it outside the bucket machinery; dispatch it
            # directly (the dependent-chain regime lives here)
            event = queue._single
            if event is not None:
                queue._single = None
                queue._size = 0
                queue.singles += 1
                if event.cancelled:
                    queue.cancelled -= 1
                    event.live = False
                    event.fn = None
                    event.args = None
                    if len(pool) < pool_cap:
                        pool.append(event)
                    continue
                time = event.time
                if time != now:
                    now = time
                    self._now = time
                bucket = time >> shift
                if bucket > queue._head:
                    queue._head = bucket
                fn = event.fn
                args = event.args
                event.live = False
                fn(*args)
                processed += 1
                event.fn = None
                event.args = None
                if len(pool) < pool_cap:
                    pool.append(event)
                continue
            entries = queue._active
            if entries is None:
                if not open_next():
                    break
                entries = queue._active
            idx = queue._active_idx
            while idx < len(entries):
                event = entries[idx]
                idx += 1
                # keep the queue's cursor accurate: callbacks may insort
                # into this bucket, and the insertion point must stay at
                # or past the consumed prefix (which can hold recycled
                # Event objects).  The size drops per event — not per
                # bucket — so a callback scheduling from the final slot
                # sees an empty queue and can park a singleton.
                queue._active_idx = idx
                queue._size -= 1
                if event.cancelled:
                    queue.cancelled -= 1
                    event.live = False
                    event.fn = None
                    event.args = None
                    if len(pool) < pool_cap:
                        pool.append(event)
                    continue
                time = event.time
                if time != now:
                    now = time
                    self._now = time
                fn = event.fn
                args = event.args
                event.live = False
                fn(*args)
                processed += 1
                event.fn = None
                event.args = None
                if len(pool) < pool_cap:
                    pool.append(event)
            # bucket fully consumed (callbacks may have grown it; the
            # length re-check above covers that)
            queue._active = None
            queue._active_idx = 0
        self._processed += processed
        return self._now

    def _run_full(self, until: Optional[int], max_events: Optional[int]) -> int:
        """Instrumented / bounded dispatch slot.

        Exact replica of the legacy kernel's observable behaviour:
        telemetry and fault hooks tick after every fired callback, and
        the ``until``/``max_events`` stop conditions match the seed
        kernel decision for decision.
        """
        fired = 0
        tel = self._telemetry
        faults = self._faults
        queue = self._queue
        while True:
            peek = queue.peek_time()
            if peek is None:
                break
            if until is not None and peek > until:
                self._now = until
                if tel is not None and tel.enabled:
                    tel.tick(self._now)
                return self._now
            event = queue.pop()
            if event.cancelled:
                queue.cancelled -= 1
                self._recycle(event)
                continue
            self._now = event.time
            fn = event.fn
            args = event.args
            event.live = False
            fn(*args)
            self._processed += 1
            self._recycle(event)
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
            if tel is not None and tel.enabled:
                tel.tick(self._now)
        return self._now

    def _run_profiled(self, until: Optional[int],
                      max_events: Optional[int]) -> int:
        """Profiled dispatch slot: :meth:`_run_full` behaviour with each
        callback timed under a ``handler.<qualname>`` key.

        A separate slot so attaching a profiler never adds a branch to
        the uninstrumented loops; selected via the same precompiled
        dispatch rebuild as telemetry/faults.
        """
        prof = self._profiler
        push = prof.push
        pop = prof.pop
        keys = self._handler_keys
        fired = 0
        tel = self._telemetry
        faults = self._faults
        queue = self._queue
        while True:
            peek = queue.peek_time()
            if peek is None:
                break
            if until is not None and peek > until:
                self._now = until
                if tel is not None and tel.enabled:
                    tel.tick(self._now)
                return self._now
            event = queue.pop()
            if event.cancelled:
                queue.cancelled -= 1
                self._recycle(event)
                continue
            self._now = event.time
            fn = event.fn
            args = event.args
            event.live = False
            code = _handler_code(fn)
            key = keys.get(code)
            if key is None:
                key = keys[code] = _handler_key(fn)
            frame = push(key)
            try:
                fn(*args)
            finally:
                pop(frame)
            self._processed += 1
            self._recycle(event)
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
            if tel is not None and tel.enabled:
                tel.tick(self._now)
        return self._now

    # ------------------------------------------------------------------
    # kernel health introspection
    # ------------------------------------------------------------------

    def kernel_stats(self) -> Dict[str, Any]:
        """Snapshot of the kernel's internal health counters.

        Covers the calendar queue (bucket occupancy, far-heap
        migrations, lazy-deletion compactions, batched-dispatch batch
        sizes) and the event pool (hit rate).  Cheap enough to call
        per bench entry; computed on demand, never in the hot loops.
        """
        queue = self._queue
        scheduled = self._sched_base + self._seq
        misses = self._pool_misses
        hits = scheduled - misses
        return {
            "events": self._processed,
            "scheduled": scheduled,
            "pending": len(queue),
            "pooled": len(self._pool),
            "pool_hits": hits,
            "pool_misses": misses,
            "pool_hit_rate": (hits / scheduled) if scheduled else 0.0,
            "far_migrations": queue.far_migrations,
            "compactions": queue.compactions,
            "compacted_entries": queue.compacted_entries,
            "cancelled_pending": queue.cancelled,
            "singleton_dispatches": queue.singles,
            "batch_hist": queue.batch_histogram(),
            **queue.occupancy(),
        }

    def publish_kernel_gauges(self, bus: Any, prefix: str = "kernel") -> None:
        """Register the health counters as pull-gauges on an
        :class:`~repro.instrument.InstrumentBus`."""
        queue = self._queue
        bus.gauge(f"{prefix}.events", lambda: self._processed)
        bus.gauge(f"{prefix}.pending", lambda: len(queue))
        bus.gauge(f"{prefix}.pooled", lambda: len(self._pool))
        bus.gauge(f"{prefix}.pool_misses", lambda: self._pool_misses)
        bus.gauge(f"{prefix}.pool_hits",
                  lambda: self._sched_base + self._seq - self._pool_misses)

        def hit_rate() -> float:
            scheduled = self._sched_base + self._seq
            if not scheduled:
                return 0.0
            return (scheduled - self._pool_misses) / scheduled

        bus.gauge(f"{prefix}.pool_hit_rate", hit_rate)
        bus.gauge(f"{prefix}.far_migrations",
                  lambda: queue.far_migrations)
        bus.gauge(f"{prefix}.compactions", lambda: queue.compactions)
        bus.gauge(f"{prefix}.compacted_entries",
                  lambda: queue.compacted_entries)
        bus.gauge(f"{prefix}.singleton_dispatches",
                  lambda: queue.singles)
        bus.gauge(f"{prefix}.buckets",
                  lambda: queue.occupancy()["buckets"])
        bus.gauge(f"{prefix}.far_events", lambda: len(queue._far))

    def step(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        """Fire exactly one (non-cancelled) event; return (time, fn) or None."""
        queue = self._queue
        while True:
            event = queue.pop()
            if event is None:
                return None
            if event.cancelled:
                queue.cancelled -= 1
                self._recycle(event)
                continue
            self._now = event.time
            fn = event.fn
            args = event.args
            event.live = False
            fn(*args)
            self._processed += 1
            time = event.time
            self._recycle(event)
            tel = self._telemetry
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            faults = self._faults
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            return (time, fn)

    def advance(self, time: int) -> None:
        """Move the clock forward without firing events (idle time)."""
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        self._now = time


#: kernel_stats keys summed across engines by aggregate_kernel_stats
_AGG_SCALARS = ("events", "scheduled", "pending", "pooled", "pool_hits",
                "pool_misses", "far_migrations", "compactions",
                "compacted_entries", "cancelled_pending",
                "singleton_dispatches", "buckets", "binned_events",
                "active_remaining", "far_events")


def aggregate_kernel_stats() -> Dict[str, Any]:
    """Sum :meth:`Engine.kernel_stats` across every live engine in this
    process.  Serve workers ship this with each job result so the
    daemon's ``/metrics`` can expose ``repro_kernel_*`` series."""
    agg: Dict[str, Any] = {key: 0 for key in _AGG_SCALARS}
    agg["engines"] = 0
    hist: Dict[str, int] = {}
    for engine in list(_ENGINES):
        stats = engine.kernel_stats()
        agg["engines"] += 1
        for key in _AGG_SCALARS:
            agg[key] += stats.get(key, 0)
        for label, count in stats.get("batch_hist", {}).items():
            hist[label] = hist.get(label, 0) + count
    agg["batch_hist"] = hist
    scheduled = agg["scheduled"]
    agg["pool_hit_rate"] = (agg["pool_hits"] / scheduled) if scheduled else 0.0
    return agg


class LegacyEngine:
    """The seed kernel: one global binary heap of events.

    Retained as the reference implementation: the property tests assert
    the calendar queue reproduces its firing order exactly, and
    ``repro-bench --suite kernel`` measures the fast kernel against it.
    Carries the same cancelled-entry compaction fix as :class:`Engine`
    (the seed version leaked cancelled entries until their timestamp).
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._processed = 0
        self._cancelled = 0
        #: optional telemetry sampler ticked as the clock advances
        self.telemetry: Optional[Any] = None
        #: optional fault injector ticked the same way
        self.faults: Optional[Any] = None

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._heap)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the heap; returns entries removed."""
        before = len(self._heap)
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        return before - len(self._heap)

    def reset(self) -> None:
        """Rewind to the as-built state (see :meth:`Engine.reset`)."""
        self._now = 0
        self._seq = 0
        self._heap.clear()
        self._processed = 0
        self._cancelled = 0

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        event._engine = self
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` picoseconds."""
        return self.schedule_at(self._now + delay, fn, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.  Returns the final time.
        """
        fired = 0
        tel = self.telemetry
        faults = self.faults
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                if tel is not None and tel.enabled:
                    tel.tick(self._now)
                return self._now
            heapq.heappop(self._heap)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            self._now = event.time
            event.live = False
            event.fn(*event.args)
            self._processed += 1
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
            if tel is not None and tel.enabled:
                tel.tick(self._now)
        return self._now

    def step(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        """Fire exactly one (non-cancelled) event; return (time, fn) or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            self._now = event.time
            event.live = False
            event.fn(*event.args)
            self._processed += 1
            tel = self.telemetry
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            faults = self.faults
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            return (event.time, event.fn)
        return None

    def advance(self, time: int) -> None:
        """Move the clock forward without firing events (idle time)."""
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        self._now = time
