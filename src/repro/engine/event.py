"""Discrete-event simulation kernel.

The kernel keeps a heap of ``(time, sequence, callback)`` entries.  The
sequence number makes event ordering fully deterministic when several
events share a timestamp (FIFO among equal times), which keeps every
experiment reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); the heap entry stays)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Event loop with an integer-picosecond clock."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._processed = 0
        #: optional telemetry sampler ticked as the clock advances.  Kept
        #: as a plain attribute (no import of repro.telemetry here) so the
        #: kernel stays dependency-free; ``None`` costs one load + branch
        #: per fired event.
        self.telemetry: Optional[Any] = None
        #: optional fault injector ticked the same way (sim-time fault
        #: triggers fire as the clock passes them); same contract.
        self.faults: Optional[Any] = None

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._heap)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` picoseconds."""
        return self.schedule_at(self._now + delay, fn, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.  Returns the final time.
        """
        fired = 0
        tel = self.telemetry
        faults = self.faults
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                if tel is not None and tel.enabled:
                    tel.tick(self._now)
                return self._now
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            self._processed += 1
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
            if tel is not None and tel.enabled:
                tel.tick(self._now)
        return self._now

    def step(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        """Fire exactly one (non-cancelled) event; return (time, fn) or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            self._processed += 1
            tel = self.telemetry
            if tel is not None and tel.enabled:
                tel.tick(self._now)
            faults = self.faults
            if faults is not None and faults.enabled:
                faults.tick(self._now)
            return (event.time, event.fn)
        return None

    def advance(self, time: int) -> None:
        """Move the clock forward without firing events (idle time)."""
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        self._now = time
