"""Kernel microbenchmarks: optimized calendar kernel vs the seed heap.

``repro-bench --suite kernel`` runs these.  Each case drives the
optimized :class:`~repro.engine.event.Engine` and the seed
:class:`~repro.engine.event.LegacyEngine` through an *identical*
deterministic event workload, measuring events dispatched per wall
second on each and cross-checking determinism: every callback folds
``(now, label)`` into an order-sensitive checksum, and the two kernels
(and every timing repeat) must produce the same value — the checksum is
also a machine-independent metric the bench baseline gates on.

The workloads are shaped after the request streams the simulator's own
figures produce, not synthetic uniform noise:

* ``ddrt_burst`` — bursts of same/near-timestamp completions like an
  interleaved-DIMM fig1 bandwidth stream (exercises batched same-time
  dispatch and bucket locality);
* ``pointer_chase`` — one dependent event at a time, each scheduling
  its successor, like the fig3 latency chain (exercises near-empty
  queue overhead);
* ``cancel_heavy`` — timeout-style schedules with most handles
  cancelled before firing (exercises lazy deletion and compaction);
* ``far_horizon`` — a hot near-term stream plus sparse far-future
  events like telemetry ticks and wear migrations (exercises the
  far-future fallback heap and bucket migration).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Tuple

from repro.engine.event import Engine, LegacyEngine

MASK32 = 0xFFFFFFFF

#: events per case at smoke scale; paper scale multiplies this
SMOKE_EVENTS = 60_000
PAPER_MULTIPLIER = 5

#: timing repeats per (case, kernel); the best wall time is reported so
#: one scheduler hiccup cannot fail the same-runner relative gate
REPEATS = 3


class _Checksum:
    """Order-sensitive fold of the firing trace."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def fold(self, now: int, label: int) -> None:
        self.value = ((self.value * 1_000_003) ^ now ^ (label << 1)) & MASK32


def _drive_ddrt_burst(engine, nevents: int, seed: int) -> int:
    """Bursty clustered completions: groups of events sharing (or nearly
    sharing) a timestamp, scheduled from inside dispatch like chained
    station completions."""
    rng = random.Random(seed)
    check = _Checksum()
    fold = check.fold
    state = {"scheduled": 0}

    def completion(label: int) -> None:
        fold(engine.now, label)
        # each burst leader schedules the next burst (steady state)
        if label % 8 == 0 and state["scheduled"] < nevents:
            _burst()

    def _burst() -> None:
        base = rng.choice((100, 100, 250, 350))
        size = min(8, nevents - state["scheduled"])
        for i in range(size):
            label = state["scheduled"]
            state["scheduled"] += 1
            # 6 of 8 events in a burst share one timestamp; two straggle
            offset = 0 if i < 6 else rng.choice((25, 50))
            engine.schedule(base + offset, completion, label)

    for _ in range(4):          # a few independent streams in flight
        if state["scheduled"] < nevents:
            _burst()
    engine.run()
    return check.value


def _drive_pointer_chase(engine, nevents: int, seed: int) -> int:
    """Serial dependent chain: each completion schedules the next."""
    rng = random.Random(seed)
    check = _Checksum()
    fold = check.fold
    state = {"fired": 0}

    def completion() -> None:
        label = state["fired"]
        state["fired"] += 1
        fold(engine.now, label)
        if state["fired"] < nevents:
            engine.schedule(rng.choice((169_000, 305_000, 431_000)),
                            completion)

    engine.schedule(169_000, completion)
    engine.run()
    return check.value


def _drive_cancel_heavy(engine, nevents: int, seed: int) -> int:
    """Timeout pattern: every request schedules a guard event far out,
    then ~90% are cancelled when the request 'completes' early."""
    rng = random.Random(seed)
    check = _Checksum()
    fold = check.fold
    pending: List = []
    state = {"scheduled": 0}

    def fired(label: int) -> None:
        fold(engine.now, label)

    def completion(label: int) -> None:
        fold(engine.now, label)
        # retire old guards: cancel most, let a few fire
        while len(pending) > 8:
            handle = pending.pop(rng.randrange(len(pending)))
            if rng.random() < 0.9:
                handle.cancel()
        if state["scheduled"] < nevents:
            _issue()

    def _issue() -> None:
        label = state["scheduled"]
        state["scheduled"] += 1
        engine.schedule(rng.choice((200, 300, 450)), completion, label)
        pending.append(
            engine.schedule(1_000_000 + rng.randrange(64) * 4096,
                            fired, label))
        state["scheduled"] += 1

    for _ in range(4):
        if state["scheduled"] < nevents:
            _issue()
    engine.run()
    return check.value


def _drive_far_horizon(engine, nevents: int, seed: int) -> int:
    """Hot near-term stream plus sparse far-future ticks (telemetry /
    wear-migration shaped): exercises far-heap migration at bucket
    open."""
    rng = random.Random(seed)
    check = _Checksum()
    fold = check.fold
    state = {"scheduled": 0}

    def completion(label: int) -> None:
        fold(engine.now, label)
        if state["scheduled"] < nevents:
            _issue()

    def _issue() -> None:
        label = state["scheduled"]
        state["scheduled"] += 1
        engine.schedule(rng.choice((120, 120, 180, 240)), completion, label)
        if label % 64 == 0:     # sparse far-future tick
            tick = state["scheduled"]
            state["scheduled"] += 1
            engine.schedule(500_000_000 + rng.randrange(1024) * 65_536,
                            completion, tick)

    for _ in range(8):
        if state["scheduled"] < nevents:
            _issue()
    engine.run()
    return check.value


#: case name -> driver(engine, nevents, seed) -> checksum
CASES: Dict[str, Callable] = {
    "ddrt_burst": _drive_ddrt_burst,
    "pointer_chase": _drive_pointer_chase,
    "cancel_heavy": _drive_cancel_heavy,
    "far_horizon": _drive_far_horizon,
}

KERNELS: Tuple[Tuple[str, Callable], ...] = (
    ("legacy", LegacyEngine),
    ("optimized", Engine),
)


def _time_case(driver: Callable, kernel_factory: Callable, nevents: int,
               seed: int, repeats: int = REPEATS
               ) -> Tuple[float, int, int, Dict[str, object]]:
    """Best wall seconds, events processed, checksum, and the kernel's
    health-stat snapshot (empty for kernels without ``kernel_stats``)
    for one kernel.

    Every repeat must reproduce the same checksum and event count — a
    mismatch means the kernel is non-deterministic, which is a hard
    error, not a perf signal.
    """
    best_wall = float("inf")
    checksum = None
    processed = 0
    stats: Dict[str, object] = {}
    for _ in range(repeats):
        engine = kernel_factory()
        start = time.perf_counter()
        value = driver(engine, nevents, seed)
        wall = time.perf_counter() - start
        if checksum is None:
            checksum, processed = value, engine.processed_events
        elif value != checksum or engine.processed_events != processed:
            raise AssertionError(
                f"non-deterministic kernel run: checksum {value:#x} != "
                f"{checksum:#x} or events {engine.processed_events} != "
                f"{processed}")
        if wall < best_wall:
            best_wall = wall
        kernel_stats = getattr(engine, "kernel_stats", None)
        if kernel_stats is not None:
            # deterministic workload: every repeat snapshots identically
            stats = kernel_stats()
    return best_wall, processed, checksum, stats


def run_kernel_bench(nevents: int = SMOKE_EVENTS, seed: int = 0,
                     repeats: int = REPEATS) -> Dict[str, Dict[str, object]]:
    """Run every case on both kernels; returns per-case results.

    Each entry carries the optimized kernel's wall seconds / events /
    events-per-second (the continuously tracked numbers), the legacy
    kernel's for the same workload, the same-runner ``speedup``, and the
    deterministic firing-order ``order_checksum`` — cross-checked equal
    between the two kernels here (an inequality raises: the optimized
    kernel must be *invisible*, so a divergence is a correctness bug the
    bench refuses to time).
    """
    results: Dict[str, Dict[str, object]] = {}
    for case, driver in CASES.items():
        sides = {}
        for kernel_name, factory in KERNELS:
            wall, processed, checksum, stats = _time_case(
                driver, factory, nevents, seed, repeats)
            sides[kernel_name] = {
                "wall_s": wall,
                "events": processed,
                "events_per_s": processed / wall if wall > 0 else 0.0,
                "checksum": checksum,
                "kernel_stats": stats,
            }
        legacy, optimized = sides["legacy"], sides["optimized"]
        if legacy["checksum"] != optimized["checksum"] or \
                legacy["events"] != optimized["events"]:
            raise AssertionError(
                f"kernel divergence on {case!r}: legacy fired "
                f"{legacy['events']} events (checksum "
                f"{legacy['checksum']:#x}), optimized fired "
                f"{optimized['events']} (checksum "
                f"{optimized['checksum']:#x})")
        results[case] = {
            "events": optimized["events"],
            "order_checksum": optimized["checksum"],
            "optimized_wall_s": optimized["wall_s"],
            "optimized_events_per_s": optimized["events_per_s"],
            "legacy_wall_s": legacy["wall_s"],
            "legacy_events_per_s": legacy["events_per_s"],
            "speedup": (optimized["events_per_s"] / legacy["events_per_s"]
                        if legacy["events_per_s"] > 0 else 0.0),
            "kernel_stats": optimized["kernel_stats"],
        }
    return results
