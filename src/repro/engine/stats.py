"""Statistics collection: counters, histograms, and time series.

Every simulated component registers its statistics in a
:class:`StatsRegistry` so experiments can snapshot and diff them (the
paper's validation compares internal counters such as the RMW buffer's
read amplification against hardware counters).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram keeping mean/min/max plus sample quantiles.

    Stores raw samples up to ``max_samples`` then reservoir-free decimates
    (keeps every other sample) — adequate for latency distributions where
    we report means and coarse percentiles.
    """

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._samples: List[int] = []
        self._stride = 1
        self._phase = 0

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def dropped(self) -> int:
        """Samples decimated away (recorded but no longer retained)."""
        return self.count - len(self._samples)

    def percentile(self, pct: float) -> float:
        """Sample percentile in [0, 100]; 0 samples -> 0.0.

        The extremes are answered from the exact tracked ``min``/``max``
        rather than the retained samples: after decimation the true
        extrema may have been dropped from ``_samples``, and reporting a
        p100 below an observed value would be a lie.
        """
        if not self._samples:
            return 0.0
        if pct >= 100.0 and self.max is not None:
            return float(self.max)
        if pct <= 0.0 and self.min is not None:
            return float(self.min)
        ordered = sorted(self._samples)
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return float(ordered[low])
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mean = sum(self._samples) / len(self._samples)
        var = sum((s - mean) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def as_stats(self) -> Dict[str, float]:
        """Self-describing snapshot of the distribution.

        Every consumer (instrument-bus snapshots, the stats registry, the
        telemetry sampler) expands histograms through this one method, so
        a histogram always contributes the same uniform key set —
        ``count/sum/min/max/mean/p50/p99`` — no matter which station owns
        it.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._samples.clear()
        self._stride = 1
        self._phase = 0


class LatencySeries:
    """Ordered (x, value) series — one point per sweep step or iteration."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def add(self, x: float, value: float) -> None:
        self.points.append((x, value))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def values(self) -> List[float]:
        return [p[1] for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


class StatsRegistry:
    """Namespaced collection of counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self._histograms[name] = hist
        return hist

    def snapshot(self) -> Dict[str, float]:
        """Counter values by name; histograms expand through
        :meth:`Histogram.as_stats` (``.count/.sum/.min/.max/.mean/.p50/.p99``)."""
        snap: Dict[str, float] = {name: c.value for name, c in self._counters.items()}
        for name, hist in self._histograms.items():
            for key, value in hist.as_stats().items():
                snap[f"{name}.{key}"] = value
        return snap

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counter deltas relative to a previous :meth:`snapshot`."""
        current = self.snapshot()
        return {k: current.get(k, 0) - before.get(k, 0) for k in current}

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def histograms(self) -> Dict[str, Histogram]:
        """Histograms by name (a copy; safe to iterate while recording)."""
        return dict(self._histograms)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for hist in self._histograms.values():
            hist.reset()
