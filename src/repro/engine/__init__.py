"""Simulation kernel.

Two complementary timing facilities live here:

* :class:`~repro.engine.event.Engine` — the discrete-event kernel
  (integer-picosecond clock) used by the CPU full-system model and any
  component that needs callbacks at future times.  Its fast path is a
  bucketed :class:`~repro.engine.calendar.CalendarQueue` with pooled
  :class:`~repro.engine.event.Event` objects and precompiled dispatch
  slots; :class:`~repro.engine.event.LegacyEngine` keeps the seed
  binary-heap kernel for determinism cross-checks and benchmarking.
* :mod:`repro.engine.queueing` — FCFS queueing algebra
  (:class:`FcfsStation`, :class:`Server`, :class:`BankedServer`).  The
  paper reports that Optane DIMMs schedule first-come-first-serve
  internally; under FCFS, each stage's completion time is
  ``max(arrival, stage_free) + service``, so the whole DIMM pipeline can
  be computed forward exactly without per-cycle ticking.  This is what
  makes a cycle-resolution model fast enough in pure Python.
"""

from repro.engine.calendar import CalendarQueue
from repro.engine.event import Engine, Event, LegacyEngine
from repro.engine.queueing import FcfsStation, Server, BankedServer
from repro.engine.request import Op, Request, RequestPool
from repro.engine.stats import Counter, Histogram, LatencySeries, StatsRegistry

__all__ = [
    "CalendarQueue",
    "Engine",
    "Event",
    "LegacyEngine",
    "RequestPool",
    "FcfsStation",
    "Server",
    "BankedServer",
    "Op",
    "Request",
    "Counter",
    "Histogram",
    "LatencySeries",
    "StatsRegistry",
]
