"""Calendar-queue event scheduler: the kernel's fast-path data structure.

The seed kernel kept every pending event in one global binary heap of
``Event`` objects, which has two costs that dominate long runs:

* every push/pop pays ``O(log n)`` *Python-level* ``Event.__lt__`` calls
  (rich comparison is a method call per heap compare);
* events cancelled via :meth:`Event.cancel` stay in the heap until their
  timestamp is reached, so timeout-heavy runs grow without bound.

This module replaces the global heap with a bucketed calendar queue
tuned for the clustered timestamps DDR-T/media timing produces:

* events are binned by quantized timestamp (``time >> shift``); the
  priority order across bins is kept in a heap of *plain ints* (bucket
  ids), whose comparisons run entirely in C;
* events inside one bucket are appended unsorted (``O(1)``) and sorted
  lazily — once, with :func:`operator.attrgetter` keys — when the bucket
  becomes the active (minimum) bucket.  Because simulations schedule
  mostly monotonically, that sort usually runs on an almost-sorted list;
* same-timestamp events land in the same bucket adjacent to each other,
  which is what lets the engine batch their dispatch;
* far-future events (wear migrations, telemetry ticks: bucket id at
  least ``span`` buckets past the queue head) go to a fallback heap of
  ``(time, seq, event)`` tuples — int-compared, never ``Event.__lt__`` —
  and migrate into buckets as the head approaches, so a handful of
  distant events cannot bloat the bucket table;
* cancelled events are deleted lazily: a counter tracks them, and when
  they outnumber the live half of the queue the structure is compacted
  in place (the active bucket is left alone — its cancelled entries are
  already being skipped by the consumer).

Ordering contract: :meth:`pop` yields events in exactly the global
``(time, seq)`` order the seed heap produced — FIFO among equal
timestamps included — which the property tests in
``tests/test_kernel_calendar.py`` cross-check against the legacy heap.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import Any, Dict, List, Optional, Tuple

#: sort key for a bucket's events: exact global order
_ORDER = attrgetter("time", "seq")
#: insertion key used while a sorted bucket is being consumed.  The new
#: event's seq is larger than every pending one's, so bisecting on time
#: alone (rightmost) lands it in exact (time, seq) position.
_TIME = attrgetter("time")

#: default bucket width exponent: 2**12 ps ~ 4ns buckets, a good match
#: for DDR-T hop / media port spacings (tens of ns between distinct
#: completion times, many exactly-equal timestamps within one).
DEFAULT_SHIFT = 12

#: buckets further than this past the head go to the far-future heap
DEFAULT_SPAN = 1 << 14

#: don't bother compacting queues with fewer cancelled entries
COMPACT_MIN_CANCELLED = 32


class CalendarQueue:
    """Bucketed (time, seq)-ordered queue of :class:`Event` objects."""

    __slots__ = ("shift", "span", "_bins", "_heap", "_far",
                 "_active", "_active_idx", "_active_bucket", "_head",
                 "_single", "_size", "cancelled",
                 "far_migrations", "compactions", "compacted_entries",
                 "singles", "batch_hist")

    def __init__(self, shift: int = DEFAULT_SHIFT,
                 span: int = DEFAULT_SPAN) -> None:
        self.shift = shift
        self.span = span
        #: bucket id -> unsorted event list (lazily sorted on open)
        self._bins: Dict[int, List[Any]] = {}
        #: heap of distinct bucket ids present in ``_bins``
        self._heap: List[int] = []
        #: far-future fallback heap of ``(time, seq, event)``
        self._far: List[Tuple[int, int, Any]] = []
        #: the sorted bucket currently being consumed (index cursor)
        self._active: Optional[List[Any]] = None
        self._active_idx = 0
        self._active_bucket = -1
        #: bucket id of the most recently opened bucket (monotonic)
        self._head = 0
        #: singleton slot: when exactly one event is pending anywhere it
        #: parks here, skipping the bin/heap machinery entirely — the
        #: dependent-chain regime (each completion schedules the next)
        #: would otherwise pay bucket churn for a queue of length one
        self._single: Optional[Any] = None
        #: pending entries, cancelled ones included (lazy deletion)
        self._size = 0
        #: cancelled-but-still-queued entries
        self.cancelled = 0
        # ---- health counters (read via Engine.kernel_stats()) ----
        #: far-heap events migrated into buckets as the head approached
        self.far_migrations = 0
        #: lazy-deletion compaction passes run
        self.compactions = 0
        #: cancelled entries removed by those passes
        self.compacted_entries = 0
        #: events dispatched through the singleton lane
        self.singles = 0
        #: opened-bucket size histogram; index i counts buckets whose
        #: entry count n had ``n.bit_length() == i`` (power-of-two bins)
        self.batch_hist: List[int] = [0, 0]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def push(self, event: Any) -> None:
        """Insert ``event`` (keyed by its ``time``/``seq`` attributes)."""
        single = self._single
        if single is not None:
            # A second pending event arrived: demote the parked
            # singleton into the bins and insert both normally.
            self._single = None
            self._insert_binned(single)
            self._insert_binned(event)
            self._size += 1
            return
        if not self._size:
            active = self._active
            if active is None or self._active_idx >= len(active):
                # Queue empty (any active bucket fully consumed): park
                # the sole pending event, no bin/heap churn.
                self._single = event
                self._size = 1
                return
        self._size += 1
        self._insert_binned(event)

    def _insert_binned(self, event: Any) -> None:
        """Insert into the bucket structures (no size bookkeeping)."""
        bucket = event.time >> self.shift
        if self._active is not None:
            if bucket == self._active_bucket:
                # Scheduled into the bucket being dispatched right now:
                # bisect only the *pending* slice (lo=cursor).  The
                # consumed prefix may hold recycled Event objects whose
                # fields have been reused, so it must never be examined;
                # the new event cannot be in the past, and its seq
                # outranks every pending equal-time entry, so rightmost
                # insertion on time alone gives exact (time, seq) order.
                insort(self._active, event, key=_TIME, lo=self._active_idx)
                return
            if bucket < self._active_bucket:
                # The active bucket was opened by a peek (e.g. an
                # ``until``-bounded run) before the clock reached it, and
                # this event lands in an earlier bucket.  Demote the
                # active remainder back into the bins so the next open
                # re-picks the true minimum.  (Unreachable from dispatch
                # callbacks: there ``time >= now`` pins the bucket at or
                # past the active one.)
                self._demote_active()
        if bucket - self._head >= self.span:
            heappush(self._far, (event.time, event.seq, event))
            return
        entries = self._bins.get(bucket)
        if entries is None:
            self._bins[bucket] = [event]
            heappush(self._heap, bucket)
        else:
            entries.append(event)

    def _demote_active(self) -> None:
        """Return the unconsumed tail of the active bucket to the bins."""
        entries = self._active[self._active_idx:]
        bucket = self._active_bucket
        self._active = None
        self._active_idx = 0
        if not entries:
            return
        existing = self._bins.get(bucket)
        if existing is None:
            self._bins[bucket] = entries
            heappush(self._heap, bucket)
        else:  # defensive: push() insorts into the active bucket instead
            existing.extend(entries)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def _open_next(self) -> bool:
        """Promote the next non-empty bucket to active; False when drained."""
        single = self._single
        if single is not None:
            # The parked singleton is by construction the only pending
            # event; promote it as a one-entry active bucket.
            self._single = None
            bucket = single.time >> self.shift
            self._active = [single]
            self._active_idx = 0
            self._active_bucket = bucket
            if bucket > self._head:
                self._head = bucket
            self.singles += 1
            self.batch_hist[1] += 1
            return True
        heap = self._heap
        far = self._far
        shift = self.shift
        # Migrate far-future events whose bucket has come within reach of
        # (or past) the earliest bucketed event.  When the bucket table
        # is empty the far head seeds it, then the loop keeps migrating
        # everything sharing that (new) minimum bucket.
        while far:
            far_bucket = far[0][0] >> shift
            if heap and far_bucket > heap[0]:
                break
            event = heappop(far)[2]
            self.far_migrations += 1
            entries = self._bins.get(far_bucket)
            if entries is None:
                self._bins[far_bucket] = [event]
                heappush(heap, far_bucket)
            else:
                entries.append(event)
        if not heap:
            return False
        bucket = heappop(heap)
        entries = self._bins.pop(bucket)
        if len(entries) > 1:
            entries.sort(key=_ORDER)
        n = len(entries)
        if n:
            hist = self.batch_hist
            i = n.bit_length()
            if i >= len(hist):
                hist.extend(0 for _ in range(i + 1 - len(hist)))
            hist[i] += 1
        self._active = entries
        self._active_idx = 0
        self._active_bucket = bucket
        self._head = bucket
        return True

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next entry (cancelled ones included)."""
        single = self._single
        if single is not None:
            return single.time
        while True:
            entries = self._active
            if entries is not None:
                if self._active_idx < len(entries):
                    return entries[self._active_idx].time
                self._active = None
            if not self._open_next():
                return None

    def pop(self) -> Optional[Any]:
        """Remove and return the next entry in (time, seq) order.

        Cancelled entries are returned too (the engine skips and
        recycles them); ``None`` means the queue is empty.
        """
        single = self._single
        if single is not None:
            self._single = None
            self._size = 0
            bucket = single.time >> self.shift
            if bucket > self._head:
                self._head = bucket
            self.singles += 1
            return single
        while True:
            entries = self._active
            if entries is not None:
                idx = self._active_idx
                if idx < len(entries):
                    self._active_idx = idx + 1
                    self._size -= 1
                    return entries[idx]
                self._active = None
            if not self._open_next():
                return None

    # ------------------------------------------------------------------
    # lazy deletion
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every queued entry and rewind to the as-built state."""
        self._bins.clear()
        self._heap.clear()
        self._far.clear()
        self._active = None
        self._active_idx = 0
        self._active_bucket = -1
        self._head = 0
        self._single = None
        self._size = 0
        self.cancelled = 0
        self.far_migrations = 0
        self.compactions = 0
        self.compacted_entries = 0
        self.singles = 0
        self.batch_hist = [0, 0]

    # ------------------------------------------------------------------
    # health introspection
    # ------------------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Live bucket-table occupancy (cheap; computed on demand)."""
        active = 0
        if self._active is not None:
            active = len(self._active) - self._active_idx
        return {
            "buckets": len(self._bins) + (1 if self._active is not None
                                          else 0),
            "binned_events": sum(len(v) for v in self._bins.values()),
            "active_remaining": active,
            "far_events": len(self._far),
            "head_bucket": self._head,
        }

    def batch_histogram(self) -> Dict[str, int]:
        """Opened-bucket sizes as labelled power-of-two ranges."""
        out: Dict[str, int] = {}
        for i, n in enumerate(self.batch_hist):
            if not n or i == 0:
                continue
            if i == 1:
                out["1"] = n
            else:
                out[f"{1 << (i - 1)}-{(1 << i) - 1}"] = n
        return out

    def note_cancel(self) -> None:
        """Record one cancellation; compact when the dead fraction wins."""
        self.cancelled += 1
        if (self.cancelled > COMPACT_MIN_CANCELLED
                and self.cancelled * 2 > self._size):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the bins and the far heap.

        The active bucket is intentionally left alone: its list may be
        mid-iteration in the dispatch loop, and its cancelled entries are
        skipped (and recycled) there anyway.  All containers are mutated
        in place so dispatch-loop local bindings stay valid.  Returns the
        number of entries removed.
        """
        removed = 0
        self.compactions += 1
        single = self._single
        if single is not None and single.cancelled:
            self._single = None
            removed += 1
        for entries in self._bins.values():
            kept = [e for e in entries if not e.cancelled]
            if len(kept) != len(entries):
                removed += len(entries) - len(kept)
                entries[:] = kept
        far = self._far
        if far:
            kept_far = [item for item in far if not item[2].cancelled]
            if len(kept_far) != len(far):
                removed += len(far) - len(kept_far)
                far[:] = kept_far
                heapify(far)
        self._size -= removed
        self.compacted_entries += removed
        self.cancelled -= removed
        if self.cancelled < 0:  # defensive: stale-handle cancels
            self.cancelled = 0
        return removed
