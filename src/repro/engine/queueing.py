"""FCFS queueing algebra.

These primitives model contention analytically.  They are exact for
first-come-first-serve service disciplines (the policy the paper measured
inside Optane DIMMs and the default in VANS): given monotonically
non-decreasing arrival times, the departure process they compute is
identical to what a per-cycle simulation of the same station produces.

* :class:`Server` — a single resource serving one request at a time.
* :class:`BankedServer` — N independent servers selected by bank index
  (used for DRAM banks and 3D-XPoint media partitions).
* :class:`FcfsStation` — a bounded buffer of K entries drained in order;
  admission blocks when the buffer is full (the WPQ/LSQ behaviour that
  produces the paper's 512B and 4KB write inflection points).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.common.errors import ConfigError


class Server:
    """Single-resource FCFS server tracked by a busy-until timestamp."""

    __slots__ = ("busy_until", "total_busy", "served")

    def __init__(self) -> None:
        self.busy_until = 0
        self.total_busy = 0
        self.served = 0

    def serve(self, arrival: int, service: int) -> int:
        """Serve a request arriving at ``arrival`` needing ``service`` ps.

        Returns the completion time.
        """
        start = arrival if arrival > self.busy_until else self.busy_until
        completion = start + service
        self.busy_until = completion
        self.total_busy += service
        self.served += 1
        return completion

    def serve_batch(self, arrivals, services) -> List[int]:
        """Serve a whole batch in order; returns the completion times.

        This is the authoritative scalar loop the vectorized scan in
        :mod:`repro.shard.vector` must match bit-for-bit — it exists so
        the cross-check has a named reference to diff against.
        """
        serve = self.serve
        return [serve(arrival, service)
                for arrival, service in zip(arrivals, services)]

    def next_free(self, arrival: int) -> int:
        """Earliest time service could start for an arrival at ``arrival``."""
        return arrival if arrival > self.busy_until else self.busy_until

    def reset(self) -> None:
        self.busy_until = 0
        self.total_busy = 0
        self.served = 0

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` spent busy (0 if no time passed)."""
        return self.total_busy / elapsed if elapsed > 0 else 0.0

    def publish(self, bus, prefix: str) -> None:
        """Register pull-gauges for this server on an instrument bus.

        Gauges are evaluated only at snapshot time, so publishing adds
        zero cost to the serve path.
        """
        bus.gauge(f"{prefix}.served", lambda: self.served)
        bus.gauge(f"{prefix}.busy_ps", lambda: self.total_busy)


class BankedServer:
    """A set of independent FCFS servers indexed by bank number."""

    __slots__ = ("banks", "nbanks")

    def __init__(self, nbanks: int) -> None:
        if nbanks <= 0:
            raise ConfigError(f"nbanks must be positive, got {nbanks}")
        self.banks: List[Server] = [Server() for _ in range(nbanks)]
        self.nbanks = nbanks

    def __len__(self) -> int:
        return self.nbanks

    def serve(self, bank: int, arrival: int, service: int) -> int:
        """Serve on bank ``bank``; returns the completion time."""
        return self.banks[bank % self.nbanks].serve(arrival, service)

    def serve_batch(self, banks, arrivals, services) -> List[int]:
        """Serve a mixed-bank batch in order (scalar reference for the
        vectorized per-bank scan in :mod:`repro.shard.vector`)."""
        bank_list = self.banks
        nbanks = self.nbanks
        return [bank_list[bank % nbanks].serve(arrival, service)
                for bank, arrival, service in zip(banks, arrivals, services)]

    def next_free(self, bank: int, arrival: int) -> int:
        return self.banks[bank % self.nbanks].next_free(arrival)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()

    @property
    def served(self) -> int:
        return sum(bank.served for bank in self.banks)

    @property
    def total_busy(self) -> int:
        return sum(bank.total_busy for bank in self.banks)

    def publish(self, bus, prefix: str) -> None:
        """Register aggregate pull-gauges across all banks."""
        bus.gauge(f"{prefix}.served", lambda: self.served)
        bus.gauge(f"{prefix}.busy_ps", lambda: self.total_busy)


class FcfsStation:
    """Bounded K-entry buffer drained first-come-first-serve.

    Entries are admitted when a slot is free and retire at caller-supplied
    completion times.  ``admit`` returns the time the entry actually enters
    the buffer — later than the arrival time whenever the buffer is full,
    which is exactly the backpressure that stalls CPU stores once a write
    region overflows the WPQ or LSQ.
    """

    __slots__ = ("capacity", "_completions", "admitted", "total_wait", "peak_occupancy")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"station capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._completions: Deque[int] = deque()
        self.admitted = 0
        self.total_wait = 0
        self.peak_occupancy = 0

    def occupancy(self, now: int) -> int:
        """Number of entries still resident at time ``now``."""
        self._expire(now)
        return len(self._completions)

    def _expire(self, now: int) -> None:
        completions = self._completions
        while completions and completions[0] <= now:
            completions.popleft()

    def admit(self, arrival: int) -> int:
        """Admit an entry arriving at ``arrival``; returns admission time.

        The caller must later call :meth:`retire_at` with the entry's
        completion (drain) time.
        """
        self._expire(arrival)
        if len(self._completions) < self.capacity:
            admit_time = arrival
        else:
            # Block until the oldest resident entry drains (FCFS retire order).
            admit_time = self._completions.popleft()
        self.admitted += 1
        self.total_wait += admit_time - arrival
        return admit_time

    def retire_at(self, completion: int) -> None:
        """Record the drain-completion time of the most recently admitted entry.

        Completion times must be non-decreasing across entries (guaranteed
        by FCFS drains); a violation indicates a modeling bug.
        """
        if self._completions and completion < self._completions[-1]:
            # Clamp rather than reorder: FCFS drains retire in order.
            completion = self._completions[-1]
        self._completions.append(completion)
        if len(self._completions) > self.peak_occupancy:
            self.peak_occupancy = len(self._completions)

    def drain_time(self, now: int) -> int:
        """Time at which the buffer becomes empty (``now`` if already empty)."""
        self._expire(now)
        return self._completions[-1] if self._completions else now

    def reset(self) -> None:
        self._completions.clear()
        self.admitted = 0
        self.total_wait = 0
        self.peak_occupancy = 0

    def publish(self, bus, prefix: str) -> None:
        """Register pull-gauges: admissions, blocked time, peak occupancy."""
        bus.gauge(f"{prefix}.admitted", lambda: self.admitted)
        bus.gauge(f"{prefix}.blocked_ps", lambda: self.total_wait)
        bus.gauge(f"{prefix}.peak_occupancy", lambda: self.peak_occupancy)
