"""Simulation-as-a-service: the ``repro-serve`` session engine.

Batch reproduction (``repro-experiments``) pays the full interpreter +
target-construction cost per invocation.  This package keeps a daemon
resident instead: clients open *sessions* over a line-oriented
JSON protocol (:mod:`repro.serve.protocol`), submit named experiments
or raw request streams, and stream back results, telemetry, and run
manifests stamped with the session identity.

Layering (everything reuses the batch execution core in
:mod:`repro.experiments.exec`, so served results are bit-identical to
batch runs):

* :mod:`repro.serve.pool` — persistent, watchdogged worker processes;
  each keeps the target registry's warm cache enabled, so repeated
  sessions reuse built systems via the ``build → acquire → run →
  reset → release`` lifecycle instead of rebuilding.
* :mod:`repro.serve.scheduler` — packs session jobs onto the bounded
  pool with fair round-robin per-tenant queueing, per-tenant quotas,
  and backpressure (bounded queues, 429-style rejection).
* :mod:`repro.serve.server` — the asyncio daemon.
* :mod:`repro.serve.client` — a blocking client (also the example
  under ``examples/serve_client.py``).
"""

from repro.serve.client import ServeClient
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import SessionScheduler, TenantQuota
from repro.serve.server import ServeDaemon, running_daemon

__all__ = [
    "ServeClient",
    "ServeDaemon",
    "SessionScheduler",
    "TenantQuota",
    "WorkerPool",
    "running_daemon",
]
