"""Line protocol for ``repro-serve``: one JSON object per line.

Both directions speak newline-delimited JSON (ASCII, one message per
line) over a plain TCP stream, so a session is debuggable with
``nc``/``telnet`` and any language with a JSON parser is a client.

Client -> server message types:

``hello``
    ``{"type": "hello", "tenant": "team-a"}`` — opens the session.
    Reply: ``welcome`` carrying the assigned session id, the protocol
    version, and the daemon's scheduling limits.
``run``
    ``{"type": "run", "id": 1, "experiment": "fig1", "scale": "smoke",
    "seed": 42, "flight": {...}?, "telemetry": {...}?, "faults":
    {...}?}`` — submit a named experiment (``flight`` is a
    :class:`~repro.flight.recorder.FlightRecorder` kwargs spec, e.g.
    ``{"mode": "every", "every": 8}``).  Reply: ``accepted`` immediately, then a pushed
    ``result`` (or ``error``) carrying the serialized
    :class:`~repro.experiments.common.ExperimentResult` list and a run
    manifest stamped with the session identity; a tenant over quota
    gets ``rejected`` with ``code`` 429 instead.
``stream``
    ``{"type": "stream", "id": 2, "target": "vans", "overrides": {...},
    "ops": [{"op": "read", "addr": 0, "count": 64, "stride": 64},
    ...], "faults": {...}?}`` — drive a registry target with a raw
    request stream (see :func:`repro.experiments.exec.run_stream`).
    The optional ``faults`` field is a ``repro.faultplan/1`` plan
    document; the stream result then carries the fault report with
    its persistence audit (the litmus thin-client path).  The
    optional ``issue`` ("chained" default, or "open") and ``shards``
    fields route the stream through the shard plane
    (:func:`repro.shard.executor.run_shard_stream`); the result is
    then a ``repro.shard/1`` document (same core keys, plus the
    shard plan, merged snapshot, and completion checksum).
``ping`` / ``stats`` / ``experiments`` / ``targets``
    Introspection; answered inline by the daemon.
``bye``
    Graceful close; reply ``goodbye``.

Error replies carry ``code``: 2 for usage errors (unknown
experiment/target/override — message includes closest-match
suggestions), 429 for quota/backpressure rejection, 1 for internal
failures (remote traceback attached).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.common.errors import ReproError

#: protocol version string, echoed in every ``welcome``
PROTOCOL = "repro.serve/1"

#: bound on one encoded message line (a smoke-scale result document is
#: tens of KiB; this is sanity, not a budget)
MAX_LINE_BYTES = 32 * 1024 * 1024


class MessageFormatError(ReproError):
    """A malformed or oversized protocol message."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message -> one ASCII JSON line (newline-terminated)."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"),
                      default=str, ensure_ascii=True)
    return line.encode("ascii") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """One received line -> message dict; raises :class:`MessageFormatError`
    for anything that is not a JSON object."""
    if len(line) > MAX_LINE_BYTES:
        raise MessageFormatError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as exc:
        raise MessageFormatError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise MessageFormatError(
            f"expected a JSON object, got {type(message).__name__}")
    return message


def error_message(code: int, error: str,
                  request_id: Any = None) -> Dict[str, Any]:
    """Standard error reply shape."""
    message: Dict[str, Any] = {"type": "error", "code": code,
                               "error": error}
    if request_id is not None:
        message["id"] = request_id
    return message
