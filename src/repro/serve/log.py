"""Structured logging for the serve daemon.

One event per line, machine-parseable when asked (``--log-json``),
human-scannable otherwise.  Every event carries whatever correlation
fields the call site knows — ``session``, ``tenant``, ``job``,
``request_id``, ``worker_pid`` — threaded from accept through schedule,
dispatch, progress, and result, so one ``grep job=j-0042`` (or a jq
filter on the JSON form) reconstructs a job's whole life.

This is deliberately not :mod:`logging`: the daemon needs exactly one
sink, level filtering, and two render modes; a 60-line logger with no
global registry keeps tests hermetic (each daemon owns its logger) and
avoids stdlib handler/config interference with embedding applications.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

#: level name -> numeric rank (stdlib-compatible ordering)
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40, "off": 100}


class ServeLog:
    """Leveled JSON-lines / plain-text event logger.

    Args:
        level: minimum level emitted (``"off"`` silences everything —
            the default for in-process harness daemons, so tests stay
            quiet unless they opt in).
        json_lines: render events as one JSON object per line instead
            of ``key=value`` text.
        stream: destination (defaults to stderr, the operational
            convention — stdout stays free for CLI results).
    """

    def __init__(self, level: str = "off", json_lines: bool = False,
                 stream: Optional[TextIO] = None) -> None:
        self.level = LEVELS.get(str(level).lower(), LEVELS["info"])
        self.json_lines = bool(json_lines)
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def enabled_for(self, level: str) -> bool:
        return LEVELS.get(level, 20) >= self.level

    # -- emission --------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one event; unknown/dropping levels are a cheap no-op.

        Fields with value ``None`` are dropped so call sites can pass
        optional correlation ids unconditionally.
        """
        if LEVELS.get(level, 20) < self.level:
            return
        doc: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "level": level,
            "event": event,
        }
        doc.update((k, v) for k, v in fields.items() if v is not None)
        if self.json_lines:
            line = json.dumps(doc, sort_keys=False, default=str,
                              separators=(",", ":"))
        else:
            extras = " ".join(f"{k}={doc[k]}" for k in doc
                              if k not in ("ts", "level", "event"))
            line = f"[{doc['ts']:.3f}] {level.upper():7s} {event}" + \
                   (f" {extras}" if extras else "")
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass                     # closed stream: logging never raises

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


#: default silent logger (harness daemons that never configured one)
NULL_LOG = ServeLog(level="off")
