"""Persistent watchdogged worker pool for the serve daemon.

Unlike the batch runner's process-per-experiment scheduler
(:func:`repro.experiments.runner._run_parallel`), serving wants workers
that *stay up*: each worker process enables the target registry's warm
cache at startup, so consecutive jobs against the same target reuse a
built system (``build → acquire → run → reset → release``) instead of
paying construction again.

Each worker is one OS process plus one parent-side watcher thread:

* jobs travel over a private duplex pipe; results come back as
  ``("ok", payload)`` / ``("reject", {code, error})`` (a
  :class:`~repro.common.errors.ReproError` — usage-level, message
  preserved) / ``("error", traceback)`` (crash) / ``("timeout", msg)``;
* the watcher enforces ``job_timeout_s`` — a wedged worker is
  terminated and respawned, and the job settles as a timeout;
* a worker that dies mid-job (OOM-kill, segfault, ``os._exit``) is
  detected, respawned, and the job settles as an error — the pool's
  capacity never degrades.

The pool itself does no queueing policy: :class:`SessionScheduler`
owns fairness/quotas and only submits while :meth:`WorkerPool.free_slots`
is positive.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError

#: outcome tuples handed to completion callbacks
Outcome = Tuple[str, Any]

#: how often watchers re-check liveness/deadlines while polling
_POLL_S = 0.05


def _execute_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job inside the worker process; returns a JSON-safe doc.

    Imports live here (not module top level) so the parent can fork
    workers before the heavyweight experiment modules are loaded.
    """
    from repro.experiments import exec as exec_core
    from repro.experiments.export import result_to_dict

    kind = job.get("kind")
    if kind == "experiment":
        from repro.experiments.common import Scale
        results = exec_core.run_experiment(
            job["experiment"], Scale(job.get("scale", "smoke")),
            int(job.get("seed", exec_core.DEFAULT_SEED)),
            flight=exec_core.make_flight_recorder(job.get("flight")),
            telemetry=job.get("telemetry"), faults=job.get("faults"),
            session=job.get("session"))
        return {"results": [result_to_dict(r) for r in results]}
    if kind == "stream":
        stream = exec_core.run_stream(
            job["target"], job.get("ops", ()),
            overrides=job.get("overrides"), session=job.get("session"))
        return {"stream": stream}
    if kind == "ping":
        return {"pong": True}
    if kind == "_test_sleep":          # watchdog diagnostics (tests)
        time.sleep(float(job.get("seconds", 60.0)))
        return {"slept": True}
    if kind == "_test_die":            # crash-respawn diagnostics (tests)
        import os
        os._exit(17)
    raise ReproError(f"unknown job kind {kind!r}")


def _worker_main(conn, warm_cache_limit: int) -> None:
    """Worker-process entry: serve jobs until the pipe closes.

    The warm cache lives *here*, in the worker — a parent-side cache
    would be useless because systems never cross the process boundary.
    """
    from repro import registry
    if warm_cache_limit > 0:
        registry.enable_warm_cache(warm_cache_limit)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:                # shutdown sentinel
            conn.close()
            return
        try:
            payload = _execute_job(job)
            payload["warm_cache"] = registry.warm_cache_stats()
            message: Outcome = ("ok", payload)
        except ReproError as exc:
            message = ("reject", {"code": getattr(exc, "code", 2) or 2,
                                  "error": str(exc)})
        except BaseException:
            message = ("error", traceback.format_exc())
        try:
            conn.send(message)
        except (OSError, BrokenPipeError):
            return


class _Worker:
    """One pooled process and the parent-side thread that watches it."""

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.jobs: "queue.Queue" = queue.Queue()
        self.proc = None
        self.conn = None
        self._spawn()
        self.thread = threading.Thread(
            target=self._loop, name=f"serve-worker-{index}", daemon=True)
        self.thread.start()

    def _spawn(self) -> None:
        ctx = self.pool.ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.pool.warm_cache_limit), daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.pool.stats["spawned"] += 1

    def _respawn(self) -> None:
        try:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=5)
            self.conn.close()
        except (OSError, ValueError):
            pass
        self._spawn()
        self.pool.stats["respawned"] += 1
        # the fresh process starts with a cold warm cache by design

    def _loop(self) -> None:
        while True:
            item = self.jobs.get()
            if item is None:
                self._stop_process()
                return
            job, callback, timeout_s = item
            outcome = self._execute(job, timeout_s)
            self.pool._settled(self, outcome[0])
            callback(outcome)

    def _execute(self, job, timeout_s: Optional[float]) -> Outcome:
        try:
            self.conn.send(job)
        except (OSError, BrokenPipeError):
            self._respawn()
            try:
                self.conn.send(job)
            except (OSError, BrokenPipeError):
                return ("error", "worker pipe unusable after respawn")
        deadline = (time.time() + timeout_s) if timeout_s else None
        while True:
            try:
                if self.conn.poll(_POLL_S):
                    return self.conn.recv()
            except (EOFError, OSError):
                exitcode = self.proc.exitcode
                self._respawn()
                return ("error",
                        f"worker died mid-job (exit code {exitcode})")
            if not self.proc.is_alive():
                exitcode = self.proc.exitcode
                self._respawn()
                return ("error",
                        f"worker died mid-job (exit code {exitcode})")
            if deadline is not None and time.time() >= deadline:
                self._respawn()
                return ("timeout",
                        f"job exceeded {timeout_s}s watchdog; "
                        f"worker terminated and respawned")

    def _stop_process(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Fixed-size pool of persistent warm-cache worker processes."""

    def __init__(self, workers: int = 2, warm_cache: int = 8,
                 job_timeout_s: Optional[float] = None) -> None:
        from repro.experiments.exec import _mp_context
        self.ctx = _mp_context()
        self.warm_cache_limit = warm_cache
        self.job_timeout_s = job_timeout_s
        self.stats: Dict[str, int] = {
            "spawned": 0, "respawned": 0, "completed": 0,
            "errors": 0, "timeouts": 0, "rejects": 0,
        }
        self._lock = threading.Lock()
        self._workers: List[_Worker] = [
            _Worker(self, i) for i in range(max(1, workers))]
        self._idle: List[_Worker] = list(self._workers)
        self._closed = False

    # -- scheduler interface --------------------------------------------

    def free_slots(self) -> int:
        with self._lock:
            return 0 if self._closed else len(self._idle)

    def submit(self, job: Dict[str, Any],
               callback: Callable[[Outcome], None],
               timeout_s: Optional[float] = None) -> None:
        """Hand a job to an idle worker; ``callback(outcome)`` fires on
        the worker's watcher thread when it settles.  Raises
        :class:`RuntimeError` when no worker is idle — the scheduler
        guards with :meth:`free_slots` under its own lock and is the
        pool's only submitter."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            if not self._idle:
                raise RuntimeError("no idle worker")
            worker = self._idle.pop()
        worker.jobs.put((job, callback,
                         self.job_timeout_s if timeout_s is None
                         else timeout_s))

    def _settled(self, worker: _Worker, status: str) -> None:
        with self._lock:
            key = {"ok": "completed", "reject": "rejects",
                   "timeout": "timeouts"}.get(status, "errors")
            self.stats[key] += 1
            if not self._closed:
                self._idle.append(worker)

    # -- lifecycle -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    def processes_alive(self) -> int:
        """Live worker processes (0 after a clean shutdown)."""
        return sum(1 for w in self._workers if w.proc.is_alive())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            snap = dict(self.stats)
        snap["workers"] = len(self._workers)
        snap["idle"] = len(self._idle)
        snap["alive"] = self.processes_alive()
        return snap

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Stop every worker thread and process; idempotent.

        Jobs already running settle first (their watcher threads finish
        the in-flight execution before seeing the sentinel), so callers
        should drain the scheduler before shutting the pool down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._idle.clear()
        for worker in self._workers:
            worker.jobs.put(None)
        deadline = time.time() + timeout_s
        for worker in self._workers:
            worker.thread.join(timeout=max(0.1, deadline - time.time()))
        for worker in self._workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5)
