"""Persistent watchdogged worker pool for the serve daemon.

Unlike the batch runner's process-per-experiment scheduler
(:func:`repro.experiments.runner._run_parallel`), serving wants workers
that *stay up*: each worker process enables the target registry's warm
cache at startup, so consecutive jobs against the same target reuse a
built system (``build → acquire → run → reset → release``) instead of
paying construction again.

Each worker is one OS process plus one parent-side watcher thread:

* jobs travel over a private duplex pipe; results come back as
  ``("ok", payload)`` / ``("reject", {code, error})`` (a
  :class:`~repro.common.errors.ReproError` — usage-level, message
  preserved) / ``("error", traceback)`` (crash) / ``("timeout", msg)``;
* a job whose spec carries a ``"progress"`` entry streams non-terminal
  ``("progress", frame)`` tuples over the same pipe while it runs (a
  :class:`~repro.progress.ProgressReporter` inside the worker emits
  them); the watcher hands each frame to the submitter's
  ``on_progress`` callback and keeps waiting for the terminal outcome;
* the watcher enforces ``job_timeout_s`` — a wedged worker is
  terminated and respawned, and the job settles as a timeout;
* a worker that dies mid-job (OOM-kill, segfault, ``os._exit``) is
  detected, respawned, and the job settles as an error — the pool's
  capacity never degrades.

The pool itself does no queueing policy: :class:`SessionScheduler`
owns fairness/quotas and only submits while :meth:`WorkerPool.free_slots`
is positive.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.engine.stats import Histogram

#: outcome tuples handed to completion callbacks
Outcome = Tuple[str, Any]

#: how often watchers re-check liveness/deadlines while polling
_POLL_S = 0.05


def _make_reporter(job: Dict[str, Any],
                   emit: Callable[[Dict[str, Any]], None]):
    """A :class:`ProgressReporter` for the job's ``progress`` spec, or
    ``None`` (the zero-cost default) when the client didn't ask."""
    spec = job.get("progress")
    if not spec:                       # absent / False / null: zero-cost
        return None
    from repro.progress import ProgressReporter
    kwargs = dict(spec) if isinstance(spec, dict) else {}
    allowed = {"interval_ps", "min_wall_s"}
    return ProgressReporter(
        emit=emit,
        **{k: v for k, v in kwargs.items() if k in allowed})


def _execute_job(job: Dict[str, Any],
                 emit_progress: Callable[[Dict[str, Any]], None]
                 ) -> Dict[str, Any]:
    """Run one job inside the worker process; returns a JSON-safe doc.

    ``emit_progress`` ships one non-terminal progress frame up the
    worker pipe; it is only exercised when the job asked for progress.

    Imports live here (not module top level) so the parent can fork
    workers before the heavyweight experiment modules are loaded.
    """
    from repro.experiments import exec as exec_core
    from repro.experiments.export import result_to_dict

    kind = job.get("kind")
    if kind == "experiment":
        from repro.experiments.common import Scale
        results = exec_core.run_experiment(
            job["experiment"], Scale(job.get("scale", "smoke")),
            int(job.get("seed", exec_core.DEFAULT_SEED)),
            flight=exec_core.make_flight_recorder(job.get("flight")),
            telemetry=job.get("telemetry"), faults=job.get("faults"),
            session=job.get("session"),
            progress=_make_reporter(job, emit_progress))
        return {"results": [result_to_dict(r) for r in results]}
    if kind == "stream":
        stream = exec_core.run_stream(
            job["target"], job.get("ops", ()),
            overrides=job.get("overrides"), faults=job.get("faults"),
            session=job.get("session"),
            progress=_make_reporter(job, emit_progress),
            issue=str(job.get("issue", "chained")),
            shards=job.get("shards"))
        return {"stream": stream}
    if kind == "ping":
        return {"pong": True}
    if kind == "_test_sleep":          # watchdog diagnostics (tests)
        time.sleep(float(job.get("seconds", 60.0)))
        return {"slept": True}
    if kind == "_test_die":            # crash-respawn diagnostics (tests)
        import os
        os._exit(17)
    raise ReproError(f"unknown job kind {kind!r}")


def _worker_main(conn, warm_cache_limit: int) -> None:
    """Worker-process entry: serve jobs until the pipe closes.

    The warm cache lives *here*, in the worker — a parent-side cache
    would be useless because systems never cross the process boundary.
    """
    import os

    from repro import registry
    if warm_cache_limit > 0:
        registry.enable_warm_cache(warm_cache_limit)
    pid = os.getpid()

    def emit_progress(frame: Dict[str, Any]) -> None:
        # non-terminal frame; losing one (dead parent) is never fatal —
        # the terminal send below will notice the broken pipe
        try:
            conn.send(("progress", {**frame, "worker_pid": pid}))
        except (OSError, BrokenPipeError, ValueError):
            pass

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:                # shutdown sentinel
            conn.close()
            return
        try:
            payload = _execute_job(job, emit_progress)
            payload["warm_cache"] = registry.warm_cache_stats()
            from repro.engine.event import aggregate_kernel_stats
            payload["kernel"] = aggregate_kernel_stats()
            payload["worker_pid"] = pid
            message: Outcome = ("ok", payload)
        except ReproError as exc:
            message = ("reject", {"code": getattr(exc, "code", 2) or 2,
                                  "error": str(exc)})
        except BaseException:
            message = ("error", traceback.format_exc())
        try:
            conn.send(message)
        except (OSError, BrokenPipeError):
            return


class _Worker:
    """One pooled process and the parent-side thread that watches it."""

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.jobs: "queue.Queue" = queue.Queue()
        self.proc = None
        self.conn = None
        #: True while a job is executing (read under the pool lock for
        #: the metrics snapshot; written only by this watcher thread)
        self.busy = False
        self.jobs_done = 0
        #: last cumulative warm-cache stats doc this worker reported
        self.warm_cache: Dict[str, int] = {}
        #: last cumulative kernel-health stats doc this worker reported
        self.kernel: Dict[str, Any] = {}
        self._spawn()
        self.thread = threading.Thread(
            target=self._loop, name=f"serve-worker-{index}", daemon=True)
        self.thread.start()

    def _spawn(self) -> None:
        ctx = self.pool.ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.pool.warm_cache_limit), daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.pool.stats["spawned"] += 1

    def _respawn(self) -> None:
        try:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=5)
            self.conn.close()
        except (OSError, ValueError):
            pass
        self._spawn()
        self.pool.stats["respawned"] += 1
        # the fresh process starts with a cold warm cache by design
        self.warm_cache = {}
        self.kernel = {}

    def _loop(self) -> None:
        while True:
            item = self.jobs.get()
            if item is None:
                self._stop_process()
                return
            job, callback, timeout_s, on_progress = item
            self.busy = True
            started = time.monotonic()
            outcome = self._execute(job, timeout_s, on_progress)
            self.busy = False
            self.pool._settled(self, outcome[0],
                               time.monotonic() - started)
            callback(outcome)

    def _execute(self, job, timeout_s: Optional[float],
                 on_progress: Optional[Callable[[Dict[str, Any]], None]]
                 ) -> Outcome:
        try:
            self.conn.send(job)
        except (OSError, BrokenPipeError):
            self._respawn()
            try:
                self.conn.send(job)
            except (OSError, BrokenPipeError):
                return ("error", "worker pipe unusable after respawn")
        deadline = (time.time() + timeout_s) if timeout_s else None
        while True:
            try:
                if self.conn.poll(_POLL_S):
                    message = self.conn.recv()
                    if message and message[0] == "progress":
                        # non-terminal frame: forward and keep waiting
                        # (the watchdog deadline is the job's wall
                        # budget — progress does not extend it)
                        if on_progress is not None:
                            try:
                                on_progress(message[1])
                            except Exception:
                                pass
                        continue
                    if message and message[0] == "ok":
                        payload = message[1]
                        if isinstance(payload, dict) and \
                                "warm_cache" in payload:
                            self.warm_cache = dict(payload["warm_cache"])
                        if isinstance(payload, dict) and \
                                "kernel" in payload:
                            self.kernel = dict(payload["kernel"])
                    return message
            except (EOFError, OSError):
                exitcode = self.proc.exitcode
                self._respawn()
                return ("error",
                        f"worker died mid-job (exit code {exitcode})")
            if not self.proc.is_alive():
                exitcode = self.proc.exitcode
                self._respawn()
                return ("error",
                        f"worker died mid-job (exit code {exitcode})")
            if deadline is not None and time.time() >= deadline:
                self._respawn()
                return ("timeout",
                        f"job exceeded {timeout_s}s watchdog; "
                        f"worker terminated and respawned")

    def _stop_process(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Fixed-size pool of persistent warm-cache worker processes."""

    def __init__(self, workers: int = 2, warm_cache: int = 8,
                 job_timeout_s: Optional[float] = None) -> None:
        from repro.experiments.exec import _mp_context
        self.ctx = _mp_context()
        self.warm_cache_limit = warm_cache
        self.job_timeout_s = job_timeout_s
        self.stats: Dict[str, int] = {
            "spawned": 0, "respawned": 0, "completed": 0,
            "errors": 0, "timeouts": 0, "rejects": 0,
        }
        self._started = time.monotonic()
        #: settled-job wall time in milliseconds (drives the
        #: ``repro_serve_job_wall_seconds`` summary series)
        self._job_ms = Histogram("pool.job_ms")
        self._lock = threading.Lock()
        self._workers: List[_Worker] = [
            _Worker(self, i) for i in range(max(1, workers))]
        self._idle: List[_Worker] = list(self._workers)
        self._closed = False

    # -- scheduler interface --------------------------------------------

    def free_slots(self) -> int:
        with self._lock:
            return 0 if self._closed else len(self._idle)

    def submit(self, job: Dict[str, Any],
               callback: Callable[[Outcome], None],
               timeout_s: Optional[float] = None,
               on_progress: Optional[Callable[[Dict[str, Any]], None]]
               = None) -> None:
        """Hand a job to an idle worker; ``callback(outcome)`` fires on
        the worker's watcher thread when it settles, and
        ``on_progress(frame)`` fires on the same thread for every
        non-terminal progress frame the job emits.  Raises
        :class:`RuntimeError` when no worker is idle — the scheduler
        guards with :meth:`free_slots` under its own lock and is the
        pool's only submitter."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            if not self._idle:
                raise RuntimeError("no idle worker")
            worker = self._idle.pop()
        worker.jobs.put((job, callback,
                         self.job_timeout_s if timeout_s is None
                         else timeout_s, on_progress))

    def _settled(self, worker: _Worker, status: str,
                 wall_s: float) -> None:
        with self._lock:
            key = {"ok": "completed", "reject": "rejects",
                   "timeout": "timeouts"}.get(status, "errors")
            self.stats[key] += 1
            worker.jobs_done += 1
            self._job_ms.record(int(wall_s * 1000))
            if not self._closed:
                self._idle.append(worker)

    # -- lifecycle -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    def processes_alive(self) -> int:
        """Live worker processes (0 after a clean shutdown)."""
        return sum(1 for w in self._workers if w.proc.is_alive())

    def snapshot(self) -> Dict[str, Any]:
        """One internally consistent view of the pool.

        Everything — outcome counters, idle/busy occupancy, per-worker
        states, the merged warm-cache stats, and the job wall-time
        histogram — is read under one acquisition of the pool lock, so
        a ``stats``/``metrics`` reply can never show e.g. more busy
        workers than settled jobs explain.  ``uptime_s`` comes from a
        monotonic start time, immune to wall-clock steps.
        """
        with self._lock:
            snap: Dict[str, Any] = dict(self.stats)
            snap["workers"] = len(self._workers)
            snap["idle"] = len(self._idle)
            snap["busy"] = sum(1 for w in self._workers if w.busy)
            snap["alive"] = sum(1 for w in self._workers
                                if w.proc.is_alive())
            snap["uptime_s"] = time.monotonic() - self._started
            snap["job_ms"] = self._job_ms.as_stats()
            warm: Dict[str, int] = {}
            for worker in self._workers:
                for key, value in worker.warm_cache.items():
                    warm[key] = warm.get(key, 0) + int(value)
            snap["warm_cache"] = warm
            # engine kernel health, summed across workers (same
            # cumulative-per-process semantics as the warm cache)
            kernel: Dict[str, Any] = {}
            hist: Dict[str, int] = {}
            for worker in self._workers:
                for key, value in worker.kernel.items():
                    if key == "batch_hist":
                        for label, count in dict(value).items():
                            hist[label] = hist.get(label, 0) + int(count)
                    elif isinstance(value, (int, float)):
                        kernel[key] = kernel.get(key, 0) + value
            if kernel or hist:
                scheduled = kernel.get("scheduled", 0)
                kernel["pool_hit_rate"] = (
                    kernel.get("pool_hits", 0) / scheduled
                    if scheduled else 0.0)
                kernel["batch_hist"] = hist
            snap["kernel"] = kernel
            snap["worker_states"] = [
                {"index": w.index, "pid": w.proc.pid,
                 "alive": w.proc.is_alive(), "busy": w.busy,
                 "jobs_done": w.jobs_done}
                for w in self._workers]
        return snap

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Stop every worker thread and process; idempotent.

        Jobs already running settle first (their watcher threads finish
        the in-flight execution before seeing the sentinel), so callers
        should drain the scheduler before shutting the pool down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._idle.clear()
        for worker in self._workers:
            worker.jobs.put(None)
        deadline = time.time() + timeout_s
        for worker in self._workers:
            worker.thread.join(timeout=max(0.1, deadline - time.time()))
        for worker in self._workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5)
