"""Daemon metrics registry and Prometheus text exposition.

:class:`ServeMetrics` is the daemon's single observability aggregation
point.  It owns the daemon-level event counters (connections, protocol
errors, progress frames relayed) and, on :meth:`~ServeMetrics.collect`,
folds in one internally consistent snapshot from each subsystem — the
scheduler (queue depths, per-tenant fairness series), the worker pool
(worker states, job wall-time histogram, merged warm-cache stats), and
the session book.  The same collected document backs three consumers:

* the ``metrics`` protocol verb in JSON form (``repro-top``, tests);
* :func:`render_prometheus` — text exposition format 0.0.4, all series
  under the ``repro_serve_`` prefix, for scrape-based monitoring (the
  daemon can also serve it over plain HTTP ``GET /metrics``);
* :func:`parse_exposition` — a strict parser/validator used by the
  tests and the CI serve-smoke gate to prove the exposition is
  well-formed (``# TYPE`` before samples, legal names, float values,
  no duplicate samples) without needing a Prometheus client library.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: legal Prometheus metric-name shape (also used by the validator)
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def _sanitize(fragment: str) -> str:
    """Fold an arbitrary key into a legal metric-name fragment."""
    out = re.sub(r"[^a-zA-Z0-9_]", "_", str(fragment))
    return out if out and not out[0].isdigit() else "_" + out


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class ServeMetrics:
    """Aggregates daemon counters with subsystem snapshots.

    The daemon increments event counters via :meth:`inc` from the event
    loop and watcher threads; :meth:`collect` can therefore be called
    from any thread (counter reads are taken under the same lock the
    writers use, and each subsystem snapshot is internally consistent
    by its own contract).
    """

    def __init__(self, scheduler=None, pool=None,
                 sessions=None) -> None:
        self._scheduler = scheduler
        self._pool = pool
        self._sessions = sessions
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.counters: Dict[str, int] = {
            "connections_total": 0,
            "protocol_errors_total": 0,
            "progress_frames_total": 0,
            "metrics_scrapes_total": 0,
        }

    def inc(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + by

    # -- collection ------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """One JSON-safe document covering every observable subsystem."""
        with self._lock:
            counters = dict(self.counters)
        doc: Dict[str, Any] = {
            "uptime_s": time.monotonic() - self._started,
            "counters": counters,
        }
        if self._sessions is not None:
            doc["sessions"] = len(self._sessions)
        if self._scheduler is not None:
            doc["scheduler"] = self._scheduler.snapshot()
        if self._pool is not None:
            doc["pool"] = self._pool.snapshot()
        return doc

    def prometheus(self) -> str:
        """Current state rendered as Prometheus text exposition."""
        return render_prometheus(self.collect())


# -- rendering -----------------------------------------------------------

class _Writer:
    """Accumulates families in declaration order, one TYPE per family."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._declared: Dict[str, str] = {}

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared[name] = mtype
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(self, name: str, value: Any,
               labels: Optional[Dict[str, str]] = None,
               suffix: str = "") -> None:
        try:
            number = float(value)
        except (TypeError, ValueError):
            return
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items())
            self.lines.append(f"{name}{suffix}{{{rendered}}} {number:g}")
        else:
            self.lines.append(f"{name}{suffix} {number:g}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(doc: Dict[str, Any]) -> str:
    """Render a :meth:`ServeMetrics.collect` document as exposition text.

    Pure function of the collected document so tests can render golden
    snapshots without a live daemon.
    """
    w = _Writer()

    w.family("repro_serve_uptime_seconds", "gauge",
             "Daemon uptime in seconds.")
    w.sample("repro_serve_uptime_seconds", doc.get("uptime_s", 0.0))

    if "sessions" in doc:
        w.family("repro_serve_sessions", "gauge",
                 "Currently open client sessions.")
        w.sample("repro_serve_sessions", doc["sessions"])

    counters = doc.get("counters", {})
    helps = {
        "connections_total": "Client connections accepted.",
        "protocol_errors_total":
            "Malformed or unknown protocol messages received.",
        "progress_frames_total":
            "Non-terminal progress frames relayed to clients.",
        "metrics_scrapes_total": "Metrics collections served.",
    }
    for key in sorted(counters):
        name = f"repro_serve_{_sanitize(key)}"
        w.family(name, "counter", helps.get(key, f"Daemon counter {key}."))
        w.sample(name, counters[key])

    sched = doc.get("scheduler")
    if sched:
        w.family("repro_serve_scheduler_jobs_total", "counter",
                 "Scheduler job events by stage.")
        for event in ("submitted", "dispatched", "completed", "rejected"):
            if event in sched:
                w.sample("repro_serve_scheduler_jobs_total", sched[event],
                         {"event": event})
        w.family("repro_serve_dispatch_log_total", "counter",
                 "All-time dispatches recorded (log itself is bounded).")
        w.sample("repro_serve_dispatch_log_total",
                 sched.get("dispatch_log_total", 0))
        w.family("repro_serve_queued", "gauge",
                 "Jobs queued awaiting dispatch.")
        w.sample("repro_serve_queued", sched.get("queued", 0))
        w.family("repro_serve_active", "gauge", "Jobs currently running.")
        w.sample("repro_serve_active", sched.get("active", 0))
        w.family("repro_serve_tenant_queued", "gauge",
                 "Queued jobs per tenant.")
        for tenant, depth in sorted(
                (sched.get("queued_by_tenant") or {}).items()):
            w.sample("repro_serve_tenant_queued", depth,
                     {"tenant": tenant})
        w.family("repro_serve_tenant_active", "gauge",
                 "Running jobs per tenant.")
        for tenant, n in sorted(
                (sched.get("active_by_tenant") or {}).items()):
            w.sample("repro_serve_tenant_active", n, {"tenant": tenant})
        w.family("repro_serve_tenant_dispatched_total", "counter",
                 "All-time dispatches per tenant (fairness series).")
        for tenant, n in sorted(
                (sched.get("dispatched_by_tenant") or {}).items()):
            w.sample("repro_serve_tenant_dispatched_total", n,
                     {"tenant": tenant})

    pool = doc.get("pool")
    if pool:
        w.family("repro_serve_workers", "gauge",
                 "Configured pool worker slots.")
        w.sample("repro_serve_workers", pool.get("workers", 0))
        for gauge in ("idle", "busy", "alive"):
            name = f"repro_serve_workers_{gauge}"
            w.family(name, "gauge", f"Pool workers currently {gauge}.")
            w.sample(name, pool.get(gauge, 0))
        w.family("repro_serve_workers_spawned_total", "counter",
                 "Worker processes started over the daemon lifetime.")
        w.sample("repro_serve_workers_spawned_total",
                 pool.get("spawned", 0))
        w.family("repro_serve_workers_respawned_total", "counter",
                 "Workers restarted after crash, wedge, or broken pipe.")
        w.sample("repro_serve_workers_respawned_total",
                 pool.get("respawned", 0))
        w.family("repro_serve_jobs_total", "counter",
                 "Settled jobs by outcome.")
        for outcome in ("completed", "errors", "timeouts", "rejects"):
            if outcome in pool:
                w.sample("repro_serve_jobs_total", pool[outcome],
                         {"outcome": outcome})
        job_ms = pool.get("job_ms") or {}
        if job_ms.get("count"):
            w.family("repro_serve_job_wall_seconds", "summary",
                     "Wall time of settled jobs.")
            w.sample("repro_serve_job_wall_seconds",
                     job_ms.get("p50", 0) / 1000.0,
                     {"quantile": "0.5"})
            w.sample("repro_serve_job_wall_seconds",
                     job_ms.get("p99", 0) / 1000.0,
                     {"quantile": "0.99"})
            w.sample("repro_serve_job_wall_seconds",
                     job_ms.get("sum", 0) / 1000.0, suffix="_sum")
            w.sample("repro_serve_job_wall_seconds",
                     job_ms.get("count", 0), suffix="_count")
        warm = pool.get("warm_cache") or {}
        if warm:
            w.family("repro_serve_warm_cache_events_total", "counter",
                     "Warm target cache events summed across workers.")
            for key in ("hits", "misses", "parked", "dropped",
                        "ineligible"):
                if key in warm:
                    w.sample("repro_serve_warm_cache_events_total",
                             warm[key], {"event": key})
            w.family("repro_serve_warm_cache_size", "gauge",
                     "Parked systems across worker warm caches.")
            w.sample("repro_serve_warm_cache_size", warm.get("size", 0))
            hits, misses = warm.get("hits", 0), warm.get("misses", 0)
            if hits + misses:
                w.family("repro_serve_warm_cache_hit_ratio", "gauge",
                         "hits / (hits + misses) across workers.")
                w.sample("repro_serve_warm_cache_hit_ratio",
                         hits / (hits + misses))
        kernel = pool.get("kernel") or {}
        if kernel:
            w.family("repro_kernel_engines", "gauge",
                     "Live event engines across workers.")
            w.sample("repro_kernel_engines", kernel.get("engines", 0))
            w.family("repro_kernel_events_total", "counter",
                     "Event callbacks dispatched across workers.")
            w.sample("repro_kernel_events_total", kernel.get("events", 0))
            w.family("repro_kernel_pool_events_total", "counter",
                     "Event-pool allocations by outcome (hit = recycled).")
            for outcome, key in (("hit", "pool_hits"),
                                 ("miss", "pool_misses")):
                w.sample("repro_kernel_pool_events_total",
                         kernel.get(key, 0), {"outcome": outcome})
            w.family("repro_kernel_pool_hit_ratio", "gauge",
                     "Recycled events / scheduled events.")
            w.sample("repro_kernel_pool_hit_ratio",
                     kernel.get("pool_hit_rate", 0.0))
            w.family("repro_kernel_far_migrations_total", "counter",
                     "Far-heap events migrated into calendar buckets.")
            w.sample("repro_kernel_far_migrations_total",
                     kernel.get("far_migrations", 0))
            w.family("repro_kernel_compactions_total", "counter",
                     "Lazy-deletion compaction passes.")
            w.sample("repro_kernel_compactions_total",
                     kernel.get("compactions", 0))
            w.family("repro_kernel_compacted_entries_total", "counter",
                     "Cancelled entries removed by compaction.")
            w.sample("repro_kernel_compacted_entries_total",
                     kernel.get("compacted_entries", 0))
            w.family("repro_kernel_singleton_dispatches_total", "counter",
                     "Events dispatched via the singleton fast lane.")
            w.sample("repro_kernel_singleton_dispatches_total",
                     kernel.get("singleton_dispatches", 0))
            for gauge, help_text in (
                    ("pending", "Pending events across live engines."),
                    ("pooled", "Recycled events parked for reuse."),
                    ("buckets", "Occupied calendar buckets."),
                    ("far_events", "Events parked on far-future heaps.")):
                name = f"repro_kernel_{gauge}"
                w.family(name, "gauge", help_text)
                w.sample(name, kernel.get(gauge, 0))
            hist = kernel.get("batch_hist") or {}
            if hist:
                w.family("repro_kernel_batch_dispatches_total", "counter",
                         "Opened calendar buckets by batch size range.")
                for label in sorted(hist):
                    w.sample("repro_kernel_batch_dispatches_total",
                             hist[label], {"batch_size": label})

    jobs = doc.get("jobs")
    if jobs is not None:
        w.family("repro_serve_jobs_in_flight", "gauge",
                 "Jobs accepted but not yet settled.")
        w.sample("repro_serve_jobs_in_flight", len(jobs))

    return w.text()


# -- validation ----------------------------------------------------------

def parse_exposition(text: str) -> Dict[str, float]:
    """Strictly parse Prometheus text exposition; raise on malformation.

    Enforces the invariants the tests and the CI serve-smoke gate rely
    on: legal metric/label names, ``# TYPE`` declared once per family
    and *before* its samples, known types, float-parseable values, and
    no duplicate sample (same name + label set).  Returns a flat map of
    ``name{labels}`` → value.

    Raises:
        ValueError: describing the first offending line.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$")
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: "
                                 f"{line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: illegal metric name "
                                 f"{name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ValueError(f"line {lineno}: bad TYPE: {line!r}")
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE "
                                     f"for {name}")
                types[name] = parts[3]
            continue
        match = sample_re.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample: "
                             f"{line!r}")
        name = match.group("name")
        family = re.sub(r"_(?:sum|count|bucket)$", "", name)
        if name not in types and family not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             f"preceding TYPE declaration")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels, lineno):
                key, _ = pair
                if not _LABEL_RE.match(key):
                    raise ValueError(f"line {lineno}: illegal label "
                                     f"name {key!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric value in "
                             f"{line!r}") from None
        key = name + ("{" + labels + "}" if labels else "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    return samples


def _split_labels(labels: str,
                  lineno: int) -> List[Tuple[str, str]]:
    """Split a rendered label block into (name, value) pairs."""
    pairs: List[Tuple[str, str]] = []
    pattern = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)='
                         r'"((?:[^"\\]|\\.)*)"(?:,|$)')
    pos = 0
    while pos < len(labels):
        match = pattern.match(labels, pos)
        if not match:
            raise ValueError(
                f"line {lineno}: malformed labels {labels!r}")
        pairs.append((match.group(1), match.group(2)))
        pos = match.end()
    return pairs


# -- optional plain-HTTP /metrics listener --------------------------------

class MetricsHTTPServer:
    """Tiny threaded HTTP listener serving ``GET /metrics``.

    Exists so ordinary scrape-based monitoring (Prometheus, curl) can
    read the daemon without speaking the ``repro.serve/1`` protocol.
    Stdlib-only (:mod:`http.server`); anything but ``GET /metrics``
    gets a 404.
    """

    def __init__(self, render: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        import http.server

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:          # noqa: N802 (stdlib API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = render().encode("utf-8")
                except Exception as exc:       # render must never 500 raw
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass                           # quiet; ServeLog covers it

        self._httpd = http.server.ThreadingHTTPServer(
            (host, port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-metrics-http", daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
