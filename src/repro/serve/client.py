"""Blocking client for the ``repro-serve`` daemon.

A thin convenience wrapper over the line protocol — a socket, a
read-buffer, and helpers for each request type.  Because the daemon
pushes exactly one terminal message (``result``/``error``/``rejected``)
per submitted request id, the client can run several requests
concurrently on one connection and match replies by id.

    with ServeClient("127.0.0.1", 7421, tenant="team-a") as client:
        reply = client.run_experiment("fig1")
        metrics = reply["results"][0]["metrics"]
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional)

from repro.common.errors import QuotaExceededError, ReproError
from repro.serve import protocol


class ServeError(ReproError):
    """Terminal ``error`` reply from the daemon; carries its code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One session against a running daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 tenant: str = "default",
                 timeout_s: Optional[float] = 300.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.session: Optional[str] = None
        self.welcome: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._rfile = self._sock.makefile("rb")
        #: terminal replies that arrived while waiting for another id
        self._parked: Dict[Any, Dict[str, Any]] = {}
        #: progress callbacks by request id (frames are never parked —
        #: they are dispatched the moment they are read off the socket)
        self._progress_handlers: Dict[Any, Callable[[Dict[str, Any]],
                                                    None]] = {}
        self._hello()

    # -- plumbing --------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(message))

    def _read_message(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _hello(self) -> None:
        self._send({"type": "hello", "tenant": self.tenant})
        self.welcome = self._read_message()
        self.session = self.welcome.get("session")

    def _wait_for(self, request_id: Any,
                  raise_on_error: bool = True) -> Dict[str, Any]:
        """Read until the terminal reply for ``request_id`` arrives.

        Non-terminal messages are never parked: ``accepted`` is
        skipped, and ``progress`` frames are dispatched to their
        request's ``on_progress`` handler immediately (regardless of
        which id this call is waiting on), so a slow job streams live
        updates even while the caller blocks on a different request.
        """
        while True:
            if request_id in self._parked:
                reply = self._parked.pop(request_id)
            else:
                reply = self._read_message()
                if reply.get("type") == "accepted":
                    continue
                if reply.get("type") == "progress":
                    self._dispatch_progress(reply)
                    continue
                if reply.get("id") != request_id:
                    self._parked[reply.get("id")] = reply
                    continue
            if reply.get("id") == request_id:
                self._progress_handlers.pop(request_id, None)
            if raise_on_error:
                if reply.get("type") == "rejected":
                    raise QuotaExceededError(
                        self.tenant, reply.get("error", "rejected"))
                if reply.get("type") == "error":
                    raise ServeError(int(reply.get("code", 1)),
                                     reply.get("error", "server error"))
            return reply

    def _dispatch_progress(self, frame: Dict[str, Any]) -> None:
        handler = self._progress_handlers.get(frame.get("id"))
        if handler is not None:
            handler(frame)

    # -- requests --------------------------------------------------------

    def submit_experiment(self, experiment: str, scale: str = "smoke",
                          seed: Optional[int] = None,
                          flight: Optional[Dict[str, Any]] = None,
                          telemetry: Optional[Dict[str, Any]] = None,
                          faults: Optional[Dict[str, Any]] = None,
                          progress: Any = None,
                          on_progress: Optional[
                              Callable[[Dict[str, Any]], None]] = None
                          ) -> int:
        """Fire-and-forget submit; returns the request id to wait on.

        ``progress`` opts the job into streaming progress frames —
        ``True`` for defaults or a dict of reporter knobs
        (``interval_ps``, ``min_wall_s``); ``on_progress`` receives
        each frame while :meth:`wait` blocks.  Passing only
        ``on_progress`` implies ``progress=True``.
        """
        request_id = next(self._ids)
        message: Dict[str, Any] = {"type": "run", "id": request_id,
                                   "experiment": experiment,
                                   "scale": scale}
        if seed is not None:
            message["seed"] = seed
        if flight is not None:
            message["flight"] = flight
        if telemetry is not None:
            message["telemetry"] = telemetry
        if faults is not None:
            message["faults"] = faults
        if progress is None and on_progress is not None:
            progress = True
        if progress:
            message["progress"] = (progress if isinstance(progress, dict)
                                   else True)
        if on_progress is not None:
            self._progress_handlers[request_id] = on_progress
        self._send(message)
        return request_id

    def run_experiment(self, experiment: str, scale: str = "smoke",
                       seed: Optional[int] = None,
                       flight: Optional[Dict[str, Any]] = None,
                       telemetry: Optional[Dict[str, Any]] = None,
                       faults: Optional[Dict[str, Any]] = None,
                       raise_on_error: bool = True,
                       progress: Any = None,
                       on_progress: Optional[
                           Callable[[Dict[str, Any]], None]] = None
                       ) -> Dict[str, Any]:
        """Submit a named experiment and block for its result message."""
        request_id = self.submit_experiment(
            experiment, scale, seed, flight, telemetry, faults,
            progress=progress, on_progress=on_progress)
        return self.wait(request_id, raise_on_error=raise_on_error)

    def submit_stream(self, target: str,
                      ops: Iterable[Dict[str, Any]],
                      overrides: Optional[Dict[str, Any]] = None,
                      faults: Optional[Dict[str, Any]] = None,
                      progress: Any = None,
                      on_progress: Optional[
                          Callable[[Dict[str, Any]], None]] = None,
                      issue: Optional[str] = None,
                      shards: Optional[int] = None
                      ) -> int:
        """Fire-and-forget stream submit; ``faults`` is a
        ``repro.faultplan/1`` plan document executed against the
        stream (the result then carries the fault report, persistence
        audit included — the litmus thin-client path).
        ``issue="open"`` plus ``shards`` routes the stream through the
        server's shard plane (``repro.shard/1`` result document)."""
        request_id = next(self._ids)
        message: Dict[str, Any] = {"type": "stream", "id": request_id,
                                   "target": target,
                                   "overrides": overrides or {},
                                   "ops": list(ops)}
        if faults is not None:
            message["faults"] = faults
        if issue is not None:
            message["issue"] = issue
        if shards is not None:
            message["shards"] = int(shards)
        if progress is None and on_progress is not None:
            progress = True
        if progress:
            message["progress"] = (progress if isinstance(progress, dict)
                                   else True)
        if on_progress is not None:
            self._progress_handlers[request_id] = on_progress
        self._send(message)
        return request_id

    def run_stream(self, target: str, ops: Iterable[Dict[str, Any]],
                   overrides: Optional[Dict[str, Any]] = None,
                   faults: Optional[Dict[str, Any]] = None,
                   raise_on_error: bool = True,
                   progress: Any = None,
                   on_progress: Optional[
                       Callable[[Dict[str, Any]], None]] = None,
                   issue: Optional[str] = None,
                   shards: Optional[int] = None
                   ) -> Dict[str, Any]:
        """Submit a raw request stream and block for its result."""
        request_id = self.submit_stream(target, ops, overrides,
                                        faults=faults,
                                        progress=progress,
                                        on_progress=on_progress,
                                        issue=issue, shards=shards)
        return self.wait(request_id, raise_on_error=raise_on_error)

    def follow(self, request_id: int,
               raise_on_error: bool = True
               ) -> Iterator[Dict[str, Any]]:
        """Iterate a submitted request's messages as they arrive.

        Yields every ``progress`` frame for ``request_id`` and finally
        the terminal reply (its ``type`` is ``result``/``error``/
        ``rejected``), then stops.  Frames for *other* requests still
        reach their own ``on_progress`` handlers; other requests'
        terminal replies are parked as usual.
        """
        while True:
            if request_id in self._parked:
                reply = self._parked.pop(request_id)
            else:
                reply = self._read_message()
                if reply.get("type") == "accepted":
                    continue
                if reply.get("type") == "progress":
                    if reply.get("id") == request_id:
                        yield reply
                    else:
                        self._dispatch_progress(reply)
                    continue
                if reply.get("id") != request_id:
                    self._parked[reply.get("id")] = reply
                    continue
            self._progress_handlers.pop(request_id, None)
            if raise_on_error:
                if reply.get("type") == "rejected":
                    raise QuotaExceededError(
                        self.tenant, reply.get("error", "rejected"))
                if reply.get("type") == "error":
                    raise ServeError(int(reply.get("code", 1)),
                                     reply.get("error", "server error"))
            yield reply
            return

    def wait(self, request_id: int,
             raise_on_error: bool = True) -> Dict[str, Any]:
        """Block until the terminal reply for a submitted id arrives."""
        return self._wait_for(request_id, raise_on_error=raise_on_error)

    def _inline(self, mtype: str) -> Dict[str, Any]:
        request_id = next(self._ids)
        self._send({"type": mtype, "id": request_id})
        return self._wait_for(request_id)

    def ping(self) -> bool:
        return self._inline("ping").get("type") == "pong"

    def stats(self) -> Dict[str, Any]:
        return self._inline("stats")

    def metrics(self, format: str = "json") -> Any:
        """Daemon metrics: a dict (``json``) or exposition text
        (``prometheus``)."""
        request_id = next(self._ids)
        self._send({"type": "metrics", "id": request_id,
                    "format": format})
        reply = self._wait_for(request_id)
        return reply["body"] if format == "prometheus" else reply["data"]

    def experiments(self) -> List[Dict[str, Any]]:
        return self._inline("experiments")["items"]

    def targets(self) -> List[Dict[str, Any]]:
        return self._inline("targets")["items"]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._send({"type": "bye"})
            self._sock.settimeout(5.0)
            try:
                while True:
                    reply = self._read_message()
                    if reply.get("type") == "goodbye":
                        break
            except (ConnectionError, socket.timeout, OSError):
                pass
        except OSError:
            pass
        finally:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
