"""Blocking client for the ``repro-serve`` daemon.

A thin convenience wrapper over the line protocol — a socket, a
read-buffer, and helpers for each request type.  Because the daemon
pushes exactly one terminal message (``result``/``error``/``rejected``)
per submitted request id, the client can run several requests
concurrently on one connection and match replies by id.

    with ServeClient("127.0.0.1", 7421, tenant="team-a") as client:
        reply = client.run_experiment("fig1")
        metrics = reply["results"][0]["metrics"]
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Dict, Iterable, List, Optional

from repro.common.errors import QuotaExceededError, ReproError
from repro.serve import protocol


class ServeError(ReproError):
    """Terminal ``error`` reply from the daemon; carries its code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One session against a running daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 tenant: str = "default",
                 timeout_s: Optional[float] = 300.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.session: Optional[str] = None
        self.welcome: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._rfile = self._sock.makefile("rb")
        #: terminal replies that arrived while waiting for another id
        self._parked: Dict[Any, Dict[str, Any]] = {}
        self._hello()

    # -- plumbing --------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(message))

    def _read_message(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _hello(self) -> None:
        self._send({"type": "hello", "tenant": self.tenant})
        self.welcome = self._read_message()
        self.session = self.welcome.get("session")

    def _wait_for(self, request_id: Any,
                  raise_on_error: bool = True) -> Dict[str, Any]:
        """Read until the terminal reply for ``request_id`` arrives.

        Non-terminal messages (``accepted``) are skipped; terminal
        replies for *other* ids are parked for their own waiters.
        """
        while True:
            if request_id in self._parked:
                reply = self._parked.pop(request_id)
            else:
                reply = self._read_message()
                if reply.get("type") == "accepted":
                    continue
                if reply.get("id") != request_id:
                    self._parked[reply.get("id")] = reply
                    continue
            if raise_on_error:
                if reply.get("type") == "rejected":
                    raise QuotaExceededError(
                        self.tenant, reply.get("error", "rejected"))
                if reply.get("type") == "error":
                    raise ServeError(int(reply.get("code", 1)),
                                     reply.get("error", "server error"))
            return reply

    # -- requests --------------------------------------------------------

    def submit_experiment(self, experiment: str, scale: str = "smoke",
                          seed: Optional[int] = None,
                          flight: Optional[Dict[str, Any]] = None,
                          telemetry: Optional[Dict[str, Any]] = None,
                          faults: Optional[Dict[str, Any]] = None) -> int:
        """Fire-and-forget submit; returns the request id to wait on."""
        request_id = next(self._ids)
        message: Dict[str, Any] = {"type": "run", "id": request_id,
                                   "experiment": experiment,
                                   "scale": scale}
        if seed is not None:
            message["seed"] = seed
        if flight is not None:
            message["flight"] = flight
        if telemetry is not None:
            message["telemetry"] = telemetry
        if faults is not None:
            message["faults"] = faults
        self._send(message)
        return request_id

    def run_experiment(self, experiment: str, scale: str = "smoke",
                       seed: Optional[int] = None,
                       flight: Optional[Dict[str, Any]] = None,
                       telemetry: Optional[Dict[str, Any]] = None,
                       faults: Optional[Dict[str, Any]] = None,
                       raise_on_error: bool = True) -> Dict[str, Any]:
        """Submit a named experiment and block for its result message."""
        request_id = self.submit_experiment(experiment, scale, seed,
                                            flight, telemetry, faults)
        return self.wait(request_id, raise_on_error=raise_on_error)

    def submit_stream(self, target: str,
                      ops: Iterable[Dict[str, Any]],
                      overrides: Optional[Dict[str, Any]] = None) -> int:
        request_id = next(self._ids)
        self._send({"type": "stream", "id": request_id, "target": target,
                    "overrides": overrides or {}, "ops": list(ops)})
        return request_id

    def run_stream(self, target: str, ops: Iterable[Dict[str, Any]],
                   overrides: Optional[Dict[str, Any]] = None,
                   raise_on_error: bool = True) -> Dict[str, Any]:
        """Submit a raw request stream and block for its result."""
        request_id = self.submit_stream(target, ops, overrides)
        return self.wait(request_id, raise_on_error=raise_on_error)

    def wait(self, request_id: int,
             raise_on_error: bool = True) -> Dict[str, Any]:
        """Block until the terminal reply for a submitted id arrives."""
        return self._wait_for(request_id, raise_on_error=raise_on_error)

    def _inline(self, mtype: str) -> Dict[str, Any]:
        request_id = next(self._ids)
        self._send({"type": mtype, "id": request_id})
        return self._wait_for(request_id)

    def ping(self) -> bool:
        return self._inline("ping").get("type") == "pong"

    def stats(self) -> Dict[str, Any]:
        return self._inline("stats")

    def experiments(self) -> List[Dict[str, Any]]:
        return self._inline("experiments")["items"]

    def targets(self) -> List[Dict[str, Any]]:
        return self._inline("targets")["items"]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._send({"type": "bye"})
            self._sock.settimeout(5.0)
            try:
                while True:
                    reply = self._read_message()
                    if reply.get("type") == "goodbye":
                        break
            except (ConnectionError, socket.timeout, OSError):
                pass
        except OSError:
            pass
        finally:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
