"""Fair round-robin session scheduler with per-tenant quotas.

The daemon may hold many sessions from many tenants while the worker
pool is deliberately small; this module decides *whose job runs next*:

* **fairness** — queued tenants are served round-robin, one dispatch
  per turn, so a tenant that dumps 50 jobs cannot starve a tenant that
  submits one (dispatch order is recorded in :attr:`dispatch_log` so
  tests assert the interleaving deterministically);
* **quotas** — each tenant has a :class:`TenantQuota` bounding its
  concurrently *running* jobs (``max_active``) and its *queued* backlog
  (``max_queued``);
* **backpressure** — a submit beyond ``max_queued`` (or after
  :meth:`SessionScheduler.drain` began) raises
  :class:`~repro.common.errors.QuotaExceededError`, which the daemon
  maps to a 429-style ``rejected`` reply: clients see the bound
  immediately instead of the daemon buffering without limit.

The scheduler is synchronous and pool-agnostic — anything with
``free_slots()`` and ``submit(job, callback)`` works, which is how the
unit tests drive it deterministically with a fake pool.  Completion
callbacks arrive on pool watcher threads; all state is lock-protected.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.common.errors import QuotaExceededError

#: dispatch-log retention on a long-lived daemon: the log is fairness
#: *evidence*, not an audit trail, so it is a bounded deque — recent
#: interleavings stay inspectable while memory stays flat.  The
#: all-time count lives in ``stats["dispatch_log_total"]``.
DISPATCH_LOG_CAP = 1024


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant scheduling bounds."""

    #: jobs a tenant may have running at once
    max_active: int = 2
    #: jobs a tenant may have queued (beyond running) before submits
    #: are rejected with a 429
    max_queued: int = 8


class SessionScheduler:
    """Packs session jobs onto a bounded worker pool, fairly."""

    def __init__(self, pool, default_quota: TenantQuota = TenantQuota(),
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 dispatch_log_cap: int = DISPATCH_LOG_CAP) -> None:
        self._pool = pool
        self._default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._lock = threading.RLock()
        self._queues: Dict[str, Deque[Tuple[Any, Callable,
                                            Optional[Callable]]]] = {}
        #: round-robin rotation of tenant names with queued work
        self._rotation: Deque[str] = deque()
        self._active: Dict[str, int] = {}
        self._draining = False
        self._idle = threading.Event()
        self._idle.set()
        self.stats: Dict[str, int] = {"submitted": 0, "dispatched": 0,
                                      "completed": 0, "rejected": 0}
        #: tenant name per dispatch, most recent ``dispatch_log_cap``
        #: entries (fairness evidence; bounded so a long-lived daemon's
        #: memory stays flat — ``dispatch_log_total`` keeps counting)
        self.dispatch_log: Deque[str] = deque(maxlen=dispatch_log_cap)
        self.dispatch_log_total = 0
        #: all-time dispatches per tenant (fairness series in metrics)
        self.dispatched_by_tenant: Dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._quotas[tenant] = quota

    # -- submission ------------------------------------------------------

    def submit(self, tenant: str, job: Any,
               callback: Callable[[Tuple[str, Any]], None],
               on_progress: Optional[Callable[[Any], None]] = None
               ) -> None:
        """Queue a job for ``tenant``; ``callback(outcome)`` fires when
        the pool settles it, and ``on_progress(frame)`` (when given)
        fires for every non-terminal progress frame the job streams.

        Raises :class:`QuotaExceededError` (``code`` 429) when the
        tenant's queue is full or the scheduler is draining — the
        bounded-queue backpressure contract.
        """
        with self._lock:
            if self._draining:
                self.stats["rejected"] += 1
                raise QuotaExceededError(
                    tenant, "scheduler is draining; not accepting jobs")
            q = self._queues.setdefault(tenant, deque())
            quota = self.quota_for(tenant)
            if len(q) >= quota.max_queued:
                self.stats["rejected"] += 1
                raise QuotaExceededError(
                    tenant, f"queue full ({quota.max_queued} deep; "
                            f"{self._active.get(tenant, 0)} running)")
            q.append((job, callback, on_progress))
            if tenant not in self._rotation:
                self._rotation.append(tenant)
            self.stats["submitted"] += 1
            self._idle.clear()
            self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        """Hand queued jobs to free pool slots, one tenant per turn.

        Each pass rotates through every queued tenant once; a tenant at
        its ``max_active`` (or with an empty queue) is skipped.  The
        loop ends when the pool is full or no tenant can progress.
        """
        while self._pool.free_slots() > 0 and self._rotation:
            progressed = False
            for _ in range(len(self._rotation)):
                tenant = self._rotation[0]
                self._rotation.rotate(-1)
                q = self._queues.get(tenant)
                if not q:
                    self._drop_from_rotation(tenant)
                    continue
                if self._active.get(tenant, 0) >= \
                        self.quota_for(tenant).max_active:
                    continue
                job, callback, on_progress = q.popleft()
                if not q:
                    self._drop_from_rotation(tenant)
                self._active[tenant] = self._active.get(tenant, 0) + 1
                self.stats["dispatched"] += 1
                self.dispatch_log.append(tenant)
                self.dispatch_log_total += 1
                self.dispatched_by_tenant[tenant] = \
                    self.dispatched_by_tenant.get(tenant, 0) + 1
                if on_progress is None:
                    # two-argument form keeps every pool stand-in
                    # (tests, fakes) compatible
                    self._pool.submit(
                        job, self._make_done(tenant, callback))
                else:
                    self._pool.submit(
                        job, self._make_done(tenant, callback),
                        on_progress=on_progress)
                progressed = True
                if self._pool.free_slots() <= 0:
                    return
            if not progressed:
                return

    def _drop_from_rotation(self, tenant: str) -> None:
        try:
            self._rotation.remove(tenant)
        except ValueError:
            pass

    def _make_done(self, tenant: str,
                   callback: Callable) -> Callable:
        def done(outcome: Tuple[str, Any]) -> None:
            with self._lock:
                self._active[tenant] = max(
                    0, self._active.get(tenant, 0) - 1)
                self.stats["completed"] += 1
                self._dispatch_locked()
                if not self._rotation and not any(self._active.values()):
                    self._idle.set()
            callback(outcome)
        return done

    # -- introspection / lifecycle --------------------------------------

    def queued(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return len(self._queues.get(tenant, ()))
            return sum(len(q) for q in self._queues.values())

    def active(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._active.get(tenant, 0)
            return sum(self._active.values())

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                **self.stats,
                "queued": sum(len(q) for q in self._queues.values()),
                "active": sum(self._active.values()),
                "tenants": sorted(set(self._queues) | set(self._active)),
                "draining": self._draining,
                "dispatch_log_total": self.dispatch_log_total,
                "queued_by_tenant": {t: len(q) for t, q
                                     in self._queues.items() if q},
                "active_by_tenant": {t: n for t, n
                                     in self._active.items() if n},
                "dispatched_by_tenant": dict(self.dispatched_by_tenant),
            }

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop accepting new jobs; wait for queued+active to settle.

        Returns ``True`` when the scheduler went idle within
        ``timeout_s`` (``None`` waits indefinitely).  Safe to call more
        than once; submissions during/after raise 429.
        """
        with self._lock:
            self._draining = True
            if not self._rotation and not any(self._active.values()):
                self._idle.set()
        return self._idle.wait(timeout_s)
