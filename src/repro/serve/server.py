"""The ``repro-serve`` asyncio daemon.

One process hosts the TCP listener, the :class:`SessionScheduler`, and
the persistent :class:`WorkerPool`.  Each client connection is a
session (:mod:`repro.serve.session`); its requests are scheduled onto
the pool and the results pushed back over the same connection as
protocol messages (:mod:`repro.serve.protocol`).

Threading model: the asyncio loop owns sockets and sessions; pool
watcher threads settle jobs and re-enter the loop via
``call_soon_threadsafe``, so each connection's writes stay serialized
through its outbound queue.  Shutdown drains the scheduler (in-flight
work settles, new submits get 429) and then stops the pool — a clean
exit leaves zero worker processes behind.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Any, Dict, Optional

from repro import registry
from repro.common.errors import QuotaExceededError
from repro.experiments.exec import DEFAULT_SEED, REGISTRY
from repro.serve import protocol
from repro.serve.log import NULL_LOG, ServeLog
from repro.serve.metrics import (MetricsHTTPServer, ServeMetrics,
                                 render_prometheus)
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import SessionScheduler, TenantQuota
from repro.serve.session import Session, SessionBook
from repro.telemetry.manifest import run_manifest


class ServeDaemon:
    """Long-lived simulation service (sessions over JSON lines)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, warm_cache: int = 8,
                 max_active: int = 2, max_queued: int = 8,
                 job_timeout_s: Optional[float] = None,
                 seed: int = DEFAULT_SEED,
                 log: Optional[ServeLog] = None,
                 metrics_port: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.seed = seed
        self.log = log if log is not None else NULL_LOG
        self.pool = WorkerPool(workers=workers, warm_cache=warm_cache,
                               job_timeout_s=job_timeout_s)
        self.scheduler = SessionScheduler(
            self.pool, default_quota=TenantQuota(max_active=max_active,
                                                 max_queued=max_queued))
        self.sessions = SessionBook()
        self.metrics = ServeMetrics(scheduler=self.scheduler,
                                    pool=self.pool,
                                    sessions=self.sessions)
        self._metrics_port = metrics_port
        self._metrics_http: Optional[MetricsHTTPServer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: daemon-global job ids (event-loop-thread only; no lock)
        self._job_seq = 0
        #: accepted-but-unsettled jobs keyed by job id — the live table
        #: behind ``repro_serve_jobs_in_flight`` and repro-top's rows
        self._jobs: Dict[str, Dict[str, Any]] = {}
        #: outboxes of connections that sent ``watch`` (progress
        #: broadcast); discarded when their connection closes
        self._watchers: set = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self._metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self._render_metrics, host=self.host,
                port=self._metrics_port)
        self.log.info("daemon.start", host=self.host, port=self.port,
                      workers=len(self.pool),
                      metrics_port=getattr(self._metrics_http,
                                           "port", None))

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain_timeout_s: float = 60.0) -> None:
        """Graceful stop: no new connections, drain, stop workers."""
        self.log.info("daemon.shutdown", drain_timeout_s=drain_timeout_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.scheduler.drain(drain_timeout_s))
        await loop.run_in_executor(None, self.pool.shutdown)
        self.log.info("daemon.stopped")

    # -- metrics ---------------------------------------------------------

    def collect_metrics(self) -> Dict[str, Any]:
        """The :meth:`ServeMetrics.collect` document plus the live
        in-flight job table (thread-safe: reads a point-in-time copy)."""
        doc = self.metrics.collect()
        doc["jobs"] = {jid: dict(info)
                       for jid, info in list(self._jobs.items())}
        return doc

    def _render_metrics(self) -> str:
        self.metrics.inc("metrics_scrapes_total")
        return render_prometheus(self.collect_metrics())

    # -- per-connection handling ----------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        sender = asyncio.ensure_future(self._send_loop(outbox, writer))
        session: Optional[Session] = None
        self.metrics.inc("connections_total")
        self.log.debug("conn.open")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except protocol.MessageFormatError as exc:
                    self.metrics.inc("protocol_errors_total")
                    self.log.warning("protocol.error", error=str(exc))
                    outbox.put_nowait(protocol.encode(
                        protocol.error_message(2, str(exc))))
                    continue
                if session is None and message.get("type") != "hello":
                    # implicit session for hello-less quick clients
                    session = self.sessions.open(
                        str(message.get("tenant", "anon")))
                session = self._handle_message(message, session, outbox)
                if session is None:    # bye
                    break
        finally:
            self._watchers.discard(outbox)
            if session is not None:
                self.sessions.close(session)
                self.log.debug("conn.close", session=session.id,
                               tenant=session.tenant)
            outbox.put_nowait(None)
            with contextlib.suppress(Exception):
                await sender
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send_loop(self, outbox: "asyncio.Queue",
                         writer: asyncio.StreamWriter) -> None:
        while True:
            payload = await outbox.get()
            if payload is None:
                return
            writer.write(payload)
            with contextlib.suppress(ConnectionResetError, OSError):
                await writer.drain()

    # -- message dispatch (runs on the event loop) ----------------------

    def _handle_message(self, message: Dict[str, Any],
                        session: Optional[Session],
                        outbox: "asyncio.Queue") -> Optional[Session]:
        mtype = message.get("type")
        reply = lambda doc: outbox.put_nowait(protocol.encode(doc))  # noqa: E731

        if mtype == "hello":
            if session is None:
                session = self.sessions.open(
                    str(message.get("tenant", "anon")))
            quota = self.scheduler.quota_for(session.tenant)
            reply({"type": "welcome", "protocol": protocol.PROTOCOL,
                   **session.identity(),
                   "limits": {"max_active": quota.max_active,
                              "max_queued": quota.max_queued,
                              "workers": len(self.pool)}})
            return session
        if mtype == "bye":
            reply({"type": "goodbye", **session.identity()})
            return None
        if mtype == "ping":
            reply({"type": "pong", "id": message.get("id")})
            return session
        if mtype == "stats":
            reply({"type": "stats", "id": message.get("id"),
                   "scheduler": self.scheduler.snapshot(),
                   "pool": self.pool.snapshot(),
                   "sessions": len(self.sessions)})
            return session
        if mtype == "metrics":
            self.metrics.inc("metrics_scrapes_total")
            fmt = str(message.get("format", "json"))
            if fmt == "prometheus":
                reply({"type": "metrics", "id": message.get("id"),
                       "format": "prometheus",
                       "body": render_prometheus(self.collect_metrics())})
            elif fmt == "json":
                reply({"type": "metrics", "id": message.get("id"),
                       "format": "json",
                       "data": self.collect_metrics()})
            else:
                self.metrics.inc("protocol_errors_total")
                reply(protocol.error_message(
                    2, f"unknown metrics format {fmt!r}",
                    message.get("id")))
            return session
        if mtype == "watch":
            # broadcast every relayed progress frame to this connection
            self._watchers.add(outbox)
            reply({"type": "watching", "id": message.get("id"),
                   **session.identity()})
            return session
        if mtype == "experiments":
            reply({"type": "experiments", "id": message.get("id"),
                   "items": [{"id": s.id, "section": s.section,
                              "description": s.description,
                              "est_cost": s.est_cost,
                              "targets": list(s.targets)}
                             for s in REGISTRY.values()]})
            return session
        if mtype == "targets":
            reply({"type": "targets", "id": message.get("id"),
                   "items": [{"name": n,
                              "description": registry.spec(n).description,
                              "category": registry.spec(n).category}
                             for n in registry.target_names()]})
            return session
        if mtype in ("run", "stream"):
            self._submit(mtype, message, session, outbox)
            return session
        self.metrics.inc("protocol_errors_total")
        self.log.warning("protocol.unknown_type", mtype=str(mtype),
                         session=session.id, tenant=session.tenant)
        reply(protocol.error_message(
            2, f"unknown message type {mtype!r}", message.get("id")))
        return session

    def _submit(self, mtype: str, message: Dict[str, Any],
                session: Session, outbox: "asyncio.Queue") -> None:
        request_id = message.get("id")
        identity = session.identity()
        if mtype == "run":
            job: Dict[str, Any] = {
                "kind": "experiment",
                "experiment": message.get("experiment"),
                "scale": message.get("scale", "smoke"),
                "seed": message.get("seed", self.seed),
                "flight": message.get("flight"),
                "telemetry": message.get("telemetry"),
                "faults": message.get("faults"),
                "session": identity,
            }
        else:
            job = {
                "kind": "stream",
                "target": message.get("target"),
                "overrides": message.get("overrides") or {},
                "ops": message.get("ops") or [],
                "faults": message.get("faults"),
                "session": identity,
            }
        self._job_seq += 1
        job_id = f"j-{self._job_seq}"
        progress_spec = message.get("progress")
        if progress_spec:
            # opt-in: the worker builds a ProgressReporter from this
            # spec; without it the run stays on the zero-cost null path
            job["progress"] = (progress_spec
                               if isinstance(progress_spec, dict)
                               else True)
        loop = self._loop

        def on_settled(outcome) -> None:
            # pool watcher thread -> event loop
            loop.call_soon_threadsafe(
                self._deliver, session, request_id, job_id, job,
                outcome, outbox)

        def on_progress(frame: Dict[str, Any]) -> None:
            # pool watcher thread -> event loop (same re-entry rule as
            # settlement, so frames and the terminal reply stay ordered
            # on the connection's outbox)
            loop.call_soon_threadsafe(
                self._relay_progress, session, request_id, job_id,
                frame, outbox)

        try:
            self.scheduler.submit(
                session.tenant, job, on_settled,
                on_progress=on_progress if progress_spec else None)
        except QuotaExceededError as exc:
            session.rejected += 1
            self.log.warning("job.rejected", session=session.id,
                             tenant=session.tenant, job=job_id,
                             request_id=request_id, error=str(exc))
            outbox.put_nowait(protocol.encode(
                {"type": "rejected", "id": request_id, "code": exc.code,
                 "error": str(exc)}))
            return
        session.submitted += 1
        session.in_flight += 1
        self._jobs[job_id] = {
            "tenant": session.tenant, "session": session.id,
            "kind": job["kind"],
            "what": job.get("experiment") or job.get("target"),
            "frames": 0, "done_requests": 0, "sim_time_ns": 0,
            "phase": None,
        }
        self.log.info("job.accepted", session=session.id,
                      tenant=session.tenant, job=job_id,
                      request_id=request_id, kind=job["kind"],
                      what=self._jobs[job_id]["what"])
        outbox.put_nowait(protocol.encode(
            {"type": "accepted", "id": request_id, "job": job_id}))

    def _relay_progress(self, session: Session, request_id, job_id: str,
                        frame: Dict[str, Any],
                        outbox: "asyncio.Queue") -> None:
        """Fan one non-terminal frame out (event-loop thread).

        The owning connection gets it tagged with the request id so the
        client can route it to the right handler; watchers get a copy
        without the id but with the session identity.
        """
        self.metrics.inc("progress_frames_total")
        info = self._jobs.get(job_id)
        if info is not None:
            info["frames"] += 1
            for key in ("done_requests", "sim_time_ns", "phase"):
                if key in frame:
                    info[key] = frame[key]
        doc = {"type": "progress", "id": request_id, "job": job_id,
               **frame}
        outbox.put_nowait(protocol.encode(doc))
        self.log.debug("job.progress", session=session.id,
                       tenant=session.tenant, job=job_id,
                       worker_pid=frame.get("worker_pid"),
                       done_requests=frame.get("done_requests"),
                       sim_time_ns=frame.get("sim_time_ns"),
                       phase=frame.get("phase"))
        if self._watchers:
            broadcast = {k: v for k, v in doc.items() if k != "id"}
            broadcast.update(session.identity())
            encoded = protocol.encode(broadcast)
            for watcher in list(self._watchers):
                if watcher is not outbox:
                    watcher.put_nowait(encoded)

    def _deliver(self, session: Session, request_id, job_id: str,
                 job: Dict[str, Any], outcome,
                 outbox: "asyncio.Queue") -> None:
        session.in_flight = max(0, session.in_flight - 1)
        self._jobs.pop(job_id, None)
        status, payload = outcome
        self.log.info("job.settled", session=session.id,
                      tenant=session.tenant, job=job_id,
                      request_id=request_id, status=status,
                      worker_pid=payload.get("worker_pid")
                      if isinstance(payload, dict) else None)
        if status == "ok":
            session.completed += 1
            config = {k: v for k, v in job.items()
                      if k not in ("session", "ops", "progress")
                      and v is not None}
            config["ops"] = len(job["ops"]) if "ops" in job else None
            doc: Dict[str, Any] = {
                "type": "result", "id": request_id, "status": "ok",
                "manifest": run_manifest(
                    seed=int(job.get("seed") or self.seed),
                    config={k: v for k, v in config.items()
                            if v is not None},
                    session=session.identity()),
            }
            doc.update(payload)
        elif status == "reject":
            doc = protocol.error_message(
                payload.get("code", 2), payload.get("error", ""),
                request_id)
        elif status == "timeout":
            doc = protocol.error_message(1, payload, request_id)
            doc["timeout"] = True
        else:
            doc = protocol.error_message(1, str(payload), request_id)
        doc["job"] = job_id
        outbox.put_nowait(protocol.encode(doc))


@contextlib.contextmanager
def running_daemon(**kwargs):
    """Run a :class:`ServeDaemon` on a background thread.

    Yields the daemon with ``daemon.port`` resolved; on exit drains,
    stops the pool, and joins the thread.  This is what the integration
    tests and ``repro-serve smoke`` use to host a real daemon inside
    one process.
    """
    daemon = ServeDaemon(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon failed to start")
    try:
        yield daemon
    finally:
        future = asyncio.run_coroutine_threadsafe(daemon.shutdown(), loop)
        future.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
