"""The ``repro-serve`` asyncio daemon.

One process hosts the TCP listener, the :class:`SessionScheduler`, and
the persistent :class:`WorkerPool`.  Each client connection is a
session (:mod:`repro.serve.session`); its requests are scheduled onto
the pool and the results pushed back over the same connection as
protocol messages (:mod:`repro.serve.protocol`).

Threading model: the asyncio loop owns sockets and sessions; pool
watcher threads settle jobs and re-enter the loop via
``call_soon_threadsafe``, so each connection's writes stay serialized
through its outbound queue.  Shutdown drains the scheduler (in-flight
work settles, new submits get 429) and then stops the pool — a clean
exit leaves zero worker processes behind.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Any, Dict, Optional

from repro import registry
from repro.common.errors import QuotaExceededError
from repro.experiments.exec import DEFAULT_SEED, REGISTRY
from repro.serve import protocol
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import SessionScheduler, TenantQuota
from repro.serve.session import Session, SessionBook
from repro.telemetry.manifest import run_manifest


class ServeDaemon:
    """Long-lived simulation service (sessions over JSON lines)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, warm_cache: int = 8,
                 max_active: int = 2, max_queued: int = 8,
                 job_timeout_s: Optional[float] = None,
                 seed: int = DEFAULT_SEED) -> None:
        self.host = host
        self.port = port
        self.seed = seed
        self.pool = WorkerPool(workers=workers, warm_cache=warm_cache,
                               job_timeout_s=job_timeout_s)
        self.scheduler = SessionScheduler(
            self.pool, default_quota=TenantQuota(max_active=max_active,
                                                 max_queued=max_queued))
        self.sessions = SessionBook()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain_timeout_s: float = 60.0) -> None:
        """Graceful stop: no new connections, drain, stop workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.scheduler.drain(drain_timeout_s))
        await loop.run_in_executor(None, self.pool.shutdown)

    # -- per-connection handling ----------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        sender = asyncio.ensure_future(self._send_loop(outbox, writer))
        session: Optional[Session] = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except protocol.MessageFormatError as exc:
                    outbox.put_nowait(protocol.encode(
                        protocol.error_message(2, str(exc))))
                    continue
                if session is None and message.get("type") != "hello":
                    # implicit session for hello-less quick clients
                    session = self.sessions.open(
                        str(message.get("tenant", "anon")))
                session = self._handle_message(message, session, outbox)
                if session is None:    # bye
                    break
        finally:
            if session is not None:
                self.sessions.close(session)
            outbox.put_nowait(None)
            with contextlib.suppress(Exception):
                await sender
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send_loop(self, outbox: "asyncio.Queue",
                         writer: asyncio.StreamWriter) -> None:
        while True:
            payload = await outbox.get()
            if payload is None:
                return
            writer.write(payload)
            with contextlib.suppress(ConnectionResetError, OSError):
                await writer.drain()

    # -- message dispatch (runs on the event loop) ----------------------

    def _handle_message(self, message: Dict[str, Any],
                        session: Optional[Session],
                        outbox: "asyncio.Queue") -> Optional[Session]:
        mtype = message.get("type")
        reply = lambda doc: outbox.put_nowait(protocol.encode(doc))  # noqa: E731

        if mtype == "hello":
            if session is None:
                session = self.sessions.open(
                    str(message.get("tenant", "anon")))
            quota = self.scheduler.quota_for(session.tenant)
            reply({"type": "welcome", "protocol": protocol.PROTOCOL,
                   **session.identity(),
                   "limits": {"max_active": quota.max_active,
                              "max_queued": quota.max_queued,
                              "workers": len(self.pool)}})
            return session
        if mtype == "bye":
            reply({"type": "goodbye", **session.identity()})
            return None
        if mtype == "ping":
            reply({"type": "pong", "id": message.get("id")})
            return session
        if mtype == "stats":
            reply({"type": "stats", "id": message.get("id"),
                   "scheduler": self.scheduler.snapshot(),
                   "pool": self.pool.snapshot(),
                   "sessions": len(self.sessions)})
            return session
        if mtype == "experiments":
            reply({"type": "experiments", "id": message.get("id"),
                   "items": [{"id": s.id, "section": s.section,
                              "description": s.description,
                              "est_cost": s.est_cost,
                              "targets": list(s.targets)}
                             for s in REGISTRY.values()]})
            return session
        if mtype == "targets":
            reply({"type": "targets", "id": message.get("id"),
                   "items": [{"name": n,
                              "description": registry.spec(n).description,
                              "category": registry.spec(n).category}
                             for n in registry.target_names()]})
            return session
        if mtype in ("run", "stream"):
            self._submit(mtype, message, session, outbox)
            return session
        reply(protocol.error_message(
            2, f"unknown message type {mtype!r}", message.get("id")))
        return session

    def _submit(self, mtype: str, message: Dict[str, Any],
                session: Session, outbox: "asyncio.Queue") -> None:
        request_id = message.get("id")
        identity = session.identity()
        if mtype == "run":
            job: Dict[str, Any] = {
                "kind": "experiment",
                "experiment": message.get("experiment"),
                "scale": message.get("scale", "smoke"),
                "seed": message.get("seed", self.seed),
                "flight": message.get("flight"),
                "telemetry": message.get("telemetry"),
                "faults": message.get("faults"),
                "session": identity,
            }
        else:
            job = {
                "kind": "stream",
                "target": message.get("target"),
                "overrides": message.get("overrides") or {},
                "ops": message.get("ops") or [],
                "session": identity,
            }
        loop = self._loop

        def on_settled(outcome) -> None:
            # pool watcher thread -> event loop
            loop.call_soon_threadsafe(
                self._deliver, session, request_id, job, outcome, outbox)

        try:
            self.scheduler.submit(session.tenant, job, on_settled)
        except QuotaExceededError as exc:
            session.rejected += 1
            outbox.put_nowait(protocol.encode(
                {"type": "rejected", "id": request_id, "code": exc.code,
                 "error": str(exc)}))
            return
        session.submitted += 1
        session.in_flight += 1
        outbox.put_nowait(protocol.encode(
            {"type": "accepted", "id": request_id}))

    def _deliver(self, session: Session, request_id, job: Dict[str, Any],
                 outcome, outbox: "asyncio.Queue") -> None:
        session.in_flight = max(0, session.in_flight - 1)
        status, payload = outcome
        if status == "ok":
            session.completed += 1
            config = {k: v for k, v in job.items()
                      if k not in ("session", "ops") and v is not None}
            config["ops"] = len(job["ops"]) if "ops" in job else None
            doc: Dict[str, Any] = {
                "type": "result", "id": request_id, "status": "ok",
                "manifest": run_manifest(
                    seed=int(job.get("seed") or self.seed),
                    config={k: v for k, v in config.items()
                            if v is not None},
                    session=session.identity()),
            }
            doc.update(payload)
        elif status == "reject":
            doc = protocol.error_message(
                payload.get("code", 2), payload.get("error", ""),
                request_id)
        elif status == "timeout":
            doc = protocol.error_message(1, payload, request_id)
            doc["timeout"] = True
        else:
            doc = protocol.error_message(1, str(payload), request_id)
        outbox.put_nowait(protocol.encode(doc))


@contextlib.contextmanager
def running_daemon(**kwargs):
    """Run a :class:`ServeDaemon` on a background thread.

    Yields the daemon with ``daemon.port`` resolved; on exit drains,
    stops the pool, and joins the thread.  This is what the integration
    tests and ``repro-serve smoke`` use to host a real daemon inside
    one process.
    """
    daemon = ServeDaemon(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon failed to start")
    try:
        yield daemon
    finally:
        future = asyncio.run_coroutine_threadsafe(daemon.shutdown(), loop)
        future.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
