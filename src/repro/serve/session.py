"""Session identity and bookkeeping for the serve daemon.

A session is one client connection's unit of attribution: everything it
runs carries ``{"session": ..., "tenant": ...}`` on
``ExperimentResult.session`` and inside the run manifest — and nowhere
in the simulation payload, which is what keeps served results
bit-identical to batch runs of the same ``(experiment, scale, seed)``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Session:
    """One connected client's identity and live counters."""

    id: str
    tenant: str
    #: requests accepted, completed, and rejected on this session
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    #: jobs currently queued or running for this session
    in_flight: int = 0

    def identity(self) -> Dict[str, object]:
        """The doc stamped onto results and manifests."""
        return {"session": self.id, "tenant": self.tenant}


class SessionBook:
    """Allocates session ids and tracks the live set (thread-safe: the
    asyncio loop opens/closes sessions while pool watcher threads
    complete jobs)."""

    def __init__(self, prefix: str = "s") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._live: Dict[str, Session] = {}

    def open(self, tenant: str) -> Session:
        with self._lock:
            session = Session(f"{self._prefix}-{next(self._counter):04d}",
                              tenant)
            self._live[session.id] = session
            return session

    def close(self, session: Session) -> None:
        with self._lock:
            self._live.pop(session.id, None)

    def get(self, session_id: str) -> Optional[Session]:
        with self._lock:
            return self._live.get(session_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)

    def in_flight(self) -> int:
        """Jobs queued or running across every live session."""
        with self._lock:
            return sum(s.in_flight for s in self._live.values())
