"""Sim-time-driven progress reporting for long-running simulations.

The telemetry sampler (:mod:`repro.telemetry.sampler`) records *what
happened* onto a timeline that rides on the terminal result; this module
answers the operational question a live client has while the run is
still going: *is it moving, and how far along is it?*

A :class:`ProgressReporter` receives the same simulated-time ticks the
telemetry sampler does (every completed request on a
:class:`~repro.target.TargetSystem` reports its completion time) and
periodically emits a compact JSON-safe *frame* through a caller-supplied
``emit`` callback::

    {"done_requests": 4096, "sim_time_ns": 812343, "phase": "fig1",
     "frame": 3, "telemetry": {...small live snapshot...}}

Frames are **advisory**: they never enter a result payload, so a run
with a reporter attached stays byte-identical to one without (the same
contract ``NULL_BUS`` / ``NULL_FLIGHT`` / ``NULL_TELEMETRY`` make).
Emission is throttled twice — frames are *due* when the simulated clock
crosses an ``interval_ps`` boundary, and actually *sent* at most once
per ``min_wall_s`` of wall time — so a fast simulation cannot flood the
worker pipe.  Phase changes and :meth:`finalize` always emit, which
guarantees every reported run produces at least two frames (the
phase-open frame and the terminal one).

Design mirrors the other zero-cost hooks exactly:

* :data:`NULL_PROGRESS` is the shared no-op default (``enabled`` is a
  class attribute ``False``);
* :func:`session` installs a live reporter; the target registry routes
  sim-time ticks from every system it builds to the innermost active
  reporter (tee'ing with the telemetry sampler when both are active);
* the serve worker pool constructs a reporter per job whose ``emit``
  ships frames over the existing worker pipe
  (:mod:`repro.serve.pool`), relayed to the owning client connection.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

#: default simulated interval between due frames: 100 us of sim time
DEFAULT_INTERVAL_PS = 100_000_000

#: default wall-clock floor between emitted frames (seconds)
DEFAULT_MIN_WALL_S = 0.1

#: instrumentation snapshot keys per frame are capped so a frame stays a
#: few KiB even on heavily instrumented systems (frames are advisory;
#: the full snapshot still rides on the terminal result)
SNAPSHOT_KEY_CAP = 64


class NullProgress:
    """No-op reporter: the zero-cost default on every session."""

    __slots__ = ()

    enabled = False

    def attach(self, system: object) -> None:
        pass

    def tick(self, now_ps: int) -> None:
        pass

    def phase(self, name: str) -> None:
        pass

    def finalize(self) -> None:
        pass


#: shared no-op reporter; holds no state, safe to pass around.
NULL_PROGRESS = NullProgress()


class ProgressReporter:
    """Emits progress frames from simulated-time ticks.

    Args:
        emit: called with one JSON-safe frame dict per emission; must be
            cheap and must never raise into the simulation (exceptions
            are swallowed — progress is advisory).
        interval_ps: simulated picoseconds between *due* frames.
        min_wall_s: wall-clock floor between *emitted* frames; phase
            changes and the final frame bypass it.
        clock: wall-clock source (injectable for deterministic tests).
    """

    enabled = True

    def __init__(self, emit: Callable[[Dict[str, object]], None],
                 interval_ps: int = DEFAULT_INTERVAL_PS,
                 min_wall_s: float = DEFAULT_MIN_WALL_S,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._emit = emit
        self.interval_ps = max(1, int(interval_ps))
        self.min_wall_s = float(min_wall_s)
        self._clock = clock
        self._systems: List[object] = []
        self._phase = ""
        self.done_requests = 0
        self.frames = 0
        # run clock: concatenates per-system sim-clock domains, exactly
        # like the telemetry sampler, so sweep harnesses that rebuild a
        # fresh system per point report monotone progress.
        self._base = 0
        self._domain_max = 0
        self._next_due = self.interval_ps
        self._last_wall = float("-inf")

    # -- wiring ----------------------------------------------------------

    def attach(self, system: object) -> None:
        """Include ``system``'s snapshot in frames; folds the previous
        sim-clock domain into the monotone run clock (registry calls
        this for every system built under an active session)."""
        if not any(existing is system for existing in self._systems):
            self._systems.append(system)
            if self._domain_max > 0:
                self._base += self._domain_max
                self._domain_max = 0

    # -- ticking ---------------------------------------------------------

    def tick(self, now_ps: int) -> None:
        """One completed request at simulated time ``now_ps``."""
        self.done_requests += 1
        if now_ps > self._domain_max:
            self._domain_max = now_ps
        t = self._base + self._domain_max
        if t < self._next_due:
            return
        self._next_due = (t // self.interval_ps + 1) * self.interval_ps
        wall = self._clock()
        if wall - self._last_wall < self.min_wall_s:
            return
        self._send(t, wall)

    def phase(self, name: str) -> None:
        """Mark a phase transition; always emits a frame."""
        self._phase = str(name)
        self._send(self._base + self._domain_max, self._clock())

    def finalize(self) -> None:
        """Emit the terminal frame (session exit calls this)."""
        self._send(self._base + self._domain_max, self._clock())

    # -- frames ----------------------------------------------------------

    @property
    def sim_time_ns(self) -> int:
        """Monotone run-clock position in simulated nanoseconds."""
        return (self._base + self._domain_max) // 1000

    def _snapshot(self) -> Dict[str, object]:
        """Small live view of the attached systems' instrumentation.

        Key count is capped (:data:`SNAPSHOT_KEY_CAP`, insertion order —
        the stable stats-registry counters come first on every system);
        a system whose snapshot raises is skipped, never fatal.
        """
        merged: Dict[str, object] = {}
        for system in self._systems:
            snapshot_of = getattr(system, "instrument_snapshot", None)
            if snapshot_of is None:
                continue
            try:
                snap = snapshot_of()
            except Exception:
                continue
            for path, value in snap.items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                if len(merged) >= SNAPSHOT_KEY_CAP and path not in merged:
                    continue
                merged[path] = merged.get(path, 0) + value
        merged["systems"] = len(self._systems)
        return merged

    def frame(self) -> Dict[str, object]:
        """The current frame document (also what ``emit`` receives)."""
        return {
            "done_requests": self.done_requests,
            "sim_time_ns": self.sim_time_ns,
            "phase": self._phase,
            "frame": self.frames,
            "telemetry": self._snapshot(),
        }

    def _send(self, t_ps: int, wall: float) -> None:
        self._last_wall = wall
        self.frames += 1
        try:
            self._emit(self.frame())
        except Exception:
            # advisory channel: a broken pipe or serialization hiccup
            # must never take the simulation down with it
            pass


class TelemetryFanout:
    """Duck-typed telemetry sink forwarding ticks to several receivers.

    Installed instance-side as ``system.telemetry`` when a progress
    session and a telemetry session are active at once: the sampler sees
    the identical tick sequence it would have seen alone (timelines stay
    bit-identical), and the reporter rides along.
    """

    __slots__ = ("_sinks",)

    enabled = True

    def __init__(self, *sinks: object) -> None:
        self._sinks = tuple(s for s in sinks if getattr(s, "enabled", False))

    def tick(self, now_ps: int) -> None:
        for sink in self._sinks:
            sink.tick(now_ps)

    def attach(self, system: object) -> None:
        for sink in self._sinks:
            sink.attach(system)

    def finalize(self) -> None:
        for sink in self._sinks:
            sink.finalize()


# ----------------------------------------------------------------------
# session: route registry-built systems onto one reporter
# ----------------------------------------------------------------------

_ACTIVE_SESSIONS: List[ProgressReporter] = []


def current() -> "ProgressReporter | NullProgress":
    """The innermost active reporter, or :data:`NULL_PROGRESS`."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else NULL_PROGRESS


@contextmanager
def session(reporter: Optional[ProgressReporter]
            ) -> Iterator["ProgressReporter | NullProgress"]:
    """Attach ``reporter`` to every system the target registry builds
    while active (mirrors ``telemetry.session``); emits the terminal
    frame on exit.  ``None`` is a no-op context for caller convenience.
    """
    if reporter is None:
        yield NULL_PROGRESS
        return
    _ACTIVE_SESSIONS.append(reporter)
    try:
        yield reporter
    finally:
        _ACTIVE_SESSIONS.remove(reporter)
        reporter.finalize()
