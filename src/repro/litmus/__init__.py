"""Crash-consistency litmus campaign: generative persistency fuzzing.

The paper's persistence model (ADR domain, WPQ persistence point, the
Section V-C Lazy cache's betrayal of acknowledged writes) is only
trustworthy if it survives adversarial inputs, not just hand-written
cases.  This package fuzzes it continuously:

* :mod:`repro.litmus.program` — seeded generation of small randomized
  litmus programs (regular stores, nt-stores, ``clwb``-style flushes,
  fences, overlapping cache-line addresses) crossed with seeded
  power-cut ordinals; the ``repro.litmus/1`` case document;
* :mod:`repro.litmus.oracle` — runs a case through
  :func:`repro.experiments.exec.run_stream` (or a ``repro-serve``
  client) and checks the persistence audit against each target's ADR
  contract: program-order MUST-durable / MUST-lost invariants that are
  robust to simulated-time ties;
* :mod:`repro.litmus.shrink` — signature-preserving delta debugging of
  failing cases down to a minimal reproducer (ops, cut ordinal, and
  addresses are all minimized; every step is re-verified; fully
  deterministic, so same-seed shrinks are identical across runs);
* :mod:`repro.litmus.corpus` — a persisted corpus of known-outcome
  cases CI replays as a drift gate;
* :mod:`repro.litmus.campaign` — the campaign driver: thousands of
  seeded cases through the crash-tolerant watchdogged worker scheme,
  with litmus counters on an :class:`~repro.instrument.InstrumentBus`
  and progress frames through :mod:`repro.progress`.

Front end: the ``repro-litmus`` CLI
(:mod:`repro.tools.litmus_cli` — ``gen``/``run``/``shrink``/
``corpus``/``campaign``; exit 3 on oracle violation, 4 on a partial
campaign).
"""

from repro.litmus.campaign import (
    LITMUS_CAMPAIGN_SCHEMA,
    campaign_exit_code,
    run_campaign,
)
from repro.litmus.corpus import (
    CORPUS_SCHEMA,
    load_corpus,
    replay_corpus,
    save_corpus,
    validate_corpus,
)
from repro.litmus.oracle import (
    CONTRACTS,
    Verdict,
    check,
    contract_for,
    outcome_of,
    run_case,
)
from repro.litmus.program import (
    LITMUS_SCHEMA,
    REQUEST_OPS,
    LitmusCase,
    random_case,
    validate_case,
)
from repro.litmus.shrink import ShrinkResult, shrink_case

__all__ = [
    "CONTRACTS",
    "CORPUS_SCHEMA",
    "LITMUS_CAMPAIGN_SCHEMA",
    "LITMUS_SCHEMA",
    "REQUEST_OPS",
    "LitmusCase",
    "ShrinkResult",
    "Verdict",
    "campaign_exit_code",
    "check",
    "contract_for",
    "load_corpus",
    "outcome_of",
    "random_case",
    "replay_corpus",
    "run_campaign",
    "run_case",
    "save_corpus",
    "shrink_case",
    "validate_case",
    "validate_corpus",
]
