"""Automatic shrinking of failing litmus cases.

Delta-debugs a case that exhibits something interesting — an oracle
violation, or an acknowledged-write loss (the vans-lazy Section V-C
family) — down to a minimal reproducer:

1. **Signature.**  The original run's verdict is reduced to a target
   signature: the smallest violation kind when the oracle fired, else
   the smallest ``(domain, reason)`` loss family.  Every candidate is
   *re-executed and re-judged*; it is accepted only when its signature
   matches, so the shrinker can never wander onto a different bug.
2. **Op minimization** (ddmin): remove chunks of ops, halving chunk
   size down to single ops.  Removing ops shifts the cut: the
   candidate's cut ordinal is remapped so the cut still fires at the
   first surviving request op at or after the original trigger point
   (candidates whose trigger would fall off the end are rejected
   without running).
3. **Cut minimization**: scan cut ordinals ascending and keep the
   smallest one preserving the signature.
4. **Address canonicalization**: remap 256B blocks to 0x0, 0x100, …
   in first-use order (intra-block offsets preserved), accepted only
   if the signature survives.
5. Loop 2–4 to a fixpoint (bounded by ``max_evals``).

Everything is deterministic — no randomness, candidate order fixed by
construction — so shrinking the same case twice yields byte-identical
minimal reproducers (the CI determinism gate relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.litmus.oracle import Verdict, check, run_case
from repro.litmus.program import REQUEST_OPS, LitmusCase

_BLOCK = 256


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    #: the minimal reproducer (== ``original`` when nothing shrank)
    case: LitmusCase
    #: the signature every accepted step preserved
    signature: Tuple[str, Any]
    #: verdict of the minimal case's final (verifying) execution
    verdict: Verdict
    #: candidate executions spent
    evals: int
    #: accepted shrink steps
    steps: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case.to_dict(),
            "signature": list(self.signature),
            "verdict": self.verdict.as_dict(),
            "evals": self.evals,
            "steps": self.steps,
            "ops": len(self.case.ops),
        }


def signature_of(verdict: Verdict) -> Optional[Tuple[str, Any]]:
    """The default shrink target of a verdict, or ``None``."""
    if verdict.violations:
        return ("violation",
                min(v["kind"] for v in verdict.violations))
    if verdict.losses:
        return ("loss",
                min((entry[1], entry[2]) for entry in verdict.losses))
    return None


def matches(verdict: Verdict, signature: Tuple[str, Any]) -> bool:
    """Does a verdict still exhibit ``signature``?

    Membership, not equality: a candidate keeping the chased violation
    kind (or loss family) matches even while unrelated findings are
    still present — minimization then drives those out naturally.
    """
    kind, detail = signature
    if kind == "violation":
        return any(v["kind"] == detail for v in verdict.violations)
    if kind == "loss":
        return any((entry[1], entry[2]) == tuple(detail)
                   for entry in verdict.losses)
    return False


def _remap_cut(ops: Sequence, kept: Sequence[int],
               cut_index: int) -> Optional[int]:
    """Cut ordinal for a candidate keeping op indices ``kept``: the cut
    fires at the first surviving request op at/after the original
    trigger index (``None`` = trigger falls off the end)."""
    ordinal = 0
    for index in kept:
        if ops[index].get("op") in REQUEST_OPS:
            ordinal += 1
            if index >= cut_index:
                return ordinal
    return None


def _orig_cut_index(case: LitmusCase) -> Optional[int]:
    seen = 0
    for index, item in enumerate(case.ops):
        if item.get("op") in REQUEST_OPS:
            seen += 1
            if seen == case.cut_at_request:
                return index
    return None


def shrink_case(case: LitmusCase, max_evals: int = 2000,
                signature: Optional[Tuple[str, Any]] = None
                ) -> ShrinkResult:
    """Shrink ``case`` to a minimal program with the same signature.

    ``signature`` pins what to chase — e.g. ``("loss", ("wpq",
    "lazy_dirty"))`` to shrink toward the Section V-C betrayal even
    when unrelated cache-domain losses ride along; by default the
    verdict's smallest violation kind (else loss family) is chased.
    """
    result = run_case(case)
    verdict = check(case, result)
    if signature is None:
        signature = signature_of(verdict)
    evals = 1
    steps = 0
    if signature is None:
        # clean pass: nothing to reproduce, nothing to shrink
        return ShrinkResult(case, ("clean", None), verdict, evals, steps)
    if not matches(verdict, signature):
        raise ValueError(
            f"case {case.name!r} does not exhibit signature "
            f"{signature!r}; its verdict has violations="
            f"{[v['kind'] for v in verdict.violations]} losses="
            f"{verdict.losses}")

    current = case
    current_verdict = verdict

    def _try(candidate: LitmusCase) -> Optional[Verdict]:
        nonlocal evals
        if evals >= max_evals:
            return None
        evals += 1
        try:
            candidate_verdict = check(candidate, run_case(candidate))
        except Exception:
            # a candidate the simulator rejects outright is simply not
            # a reproducer; keep shrinking around it
            return None
        if not matches(candidate_verdict, signature):
            return None
        return candidate_verdict

    def _try_keep(kept: List[int]) -> bool:
        nonlocal current, current_verdict, steps
        if len(kept) == len(current.ops):
            return False
        cut_index = _orig_cut_index(current)
        if cut_index is None:
            return False
        new_cut = _remap_cut(current.ops, kept, cut_index)
        if new_cut is None:
            return False
        candidate = current.with_ops(
            [current.ops[index] for index in kept], cut_at_request=new_cut)
        candidate_verdict = _try(candidate)
        if candidate_verdict is None:
            return False
        current, current_verdict = candidate, candidate_verdict
        steps += 1
        return True

    changed = True
    while changed and evals < max_evals:
        changed = False

        # -- ddmin over ops: drop chunks, halving granularity ---------
        chunk = max(1, len(current.ops) // 2)
        while chunk >= 1 and evals < max_evals:
            start = 0
            removed_any = False
            while start < len(current.ops) and evals < max_evals:
                kept = [i for i in range(len(current.ops))
                        if not (start <= i < start + chunk)]
                if _try_keep(kept):
                    removed_any = changed = True
                    # ops shifted left; same start now names new ops
                else:
                    start += chunk
            if not removed_any:
                chunk //= 2

        # -- cut minimization: smallest ordinal with the signature ----
        for ordinal in range(1, current.cut_at_request):
            candidate_verdict = _try(current.with_cut(ordinal))
            if candidate_verdict is not None:
                current = current.with_cut(ordinal)
                current_verdict = candidate_verdict
                steps += 1
                changed = True
                break

        # -- address canonicalization: blocks -> 0x0, 0x100, ... ------
        mapping: Dict[int, int] = {}
        for item in current.ops:
            if item.get("op") == "fence":
                continue
            block = int(item.get("addr", 0)) // _BLOCK
            if block not in mapping:
                mapping[block] = len(mapping) * _BLOCK
        remapped = tuple(
            dict(item) if item.get("op") == "fence"
            else {**item, "addr": mapping[int(item.get("addr", 0))
                                          // _BLOCK]
                  + int(item.get("addr", 0)) % _BLOCK}
            for item in current.ops)
        if remapped != current.ops:
            candidate = current.with_ops(remapped)
            candidate_verdict = _try(candidate)
            if candidate_verdict is not None:
                current, current_verdict = candidate, candidate_verdict
                steps += 1
                changed = True

    if current is not case:
        current = LitmusCase(
            name=f"{case.name}-min", target=current.target,
            overrides=current.overrides, ops=current.ops,
            cut_at_request=current.cut_at_request, seed=current.seed)
    return ShrinkResult(current, signature, current_verdict, evals, steps)
