"""Litmus programs: small randomized persistency workloads.

A litmus case is a straight-line program over a handful of 256B blocks
(the Lazy-cache granularity) built from the full persistency
vocabulary of :func:`repro.experiments.exec.run_stream` — regular
cached stores, nt-stores, ``clwb``/``clflushopt``-style flushes,
fences, reads — plus one seeded power-cut ordinal from
:func:`repro.faults.plan.power_cut_plan`.  Addresses deliberately
overlap: several ops hit the same cache line at different byte
offsets, and one *hot* line is hammered so the wear leveler marks its
block migration-hot and the Lazy cache absorbs it (the Section V-C
loss scenario) within a few dozen ops.

Cases are ``repro.litmus/1`` documents: fully JSON-serializable,
seed-stable, and replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import FaultPlanError
from repro.common.rng import make_rng
from repro.faults.plan import FaultPlan, power_cut_plan

#: litmus-case document version (bump on breaking key changes)
LITMUS_SCHEMA = "repro.litmus/1"

#: ops a litmus program may contain (the run_stream vocabulary)
CASE_OPS = ("read", "write", "write_nt", "store", "flush", "fence")

#: ops that reach the iMC and advance its request counter — the
#: ordinal space ``cut_at_request`` counts in.  ``store`` retires into
#: the CPU cache and ``fence`` drains without issuing a new request,
#: so neither can trigger a request-ordinal power cut.
REQUEST_OPS = ("read", "write", "write_nt", "flush")

#: registry targets a campaign fuzzes by default
DEFAULT_TARGETS = ("vans", "vans-lazy", "memory-mode")

#: Lazy-cache block granularity (addresses are laid out block-wise)
_BLOCK = 256
#: cache-line granularity (the acknowledgement unit)
_LINE = 64
#: sub-line byte offsets the generator mixes in so distinct addresses
#: overlap on one line (0 = aligned, 8 = word inside, 63 = last byte)
_OFFSETS = (0, 0, 8, 63)


@dataclass(frozen=True)
class LitmusCase:
    """One litmus test: a program, a target, and a power-cut ordinal."""

    name: str
    target: str
    ops: Tuple[Mapping[str, Any], ...]
    cut_at_request: int
    seed: int = 0
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def plan(self) -> FaultPlan:
        """The case's single power-cut fault plan."""
        return power_cut_plan(at_request=self.cut_at_request,
                              seed=self.seed)

    @property
    def request_ops(self) -> int:
        """How many ops advance the iMC request counter."""
        return sum(1 for item in self.ops
                   if item.get("op") in REQUEST_OPS)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LITMUS_SCHEMA,
            "name": self.name,
            "target": self.target,
            "overrides": dict(self.overrides),
            "ops": [dict(item) for item in self.ops],
            "cut_at_request": self.cut_at_request,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "LitmusCase":
        problems = validate_case(doc)
        if problems:
            raise FaultPlanError(
                "invalid litmus case: " + "; ".join(problems))
        return cls(
            name=str(doc["name"]),
            target=str(doc["target"]),
            overrides=dict(doc.get("overrides") or {}),
            ops=tuple(dict(item) for item in doc["ops"]),
            cut_at_request=int(doc["cut_at_request"]),
            seed=int(doc.get("seed", 0)),
        )

    # -- shrinker hooks ------------------------------------------------

    def with_ops(self, ops: Sequence[Mapping[str, Any]],
                 cut_at_request: Optional[int] = None) -> "LitmusCase":
        """A candidate variant with a different program (and cut)."""
        return replace(self, ops=tuple(dict(item) for item in ops),
                       cut_at_request=(self.cut_at_request
                                       if cut_at_request is None
                                       else cut_at_request))

    def with_cut(self, cut_at_request: int) -> "LitmusCase":
        return replace(self, cut_at_request=cut_at_request)


def validate_case(doc: Mapping[str, Any]) -> List[str]:
    """Structural check of a litmus-case document; empty when valid."""
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return ["case document is not a mapping"]
    if doc.get("schema") != LITMUS_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{LITMUS_SCHEMA!r}")
    for key in ("name", "target", "ops", "cut_at_request"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    ops = doc.get("ops")
    request_ops = 0
    if ops is not None and not isinstance(ops, (list, tuple)):
        problems.append(f"ops is {type(ops).__name__}, expected a list")
    elif ops is not None:
        for index, item in enumerate(ops):
            if not isinstance(item, Mapping):
                problems.append(f"ops[{index}] is not a mapping")
                continue
            op = item.get("op")
            if op not in CASE_OPS:
                problems.append(f"ops[{index}].op is {op!r}, expected "
                                f"one of {CASE_OPS}")
            elif op in REQUEST_OPS:
                request_ops += int(item.get("count", 1))
            if op != "fence":
                addr = item.get("addr", 0)
                if isinstance(addr, bool) or not isinstance(addr, int) \
                        or addr < 0:
                    problems.append(f"ops[{index}].addr is {addr!r}, "
                                    f"expected a non-negative int")
    cut = doc.get("cut_at_request")
    if cut is not None:
        if isinstance(cut, bool) or not isinstance(cut, int):
            problems.append(f"cut_at_request is {cut!r}, expected an int")
        elif cut < 1:
            problems.append(f"cut_at_request is {cut}, expected >= 1 "
                            "(the trigger arms on the Nth request)")
    overrides = doc.get("overrides")
    if overrides is not None and not isinstance(overrides, Mapping):
        problems.append("overrides is not a mapping")
    return problems


def random_case(seed: int, target: str = "vans",
                min_ops: int = 6, max_ops: int = 24) -> LitmusCase:
    """Generate one seeded litmus case for ``target``.

    Same ``(seed, target)`` always yields the identical case.  The
    program hammers one hot line (~half of all write-traffic) inside a
    small block set so the wear leveler trips the Lazy cache's
    absorb threshold quickly — on ``vans``-family targets the
    ``migrate_threshold`` override is drawn small (4/8/16) for the
    same reason, keeping the Section V-C loss scenario reachable
    within a couple dozen ops.
    """
    rng = make_rng(seed, f"litmus-case:{target}")
    nblocks = rng.randint(1, 3)
    lines = [block * _BLOCK + line * _LINE
             for block in range(nblocks)
             for line in range(_BLOCK // _LINE)]
    hot_line = rng.choice(lines)

    def _addr() -> int:
        base = hot_line if rng.random() < 0.5 else rng.choice(lines)
        return base + rng.choice(_OFFSETS)

    nops = rng.randint(min_ops, max_ops)
    ops: List[Dict[str, Any]] = []
    touched: List[int] = []
    for _ in range(nops):
        roll = rng.random()
        if roll < 0.28:
            op, addr = "write", _addr()
        elif roll < 0.46:
            op, addr = "store", _addr()
        elif roll < 0.61:
            # flushes mostly chase lines the program already touched —
            # a flush of an untouched line is a no-op persistency-wise
            op = "flush"
            addr = (rng.choice(touched) if touched and rng.random() < 0.7
                    else _addr())
        elif roll < 0.71:
            op, addr = "write_nt", _addr()
        elif roll < 0.81:
            op, addr = "read", _addr()
        else:
            ops.append({"op": "fence"})
            continue
        touched.append(addr)
        ops.append({"op": op, "addr": addr})
    if not any(item["op"] in REQUEST_OPS for item in ops):
        # the cut trigger counts iMC requests; guarantee at least one
        ops.append({"op": "write", "addr": hot_line})
    nrequests = sum(1 for item in ops if item["op"] in REQUEST_OPS)
    cut_at_request = rng.randint(1, nrequests)
    overrides: Dict[str, Any] = {}
    if target.startswith("vans"):
        overrides["migrate_threshold"] = rng.choice((4, 8, 16))
    return LitmusCase(
        name=f"litmus-{target}-{seed}",
        target=target,
        overrides=overrides,
        ops=tuple(ops),
        cut_at_request=cut_at_request,
        seed=seed,
    )
