"""The litmus oracle: target-aware ADR persistency contracts.

Executes a :class:`~repro.litmus.program.LitmusCase` through the real
stream executor (:func:`repro.experiments.exec.run_stream`, or a
``repro-serve`` client — the thin-client fuzzing path) and judges the
resulting ``repro.persistence/1`` audit against what the target's
persistence contract *must* guarantee.

Contract levels
---------------

``adr``
    ``vans`` / ``vans-6dimm`` without the Lazy cache.  The WPQ is the
    persistence point: **any** lost WPQ-acknowledged write is a model
    bug, and no ``lazy``-domain acknowledgement may exist at all.
``adr-lazy``
    Lazy-cache targets (``vans-lazy``, or ``lazy_cache=True``
    overrides).  WPQ losses are permitted — that is the Section V-C
    betrayal the checker exists to expose — but only with reason
    ``lazy_dirty``; ``lazy``-domain losses only with
    ``not_written_back``.
``none``
    Memory Mode and the DRAM-era baselines: no persistence contract
    (Memory Mode's DRAM cache also absorbs hits before the iMC, so
    program-level cut ordinals don't map to its request counter).
    Only structural report validity is checked.

On top of the per-domain rules, two *program-order* invariants are
checked for the ``cache`` domain on every contract that has one.  Both
are deliberately tie-robust: simulated timestamps can tie (the WPQ
admits at issue time when it has room), so the oracle only claims what
must hold for **every** legal tie-break — an op strictly before the
cut-triggering op completes at or before the cut time, and only lines
whose whole event history is on one side of the cut are judged:

MUST-durable
    the line's last acknowledging op in the entire program is a
    ``store`` strictly before the cut op, followed (in program order,
    still strictly before the cut op) by a ``flush`` of that line and
    then a ``fence``.  Reporting that line lost is a violation.
MUST-lost
    the line's last acknowledging op is a ``store`` strictly before
    the cut op and **no** flush of that line appears anywhere in the
    program.  Reporting that line durable is a violation
    (``unflushed`` is the only legal reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments import exec as exec_core
from repro.faults.persistence import validate_report
from repro.litmus.program import REQUEST_OPS, LitmusCase

#: target name -> contract level (overrides can flip vans-family
#: targets between ``adr`` and ``adr-lazy``; anything unlisted is
#: ``none``)
CONTRACTS = {
    "vans": "adr",
    "vans-6dimm": "adr",
    "vans-lazy": "adr-lazy",
    "memory-mode": "none",
}

_LINE = 64


def contract_for(target: str, overrides: Mapping[str, Any]) -> str:
    """The persistence contract a (target, overrides) build honors."""
    level = CONTRACTS.get(target, "none")
    lazy = overrides.get("lazy_cache")
    if lazy is True and level == "adr":
        return "adr-lazy"
    if lazy is False and level == "adr-lazy":
        return "adr"
    return level


@dataclass
class Verdict:
    """The oracle's judgement of one executed litmus case."""

    #: contract violations: ``{"kind": ..., "detail": ...}`` — empty
    #: means the model honored its persistency contract
    violations: List[Dict[str, str]] = field(default_factory=list)
    #: canonical outcome (corpus ``expected`` form): whether the cut
    #: fired, line counts, and the sorted ``[addr, domain, reason]``
    #: loss list.  Deliberately excludes timestamps so perf/timing
    #: changes don't invalidate a committed corpus.
    outcome: Dict[str, Any] = field(default_factory=dict)
    #: the contract the case was judged against
    contract: str = "none"

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def losses(self) -> List[List[Any]]:
        return list(self.outcome.get("lost", ()))

    def as_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "contract": self.contract,
                "violations": [dict(v) for v in self.violations],
                "outcome": dict(self.outcome)}


def run_case(case: LitmusCase, client: Optional[Any] = None
             ) -> Dict[str, Any]:
    """Execute one case; returns the ``run_stream`` result dict.

    With ``client`` (a :class:`~repro.serve.client.ServeClient`), the
    case is submitted as a stream job through the serve plane instead
    of running in-process — byte-identical results either way (the
    served/batch bit-identity contract).
    """
    plan = case.plan()
    if client is not None:
        reply = client.run_stream(case.target,
                                  [dict(item) for item in case.ops],
                                  overrides=dict(case.overrides),
                                  faults=plan.to_dict())
        return reply["stream"]
    return exec_core.run_stream(case.target, case.ops,
                                overrides=case.overrides, faults=plan)


def outcome_of(result: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical, timestamp-free outcome of an executed case."""
    persistence = (result.get("faults") or {}).get("persistence")
    if not persistence:
        return {"cut": False, "acked_lines": 0, "durable_lines": 0,
                "lost": []}
    return {
        "cut": True,
        "acked_lines": persistence["acked_lines"],
        "durable_lines": persistence["durable_lines"],
        "lost": sorted([entry["addr"], entry["domain"], entry["reason"]]
                       for entry in persistence["lost"]),
    }


def _expand(ops) -> List[Tuple[str, int]]:
    """Unit-op view of a program (count/stride sweeps unrolled)."""
    out: List[Tuple[str, int]] = []
    for item in ops:
        op = str(item.get("op", "read"))
        addr = int(item.get("addr", 0))
        count = int(item.get("count", 1))
        stride = int(item.get("stride", 64))
        for i in range(count):
            out.append((op, addr + i * stride))
    return out


def _cut_index(expanded: List[Tuple[str, int]],
               cut_at_request: int) -> Optional[int]:
    """Index of the unit op whose iMC request trips the cut trigger
    (``None`` when the program has too few request ops)."""
    seen = 0
    for index, (op, _addr) in enumerate(expanded):
        if op in REQUEST_OPS:
            seen += 1
            if seen == cut_at_request:
                return index
    return None


def _cache_must(expanded: List[Tuple[str, int]], cut_index: int
                ) -> Tuple[set, set]:
    """(must_durable, must_lost) line sets per the program-order rules
    in the module docstring."""
    last_ack: Dict[int, Tuple[int, str]] = {}
    flushed_lines = set()
    for index, (op, addr) in enumerate(expanded):
        line = addr - addr % _LINE
        if op in ("store", "write", "write_nt"):
            last_ack[line] = (index, op)
        elif op == "flush":
            flushed_lines.add(line)
    must_durable, must_lost = set(), set()
    for line, (store_index, op) in last_ack.items():
        if op != "store" or store_index >= cut_index:
            continue
        if line not in flushed_lines:
            must_lost.add(line)
            continue
        # a flush of the line after the store, then a fence, all
        # strictly before the cut op?
        flush_index = None
        for index in range(store_index + 1, cut_index):
            op_i, addr_i = expanded[index]
            line_i = addr_i - addr_i % _LINE
            if flush_index is None and op_i == "flush" and line_i == line:
                flush_index = index
            elif flush_index is not None and op_i == "fence":
                must_durable.add(line)
                break
    return must_durable, must_lost


def check(case: LitmusCase, result: Mapping[str, Any]) -> Verdict:
    """Judge an executed case against its target's contract."""
    contract = contract_for(case.target, case.overrides)
    verdict = Verdict(outcome=outcome_of(result), contract=contract)
    violations = verdict.violations
    persistence = (result.get("faults") or {}).get("persistence")
    expanded = _expand(case.ops)
    cut_index = _cut_index(expanded, case.cut_at_request)

    if contract == "none":
        # no persistency (or unmapped cut ordinals): structural only
        if persistence:
            for problem in validate_report(persistence):
                violations.append({"kind": "invalid_report",
                                   "detail": problem})
        return verdict

    if cut_index is None:
        if persistence:
            violations.append({
                "kind": "unexpected_cut",
                "detail": f"cut ordinal {case.cut_at_request} exceeds "
                          f"the program's {case.request_ops} request "
                          f"ops, yet a cut triggered"})
        return verdict
    if not persistence:
        violations.append({
            "kind": "missing_cut",
            "detail": f"cut armed at request {case.cut_at_request} "
                      f"(op index {cut_index}) never triggered"})
        return verdict

    problems = validate_report(persistence)
    if problems:
        violations.extend({"kind": "invalid_report", "detail": p}
                          for p in problems)
        return verdict

    for entry in persistence["lost"]:
        domain, reason = entry["domain"], entry["reason"]
        where = f"line 0x{entry['addr']:x}"
        if domain == "wpq":
            if contract == "adr":
                violations.append({
                    "kind": "wpq_loss",
                    "detail": f"{where}: WPQ-acknowledged write lost "
                              f"({reason}) — ADR must drain the WPQ"})
            elif reason != "lazy_dirty":
                violations.append({
                    "kind": "wpq_loss_reason",
                    "detail": f"{where}: WPQ loss with reason {reason!r} "
                              f"(only lazy_dirty is legal)"})
        elif domain == "lazy" and reason != "not_written_back":
            violations.append({
                "kind": "lazy_loss_reason",
                "detail": f"{where}: lazy loss with reason {reason!r}"})
    if contract == "adr" and persistence["by_domain"].get("lazy"):
        violations.append({
            "kind": "lazy_ack_without_lazy_cache",
            "detail": "lazy-domain acknowledgements on a target whose "
                      "Lazy cache is disabled"})

    if not persistence.get("saturated"):
        must_durable, must_lost = _cache_must(expanded, cut_index)
        lost_cache = {entry["addr"] for entry in persistence["lost"]
                      if entry["domain"] == "cache"}
        for line in sorted(must_durable & lost_cache):
            violations.append({
                "kind": "must_durable_lost",
                "detail": f"line 0x{line:x}: store+flush+fence all "
                          f"completed before the cut, yet reported lost"})
        for line in sorted(must_lost - lost_cache):
            violations.append({
                "kind": "must_lost_durable",
                "detail": f"line 0x{line:x}: cached store never flushed, "
                          f"yet not reported lost"})
    return verdict
