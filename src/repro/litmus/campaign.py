"""The litmus campaign driver: thousands of seeded cases per run.

Case seeds derive from one campaign seed
(:func:`repro.common.rng.make_rng`, stream ``litmus-campaign``), and
targets round-robin over the fuzzed set, so one integer reproduces the
whole campaign bit-for-bit.  Execution modes:

* **serial** — in-process, the default;
* **parallel** (``workers > 1``) — cases are batched into child
  processes driven by the same crash-tolerant scheme as the experiment
  runner (:mod:`repro.experiments.runner`): per-batch watchdog
  deadline, exponential-backoff retries, quarantine after the retry
  budget — a hung or crashed simulator build loses one batch, never
  the campaign;
* **thin client** — every case is submitted as a stream job through a
  running ``repro-serve`` daemon, exercising the serve plane as
  fuzzing infrastructure.

Campaign counters ride a real
:class:`~repro.instrument.InstrumentBus` (``litmus.cases``,
``litmus.violations``, …) whose snapshot lands in the report, and
progress frames flow through an attached
:class:`~repro.progress.ProgressReporter` (simulated time = cumulative
``sim_end_ps`` across finished cases).
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.rng import make_rng
from repro.experiments.exec import (BACKOFF_S, EXIT_ALL_FAILED, EXIT_OK,
                                    EXIT_PARTIAL, _mp_context)
from repro.instrument import InstrumentBus
from repro.litmus.oracle import check, outcome_of, run_case
from repro.litmus.program import DEFAULT_TARGETS, LitmusCase, random_case

#: campaign-report document version
LITMUS_CAMPAIGN_SCHEMA = "repro.litmus-campaign/1"

#: CLIs return this when the oracle caught a contract violation
EXIT_VIOLATION = 3

#: cases per watchdogged child batch (small enough that losing a
#: quarantined batch costs little, large enough to amortize the fork)
_BATCH = 25

#: cap on violation/loss-example payloads carried in the report
_MAX_EXAMPLES = 20


class _BusView:
    """Adapter letting a ProgressReporter snapshot the campaign bus."""

    def __init__(self, bus: InstrumentBus) -> None:
        self._bus = bus

    def instrument_snapshot(self) -> Dict[str, Any]:
        return self._bus.snapshot()


def _case_for(campaign_seed: int, index: int, case_seed: int,
              targets: Sequence[str]) -> LitmusCase:
    target = targets[index % len(targets)]
    case = random_case(case_seed, target=target)
    return LitmusCase(
        name=f"campaign-{campaign_seed}-{index}-{target}",
        target=case.target, overrides=case.overrides, ops=case.ops,
        cut_at_request=case.cut_at_request, seed=case.seed)


def _run_one(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one case doc; JSON-safe per-case record."""
    case = LitmusCase.from_dict(doc)
    result = run_case(case)
    verdict = check(case, result)
    return {
        "case": doc,
        "ok": verdict.ok,
        "violations": [dict(v) for v in verdict.violations],
        "outcome": dict(verdict.outcome),
        "contract": verdict.contract,
        "sim_end_ps": int(result.get("sim_end_ps", 0)),
    }


def _litmus_child(conn, batch: List[Dict[str, Any]]) -> None:
    """Child-process entry: run one batch, ship records over the pipe."""
    try:
        conn.send(("ok", [_run_one(doc) for doc in batch]))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _run_parallel(batches: List[List[Dict[str, Any]]], workers: int,
                  timeout_s: float, retries: int
                  ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Watchdogged batch fan-out; returns (records, failures).

    Mirrors the experiment runner's crash tolerance: a batch that hangs
    past ``timeout_s`` is terminated, a crashed/hung batch is relaunched
    with exponential backoff up to ``retries`` extra attempts, then
    quarantined (its cases are reported failed, the campaign goes on).
    """
    import multiprocessing.connection

    ctx = _mp_context()
    pending = deque((index, 1, 0.0) for index in range(len(batches)))
    running: Dict[Any, Tuple[int, int, Any, float]] = {}
    records: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []

    def _quarantine(index: int, attempt: int, error: str) -> None:
        for doc in batches[index]:
            failures.append({"case": doc, "error": error,
                             "attempts": attempt})

    while pending or running:
        now = time.time()
        launched = False
        for _ in range(len(pending)):
            if len(running) >= workers:
                break
            index, attempt, not_before = pending.popleft()
            if now < not_before:
                pending.append((index, attempt, not_before))
                continue
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_litmus_child,
                               args=(child, batches[index]), daemon=True)
            proc.start()
            child.close()
            running[parent] = (index, attempt, proc,
                               time.time() + timeout_s)
            launched = True
        if not running:
            if pending and not launched:
                time.sleep(min(BACKOFF_S,
                               max(0.0, min(nb for _, _, nb in pending)
                                   - time.time())) or 0.05)
            continue
        deadline = min(entry[3] for entry in running.values())
        ready = multiprocessing.connection.wait(
            list(running), timeout=max(0.0, deadline - time.time()))
        now = time.time()
        settled = list(ready)
        settled.extend(conn for conn, entry in running.items()
                       if conn not in ready and now >= entry[3])
        for conn in settled:
            index, attempt, proc, _dl = running.pop(conn)
            outcome: Tuple[str, Any]
            if conn in ready:
                try:
                    outcome = conn.recv()
                except EOFError:
                    outcome = ("error",
                               f"worker died (exit {proc.exitcode})")
            else:
                outcome = ("error", f"batch timed out after {timeout_s}s")
                proc.terminate()
            conn.close()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
            status, payload = outcome
            if status == "ok":
                records.extend(payload)
            elif attempt <= retries:
                backoff = BACKOFF_S * 2 ** (attempt - 1)
                pending.append((index, attempt + 1,
                                time.time() + backoff))
            else:
                _quarantine(index, attempt, str(payload))
    return records, failures


def run_campaign(seed: int, cases: int,
                 targets: Sequence[str] = DEFAULT_TARGETS,
                 workers: int = 1,
                 timeout_s: float = 120.0,
                 retries: int = 1,
                 client: Optional[Any] = None,
                 progress: Optional[Any] = None,
                 bus: Optional[InstrumentBus] = None) -> Dict[str, Any]:
    """Run a seeded litmus campaign; returns the campaign report.

    ``client`` switches every case to thin-client execution through a
    ``repro-serve`` daemon (serial; the daemon owns parallelism).
    ``progress`` is a live :class:`~repro.progress.ProgressReporter`.
    """
    bus = bus if bus is not None else InstrumentBus()
    c_cases = bus.counter("litmus.cases")
    c_ok = bus.counter("litmus.ok")
    c_violations = bus.counter("litmus.violations")
    c_losses = bus.counter("litmus.losses")
    c_cuts = bus.counter("litmus.cuts")
    c_failed = bus.counter("litmus.failed")

    rng = make_rng(seed, "litmus-campaign")
    case_docs = [
        _case_for(seed, index, rng.getrandbits(32), targets).to_dict()
        for index in range(cases)]

    if progress is not None:
        progress.attach(_BusView(bus))
        progress.phase("litmus-campaign")

    records: List[Dict[str, Any]]
    failures: List[Dict[str, Any]]
    if workers > 1 and client is None:
        batches = [case_docs[start:start + _BATCH]
                   for start in range(0, len(case_docs), _BATCH)]
        records, failures = _run_parallel(batches, workers,
                                          timeout_s, retries)
    else:
        records, failures = [], []
        sim_total = 0
        for doc in case_docs:
            if client is not None:
                case = LitmusCase.from_dict(doc)
                try:
                    result = run_case(case, client=client)
                except Exception:
                    failures.append({"case": doc,
                                     "error": traceback.format_exc(),
                                     "attempts": 1})
                    continue
                verdict = check(case, result)
                record = {"case": doc, "ok": verdict.ok,
                          "violations": [dict(v)
                                         for v in verdict.violations],
                          "outcome": dict(verdict.outcome),
                          "contract": verdict.contract,
                          "sim_end_ps": int(result.get("sim_end_ps", 0))}
            else:
                try:
                    record = _run_one(doc)
                except Exception:
                    failures.append({"case": doc,
                                     "error": traceback.format_exc(),
                                     "attempts": 1})
                    continue
            records.append(record)
            sim_total += record["sim_end_ps"]
            if progress is not None:
                progress.tick(sim_total)

    violations: List[Dict[str, Any]] = []
    loss_families: Dict[str, int] = {}
    loss_examples: List[Dict[str, Any]] = []
    seen_families = set()
    for record in records:
        c_cases.add()
        if record["ok"]:
            c_ok.add()
        else:
            c_violations.add()
            for violation in record["violations"]:
                if len(violations) < _MAX_EXAMPLES:
                    violations.append({"name": record["case"]["name"],
                                       "case": record["case"],
                                       **violation})
        outcome = record["outcome"]
        if outcome.get("cut"):
            c_cuts.add()
        for entry in outcome.get("lost", ()):
            c_losses.add()
            family = (f"{record['case']['target']}/{entry[1]}/"
                      f"{entry[2]}")
            loss_families[family] = loss_families.get(family, 0) + 1
            if family not in seen_families \
                    and len(loss_examples) < _MAX_EXAMPLES:
                seen_families.add(family)
                example = dict(record["case"])
                example["expected"] = dict(outcome)
                loss_examples.append({"family": family, "case": example})
    for _failure in failures:
        c_failed.add()

    if progress is not None:
        progress.finalize()

    report = {
        "schema": LITMUS_CAMPAIGN_SCHEMA,
        "seed": seed,
        "cases": cases,
        "targets": list(targets),
        "workers": workers,
        "completed": len(records),
        "failed": len(failures),
        "violation_count": sum(1 for r in records if not r["ok"]),
        "violations": violations,
        "loss_families": loss_families,
        "loss_examples": loss_examples,
        "failures": [{"name": f["case"]["name"], "error": f["error"],
                      "attempts": f["attempts"]} for f in failures],
        "counters": bus.snapshot(),
    }
    report["exit_code"] = campaign_exit_code(report)
    return report


def campaign_exit_code(report: Dict[str, Any]) -> int:
    """3 on any oracle violation, 1 when nothing completed, 4 on a
    partial campaign, 0 when everything ran clean."""
    if report.get("violation_count"):
        return EXIT_VIOLATION
    if report.get("cases") and not report.get("completed"):
        return EXIT_ALL_FAILED
    if report.get("failed"):
        return EXIT_PARTIAL
    return EXIT_OK
