"""The litmus corpus: known-outcome cases CI replays as a gate.

A corpus is a ``repro.litmus/1`` document holding litmus cases with
their ``expected`` canonical outcomes (see
:func:`repro.litmus.oracle.outcome_of` — timestamp-free, so timing
and performance changes don't invalidate it; only *persistency*
semantics do).  :func:`replay_corpus` re-executes every case and
reports drift: an outcome change, or a fresh oracle violation.  Any
drift means the model's persistency behavior moved — exactly what a
reviewer must see before it lands.

The committed corpus lives at ``corpus/litmus.json`` and includes the
vans-lazy loss family (an acknowledged-write loss through the Lazy
cache), so the Section V-C betrayal scenario is pinned forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.common.errors import FaultPlanError
from repro.litmus.oracle import check, outcome_of, run_case
from repro.litmus.program import LITMUS_SCHEMA, LitmusCase, validate_case

#: the corpus document shares the case schema version
CORPUS_SCHEMA = LITMUS_SCHEMA


def validate_corpus(doc: Mapping[str, Any]) -> List[str]:
    """Structural check of a corpus document; empty when valid."""
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return ["corpus document is not a mapping"]
    if doc.get("schema") != CORPUS_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{CORPUS_SCHEMA!r}")
    cases = doc.get("cases")
    if not isinstance(cases, list):
        return problems + ["missing or non-list 'cases'"]
    names = set()
    for index, entry in enumerate(cases):
        if not isinstance(entry, Mapping):
            problems.append(f"cases[{index}] is not a mapping")
            continue
        problems.extend(f"cases[{index}]: {p}" for p in validate_case(entry))
        name = entry.get("name")
        if name in names:
            problems.append(f"cases[{index}]: duplicate name {name!r}")
        names.add(name)
        expected = entry.get("expected")
        if not isinstance(expected, Mapping):
            problems.append(f"cases[{index}] missing 'expected' outcome")
        else:
            for key in ("cut", "acked_lines", "durable_lines", "lost"):
                if key not in expected:
                    problems.append(f"cases[{index}].expected missing "
                                    f"{key!r}")
    return problems


def load_corpus(path: Union[str, Path]) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    problems = validate_corpus(doc)
    if problems:
        raise FaultPlanError(f"invalid litmus corpus {path}: "
                             + "; ".join(problems))
    return doc


def save_corpus(path: Union[str, Path],
                cases: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Write case docs (each with ``expected``) as a corpus file."""
    doc = {"schema": CORPUS_SCHEMA, "cases": list(cases)}
    problems = validate_corpus(doc)
    if problems:
        raise FaultPlanError("refusing to save invalid corpus: "
                             + "; ".join(problems))
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True)
                          + "\n")
    return doc


def case_entry(case: LitmusCase,
               client: Optional[Any] = None) -> Dict[str, Any]:
    """Run ``case`` and stamp its document with the observed outcome
    (the form :func:`replay_corpus` later re-checks)."""
    verdict = check(case, run_case(case, client=client))
    entry = case.to_dict()
    entry["expected"] = dict(verdict.outcome)
    return entry


def replay_corpus(doc: Mapping[str, Any],
                  client: Optional[Any] = None) -> Dict[str, Any]:
    """Re-execute every corpus case; returns the drift report.

    ``{"checked": n, "drift": [...], "violations": [...]}`` — drift
    entries name the case and describe the expected vs. observed
    outcome; violations are fresh oracle failures.  An empty drift
    *and* violation list is the CI gate's pass condition.
    """
    drift: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    checked = 0
    for entry in doc.get("cases", ()):
        case = LitmusCase.from_dict(entry)
        checked += 1
        result = run_case(case, client=client)
        verdict = check(case, result)
        observed = outcome_of(result)
        expected = {key: entry["expected"].get(key)
                    for key in ("cut", "acked_lines", "durable_lines",
                                "lost")}
        normalized = dict(observed)
        normalized["lost"] = [list(item) for item in observed["lost"]]
        expected["lost"] = [list(item) for item in (expected["lost"] or [])]
        if normalized != expected:
            drift.append({"name": case.name, "expected": expected,
                          "observed": normalized})
        for violation in verdict.violations:
            violations.append({"name": case.name, **violation})
    return {"checked": checked, "drift": drift, "violations": violations}
