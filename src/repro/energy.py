"""Energy accounting over the simulator's event counters.

An extension beyond the paper's evaluation: per-operation energy costs
applied to the counters every component already maintains.  The
constants are order-of-magnitude figures from the public 3D-XPoint /
DDR4 literature (documented per field); the *relative* comparisons —
write energy dominating read energy, wear migrations costing full-block
rewrites, the Lazy cache trimming media traffic — are the meaningful
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.vans.system import VansSystem

PJ = 1e-12


@dataclass(frozen=True)
class EnergyCosts:
    """Energy per event, in picojoules."""

    #: 3D-XPoint 256B array read / program (PCM-class cells)
    media_read_pj: float = 2_000.0
    media_write_pj: float = 15_000.0
    #: one on-DIMM DDR4 64B access (activate amortized in)
    dram_access_pj: float = 400.0
    #: SRAM structures (RMW hit, LSQ slot)
    sram_op_pj: float = 20.0
    #: controller engine op (scheduling, ECC, RMW merge)
    engine_op_pj: float = 150.0
    #: one 64KB wear-leveling migration = 256 reads + 256 writes
    def migration_pj(self) -> float:
        return 256 * (self.media_read_pj + self.media_write_pj)


@dataclass
class EnergyReport:
    """Joules by component, plus totals."""

    by_component: Dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return sum(self.by_component.values())

    def fraction(self, component: str) -> float:
        total = self.total_j
        return self.by_component.get(component, 0.0) / total if total else 0.0

    def render(self) -> str:
        lines = ["energy breakdown:"]
        for name, joules in sorted(self.by_component.items(),
                                   key=lambda kv: -kv[1]):
            lines.append(f"  {name:<16} {joules * 1e6:10.3f} uJ "
                         f"({self.fraction(name) * 100:5.1f}%)")
        lines.append(f"  {'total':<16} {self.total_j * 1e6:10.3f} uJ")
        return "\n".join(lines)


def energy_of(system: VansSystem,
              costs: EnergyCosts = EnergyCosts()) -> EnergyReport:
    """Compute the energy a VansSystem's activity so far consumed."""
    counters = system.counters()
    report = EnergyReport()

    media_reads = counters.get("media.reads", 0)
    media_writes = counters.get("media.writes", 0)
    report.by_component["media-read"] = media_reads * costs.media_read_pj * PJ
    report.by_component["media-write"] = (media_writes
                                          * costs.media_write_pj * PJ)

    dram_ops = counters.get("dram.reads", 0) + counters.get("dram.writes", 0)
    report.by_component["on-dimm-dram"] = dram_ops * costs.dram_access_pj * PJ

    sram_ops = counters.get("dimm.rmw_hits", 0) + counters.get(
        "lazy.absorbed_writes", 0)
    report.by_component["sram"] = sram_ops * costs.sram_op_pj * PJ

    engine_ops = (counters.get("dimm.combined_write_ops", 0)
                  + counters.get("dimm.partial_write_ops", 0)
                  + counters.get("dimm.rmw_misses", 0))
    report.by_component["engine"] = engine_ops * costs.engine_op_pj * PJ

    migrations = counters.get("wear.migrations", 0)
    report.by_component["wear-migration"] = (migrations
                                             * costs.migration_pj() * PJ)
    return report
