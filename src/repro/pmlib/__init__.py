"""pmlib — tiny persistent data structures over the functional memory.

App Direct mode's whole point (Section II-A) is that software can build
crash-recoverable structures from loads/stores + clwb/fence.  This
package provides reference implementations whose recovery invariants the
test suite checks under exhaustive crash injection — and an intentionally
broken variant demonstrating that the harness catches real persistence
bugs.
"""

from repro.pmlib.log import PersistentLog, UnorderedLog, LogRecovery
from repro.pmlib.hashmap import PersistentHashMap

__all__ = ["PersistentLog", "UnorderedLog", "LogRecovery",
           "PersistentHashMap"]
