"""Crash-consistent hash map with undo logging.

The PMDK-style persistent hash map the paper's Figure 13 workloads
model, implemented for real over :class:`FunctionalMemory`.  Updates in
place need more than ordering: an interrupted overwrite must roll
*back*, so each mutation first persists an undo record (address + old
value), then mutates, then invalidates the record — the classic
undo-log protocol (NV-Heaps/Mnemosyne lineage, the paper's refs [9] and
[57]).

Layout (64B lines):
  base + 0:                 undo record {addr, old, valid} or None
  base + 64 * (1+b):        bucket b's value line

Recovery: if a valid undo record exists, the crash hit mid-transaction —
roll the target line back and invalidate the record.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.request import CACHE_LINE
from repro.vans.functional import FunctionalMemory


class PersistentHashMap:
    """Fixed-bucket persistent map: int keys -> values."""

    def __init__(self, memory: FunctionalMemory, nbuckets: int = 64,
                 base_addr: int = 0) -> None:
        self.memory = memory
        self.nbuckets = nbuckets
        self.base = base_addr
        self.now = 0
        # durably clear the undo slot
        self.now = memory.store(self._undo_addr(), None, self.now)
        self.now = memory.fence(self.now)

    def _undo_addr(self) -> int:
        return self.base

    def _bucket_addr(self, key: int) -> int:
        return self.base + (1 + key % self.nbuckets) * CACHE_LINE

    # -- mutation, decomposed into crash-injectable steps -----------------

    def put_steps(self, key: int, value):
        """Undo-log update protocol; yields after each persist point."""
        mem = self.memory
        addr = self._bucket_addr(key)
        old, _ = mem.load(addr, self.now)

        # 1. persist the undo record before touching the data
        self.now = mem.store(self._undo_addr(),
                             {"addr": addr, "old": old, "valid": True},
                             self.now)
        self.now = mem.fence(self.now)
        yield "undo-persisted"

        # 2. mutate in place
        self.now = mem.store(addr, (key, value), self.now)
        self.now = mem.fence(self.now)
        yield "data-persisted"

        # 3. invalidate the undo record (commit point)
        self.now = mem.store(self._undo_addr(), None, self.now)
        self.now = mem.fence(self.now)
        yield "committed"

    def put(self, key: int, value) -> None:
        for _ in self.put_steps(key, value):
            pass

    def get(self, key: int):
        cell, self.now = self.memory.load(self._bucket_addr(key), self.now)
        if cell is None:
            return None
        stored_key, value = cell
        return value if stored_key == key else None

    # -- recovery -----------------------------------------------------------

    @classmethod
    def recover(cls, memory: FunctionalMemory, nbuckets: int = 64,
                base_addr: int = 0) -> "PersistentHashMap":
        """Roll back any in-flight transaction, then reopen the map."""
        undo = memory.persisted_value(base_addr)
        if undo is not None and undo.get("valid"):
            # interrupted mid-update: restore the old value durably
            now = memory.store(undo["addr"], undo["old"], 0)
            now = memory.fence(now)
            now = memory.store(base_addr, None, now)
            memory.fence(now)
        recovered = cls.__new__(cls)
        recovered.memory = memory
        recovered.nbuckets = nbuckets
        recovered.base = base_addr
        recovered.now = 0
        return recovered

    def persisted_get(self, key: int):
        """What a post-crash reader would see for ``key``."""
        cell = self.memory.persisted_value(self._bucket_addr(key))
        if cell is None:
            return None
        stored_key, value = cell
        return value if stored_key == key else None
