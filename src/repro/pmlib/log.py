"""Crash-consistent append-only log.

Layout (one 64B line each): a header holding the committed entry count,
then one line per entry.  The append protocol is the standard
persistent-memory idiom:

1. nt-store the entry data;
2. fence                      — entry durable before it is reachable;
3. nt-store the new count;
4. fence                      — commit point.

Recovery reads the header and trusts exactly ``count`` entries.  The
invariant: after a crash at *any* point, recovery sees some prefix of
the committed appends, and every entry it sees is intact.

``UnorderedLog`` omits step 2 (a classic bug): the count can persist
while its entry is still in a write-combining buffer, so recovery can
observe a committed-but-garbage entry — the crash-injection tests
demonstrate the harness catches it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.request import CACHE_LINE
from repro.vans.functional import FunctionalMemory


class LogRecovery:
    """Result of recovering a log from persisted state."""

    def __init__(self, count: int, entries: List[object]) -> None:
        self.count = count
        self.entries = entries

    @property
    def torn(self) -> bool:
        """True when a committed entry is missing/garbage."""
        return any(e is None for e in self.entries)


class PersistentLog:
    """Correctly ordered append-only log."""

    #: fence between entry persist and count update (the correctness knob)
    ORDERED = True

    def __init__(self, memory: FunctionalMemory, base_addr: int = 0) -> None:
        self.memory = memory
        self.base = base_addr
        self.now = 0
        self._count = 0
        # initialize the header durably
        self.now = self.memory.store(self._header_addr(), 0, self.now)
        self.now = self.memory.fence(self.now)

    def _header_addr(self) -> int:
        return self.base

    def _entry_addr(self, index: int) -> int:
        return self.base + (1 + index) * CACHE_LINE

    # -- append, decomposed into crash-injectable steps -------------------

    def append_steps(self, value):
        """Yield after each primitive persistence operation, so tests can
        crash between any two steps."""
        index = self._count
        self.now = self.memory.store(self._entry_addr(index), value, self.now)
        yield "entry-stored"
        if self.ORDERED:
            self.now = self.memory.fence(self.now)
            yield "entry-fenced"
        self.now = self.memory.store(self._header_addr(), index + 1, self.now)
        yield "count-stored"
        self.now = self.memory.fence(self.now)
        self._count = index + 1
        yield "committed"

    def append(self, value) -> None:
        for _ in self.append_steps(value):
            pass

    @property
    def committed(self) -> int:
        return self._count

    # -- recovery -----------------------------------------------------------

    @classmethod
    def recover(cls, memory: FunctionalMemory, base_addr: int = 0
                ) -> LogRecovery:
        count = memory.persisted_value(base_addr) or 0
        entries = [
            memory.persisted_value(base_addr + (1 + i) * CACHE_LINE)
            for i in range(count)
        ]
        return LogRecovery(count, entries)


class UnorderedLog(PersistentLog):
    """The buggy variant: no fence between entry and count stores."""

    ORDERED = False
