"""LENS probers: buffer, policy, performance, and address mapping."""

from repro.lens.probers.buffer import BufferProber, BufferReport
from repro.lens.probers.policy import PolicyProber, PolicyReport
from repro.lens.probers.performance import PerformanceProber, PerformanceReport
from repro.lens.probers.mapping import MappingProber, MappingReport

__all__ = [
    "BufferProber",
    "BufferReport",
    "PolicyProber",
    "PolicyReport",
    "PerformanceProber",
    "PerformanceReport",
    "MappingProber",
    "MappingReport",
]
