"""Policy prober (Section III-A/III-D): wear-leveling data migration and
multi-DIMM interleaving.

* Migration latency/frequency — overwrite a 256B region; a migration
  stalls subsequent writes, showing as a >10x tail.  The tail magnitude
  estimates the migration latency; the mean gap between tails is the
  migration frequency.
* Migration granularity — repeat at growing region sizes with constant
  total volume; the tail frequency collapses once the region spans more
  than one wear-leveling block (64KB).
* Interleaving — compare sequential-write execution times on interleaved
  vs non-interleaved systems, and recover the interleave granularity from
  the periodic pattern in the interleaved curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.common.units import KIB, US
from repro.engine.stats import LatencySeries
from repro.lens.analysis import detect_drop, detect_period, mean_tail_gap
from repro.lens.microbench.overwrite import Overwrite, OverwriteResult
from repro.lens.microbench.stride import Stride
from repro.target import TargetSystem

DEFAULT_TAIL_REGIONS = [256, 1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB,
                        128 * KIB, 256 * KIB, 512 * KIB]


@dataclass
class PolicyReport:
    """Wear-leveling and interleaving findings."""

    migration_latency_us: float = 0.0
    migration_interval_iters: float = 0.0
    migration_granularity: int = 0
    interleave_granularity: int = 0
    interleave_speedup: float = 0.0
    overwrite_result: Optional[OverwriteResult] = None
    tail_scan: Optional[LatencySeries] = None
    seq_interleaved: Optional[LatencySeries] = None
    seq_single: Optional[LatencySeries] = None


class PolicyProber:
    """Runs overwrite/stride variants and infers control policies."""

    def __init__(
        self,
        target_factory: Callable[[], TargetSystem],
        interleaved_factory: Optional[Callable[[], TargetSystem]] = None,
        tail_regions: Sequence[int] = tuple(DEFAULT_TAIL_REGIONS),
        overwrite_iterations: int = 40000,
        tail_scan_bytes: int = 6 * 1024 * 1024,
    ) -> None:
        self.target_factory = target_factory
        self.interleaved_factory = interleaved_factory
        self.tail_regions = list(tail_regions)
        self.overwrite_iterations = overwrite_iterations
        self.tail_scan_bytes = tail_scan_bytes
        self.overwrite = Overwrite()
        self.stride = Stride()

    def probe_migration(self) -> OverwriteResult:
        """Fig. 7b: per-iteration 256B overwrite times."""
        target = self.target_factory()
        return self.overwrite.run(target, region_bytes=256,
                                  iterations=self.overwrite_iterations)

    def probe_migration_granularity(self) -> LatencySeries:
        """Fig. 7c: tail frequency vs overwrite region size."""
        return self.overwrite.tail_scan(
            self.target_factory, self.tail_regions,
            total_bytes=self.tail_scan_bytes,
        )

    def probe_interleaving(self, sizes: Optional[Sequence[int]] = None):
        """Fig. 7a: sequential-write times, interleaved vs single DIMM.

        ``sizes`` must be uniformly spaced for period detection; defaults
        to 512B steps up to 16KB.
        """
        if self.interleaved_factory is None:
            return None, None
        sizes = list(sizes or range(512, 16 * KIB + 1, 512))
        single = self.stride.sequential_write_times_us(self.target_factory, sizes)
        inter = self.stride.sequential_write_times_us(self.interleaved_factory,
                                                      sizes)
        return single, inter

    def run(self) -> PolicyReport:
        report = PolicyReport()

        result = self.probe_migration()
        report.overwrite_result = result
        tails = result.tail_indices()
        if tails:
            report.migration_latency_us = result.tail_magnitude_ns() / 1000.0
            report.migration_interval_iters = mean_tail_gap(tails) or float(tails[0])

        report.tail_scan = self.probe_migration_granularity()
        report.migration_granularity = detect_drop(report.tail_scan)

        single, inter = self.probe_interleaving()
        if single is not None and inter is not None:
            report.seq_single = single
            report.seq_interleaved = inter
            report.interleave_granularity = detect_period(inter)
            total_single = single.values[-1]
            total_inter = inter.values[-1]
            if total_inter > 0:
                report.interleave_speedup = total_single / total_inter
        return report
