"""Address-mapping prober (the Table I "Addr mapping" capability).

DRAMA [43] recovers DRAM address functions from timing; LENS extends
the idea to NVRAM systems.  The probe here recovers the *DIMM-select*
function of an interleaved memory: for each address bit k, it issues
pairs of concurrent write bursts to addresses differing only in bit k.
If the pair maps to the same DIMM the bursts serialize on that DIMM's
queues; if bit k selects different DIMMs they proceed in parallel and
the pair completes markedly faster.  The lowest bit showing parallelism
is the interleave boundary: granularity = 2^k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.engine.request import CACHE_LINE
from repro.target import TargetSystem


@dataclass
class MappingReport:
    """Per-bit parallelism speedups and the inferred interleave bits."""

    #: bit index -> pair speedup (same-DIMM time / differing-bit time)
    bit_speedup: Dict[int, float] = field(default_factory=dict)
    #: bits that select the DIMM (speedup above threshold)
    dimm_select_bits: List[int] = field(default_factory=list)

    @property
    def interleave_granularity(self) -> int:
        """2^(lowest DIMM-select bit), or 0 when none found."""
        if not self.dimm_select_bits:
            return 0
        return 1 << min(self.dimm_select_bits)


class MappingProber:
    """Recover the DIMM-select address bits from write-pair timing."""

    def __init__(self, target_factory: Callable[[], TargetSystem],
                 min_bit: int = 8, max_bit: int = 20,
                 burst_lines: int = 24, threshold: float = 1.2) -> None:
        self.target_factory = target_factory
        self.min_bit = min_bit
        self.max_bit = max_bit
        self.burst_lines = burst_lines
        self.threshold = threshold

    def _pair_time(self, addr_a: int, addr_b: int) -> int:
        """Time to interleave two write bursts at the two addresses,
        fence-drained (the drain exposes whose queues absorbed them)."""
        target = self.target_factory()
        now = 0
        for i in range(self.burst_lines):
            now = target.write(addr_a + i * CACHE_LINE, now)
            now = target.write(addr_b + i * CACHE_LINE, now)
        return target.fence(now)

    def run(self) -> MappingReport:
        report = MappingReport()
        base = 0
        same = self._pair_time(base, base + self.burst_lines * CACHE_LINE)
        for bit in range(self.min_bit, self.max_bit + 1):
            differing = self._pair_time(base, base | (1 << bit))
            speedup = same / differing if differing else 0.0
            report.bit_speedup[bit] = speedup
            if speedup >= self.threshold:
                report.dimm_select_bits.append(bit)
        return report
