"""Buffer prober (Section III-A): on-DIMM buffer capacity, entry size,
and hierarchy organization.

* Capacities — pointer-chasing latency sweep with 64B PC-Blocks; each
  inflection point in the curve is one buffer overflowing (16KB and 16MB
  for reads = RMW and AIT buffers; 512B and 4KB for writes = WPQ and
  LSQ).
* Entry sizes — amplification-score knees across PC-Block sizes.
* Hierarchy — the read-after-write test: independent buffers would
  fast-forward dirty data in parallel, making RaW *faster* than R+W at
  the larger buffer's capacity; an inclusive hierarchy shows no such
  speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.common.units import KIB, MIB
from repro.engine.stats import LatencySeries
from repro.lens.analysis import excess_knee, find_inflections
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.target import TargetSystem

#: default doubling sweep for read capacities (reaches past 16MB)
DEFAULT_READ_REGIONS = [
    1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB,
    128 * KIB, 256 * KIB, 512 * KIB, 1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB,
    16 * MIB, 32 * MIB, 64 * MIB, 128 * MIB,
]
#: default sweep for write capacities (the queues are small)
DEFAULT_WRITE_REGIONS = [
    128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB,
    32 * KIB, 64 * KIB, 128 * KIB,
]
DEFAULT_BLOCKS = [64, 128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB,
                  8 * KIB, 16 * KIB]


@dataclass
class BufferReport:
    """Everything the buffer prober inferred."""

    read_capacities: List[int] = field(default_factory=list)
    write_capacities: List[int] = field(default_factory=list)
    read_entry_sizes: List[int] = field(default_factory=list)
    write_entry_sizes: List[int] = field(default_factory=list)
    hierarchy: str = "unknown"  # "inclusive" | "independent"
    read_curve: Optional[LatencySeries] = None
    write_curve: Optional[LatencySeries] = None
    raw_curve: Optional[LatencySeries] = None
    rpw_curve: Optional[LatencySeries] = None

    @property
    def levels(self) -> int:
        """Number of distinct read buffers detected."""
        return len(self.read_capacities)


class BufferProber:
    """Runs the pointer-chasing variants and infers buffer structure."""

    def __init__(
        self,
        target_factory: Callable[[], TargetSystem],
        read_regions: Sequence[int] = tuple(DEFAULT_READ_REGIONS),
        write_regions: Sequence[int] = tuple(DEFAULT_WRITE_REGIONS),
        blocks: Sequence[int] = tuple(DEFAULT_BLOCKS),
        seed: int = 0,
    ) -> None:
        self.target_factory = target_factory
        self.read_regions = list(read_regions)
        self.write_regions = list(write_regions)
        self.blocks = list(blocks)
        self.pc = PointerChasing(seed=seed)

    # -- capacities ------------------------------------------------------

    def probe_read_capacities(self) -> LatencySeries:
        return self.pc.latency_sweep(self.target_factory, self.read_regions,
                                     op="read")

    def probe_write_capacities(self) -> LatencySeries:
        series = LatencySeries("st-lat")
        for region in self.write_regions:
            target = self.target_factory()  # fresh queues per point
            series.add(region, self.pc.write_latency_ns(target, region))
        return series

    # -- entry sizes -----------------------------------------------------

    def probe_read_entry_sizes(self) -> List[int]:
        """Knees of the amplification excess at each buffer level.

        Level 1 (RMW): overflow region past 16KB but inside the AIT;
        level 2 (AIT): overflow region past 16MB.  Fit regions sit one
        level down; PC-Blocks stay well below the fit region so the fit
        case remains a valid all-hits baseline.
        """
        knees = []
        # Per-level knee thresholds: the first level's excess is flat
        # past its entry size but noisy (row-buffer effects), so a loose
        # 2.2x floor cut is right; the second level's excess halves with
        # every block doubling until the 4KB entry, so the cut must sit
        # below 2x floor to stop at the true knee.
        for overflow_region, fit_region, floor_factor in (
                (1 * MIB, 4 * KIB, 2.2), (64 * MIB, 1 * MIB, 1.5)):
            blocks = [b for b in self.blocks if b <= fit_region // 4]
            over = self.pc.block_sweep(self.target_factory, overflow_region,
                                       blocks, op="read")
            fit = self.pc.block_sweep(self.target_factory, fit_region,
                                      blocks, op="read")
            knees.append(excess_knee(over, fit, floor_factor=floor_factor))
        return knees

    def probe_write_entry_sizes(self, write_capacities: Sequence[int] = ()
                                ) -> List[int]:
        """Write-path granularities: WPQ flush size and LSQ combine size.

        The WPQ's flush granularity equals its ADR-protected capacity (an
        mfence flushes the whole 512B queue), so it is read off the
        write-capacity probe.  The LSQ's combine granularity shows as an
        amplification knee: once PC-Blocks reach 256B, stores arrive in
        fully combinable runs and the read-modify-write excess vanishes.
        """
        wpq_flush = int(write_capacities[0]) if write_capacities else 0
        over = self.pc.block_sweep(self.target_factory, 16 * KIB,
                                   self.blocks[:4], op="write")
        fit = self.pc.block_sweep(self.target_factory, 2 * KIB,
                                  self.blocks[:4], op="write")
        lsq_combine = excess_knee(over, fit)
        return [wpq_flush, lsq_combine]

    # -- hierarchy ---------------------------------------------------------

    def probe_hierarchy(self, regions: Optional[Sequence[int]] = None):
        """RaW vs R+W (Fig. 5c); returns (verdict, raw, rpw)."""
        regions = list(regions or [r for r in self.read_regions
                                   if r <= 32 * MIB])
        raw, rpw = self.pc.raw_sweep(self.target_factory, regions)
        # Fast-forwarding would make RaW < R+W at large regions; an
        # inclusive hierarchy keeps RaW >= R+W everywhere.
        large = [(a, b) for (x, a), (_, b) in zip(raw, rpw) if x >= 1 * MIB]
        if large and all(a >= 0.9 * b for a, b in large):
            verdict = "inclusive"
        else:
            verdict = "independent"
        return verdict, raw, rpw

    # -- everything --------------------------------------------------------

    def run(self, probe_hierarchy: bool = True) -> BufferReport:
        report = BufferReport()
        report.read_curve = self.probe_read_capacities()
        report.read_capacities = find_inflections(report.read_curve)
        report.write_curve = self.probe_write_capacities()
        report.write_capacities = find_inflections(report.write_curve)
        report.read_entry_sizes = self.probe_read_entry_sizes()
        report.write_entry_sizes = self.probe_write_entry_sizes(
            report.write_capacities
        )
        if probe_hierarchy:
            verdict, raw, rpw = self.probe_hierarchy()
            report.hierarchy = verdict
            report.raw_curve = raw
            report.rpw_curve = rpw
        return report
