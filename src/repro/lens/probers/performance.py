"""Performance prober (Section III-A): per-level latency and bandwidth.

Supports the other probers with quantitative estimates:

* per-buffer read bandwidth — stride reads with stride = the buffer's
  entry size over a region that fits the buffer (each entry touched
  once, so the level above cannot filter the traffic);
* per-buffer latency — solve the tier latencies out of pointer-chasing
  averages using the buffer-size-implied miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.common.units import KIB, MIB
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride
from repro.target import TargetSystem


@dataclass
class PerformanceReport:
    """Per-level performance estimates."""

    #: level name -> read latency estimate (ns per cache line)
    level_latency_ns: Dict[str, float] = field(default_factory=dict)
    #: level name -> streaming read bandwidth (GB/s)
    level_bandwidth_gbs: Dict[str, float] = field(default_factory=dict)


class PerformanceProber:
    """Measures latency/bandwidth of each identified buffer level."""

    def __init__(
        self,
        target_factory: Callable[[], TargetSystem],
        read_capacities: Sequence[int] = (16 * KIB, 16 * MIB),
        entry_sizes: Sequence[int] = (256, 4 * KIB),
        seed: int = 0,
    ) -> None:
        self.target_factory = target_factory
        self.read_capacities = list(read_capacities)
        self.entry_sizes = list(entry_sizes)
        self.pc = PointerChasing(seed=seed)
        self.stride = Stride()

    def _level_name(self, index: int) -> str:
        return f"L{index + 1}"

    def probe_latencies(self) -> Dict[str, float]:
        """Tier latencies from pointer chasing at characteristic regions.

        A region at 1/4 of a buffer's capacity is (nearly) all hits in
        that buffer; a region at 4x capacity is mostly misses served by
        the next level.  This inverts the measured averages into
        per-level latencies the way the paper's prober does with miss
        rates.
        """
        latencies: Dict[str, float] = {}
        for i, capacity in enumerate(self.read_capacities):
            region = max(1 * KIB, capacity // 4)
            target = self.target_factory()
            latencies[self._level_name(i)] = self.pc.read_latency_ns(
                target, region
            )
        # The level below the last buffer (media): mostly-miss region.
        region = self.read_capacities[-1] * 8
        target = self.target_factory()
        avg = self.pc.read_latency_ns(target, region)
        # avg = hit_frac * lat_buf + miss_frac * lat_media
        hit_frac = self.read_capacities[-1] / region
        lat_buf = latencies[self._level_name(len(self.read_capacities) - 1)]
        lat_media = (avg - hit_frac * lat_buf) / (1.0 - hit_frac)
        latencies["media"] = lat_media
        return latencies

    def probe_bandwidths(self) -> Dict[str, float]:
        """Per-level streaming read bandwidth (entry-strided)."""
        bandwidths: Dict[str, float] = {}
        for i, (capacity, entry) in enumerate(
                zip(self.read_capacities, self.entry_sizes)):
            target = self.target_factory()
            target.warm_fill(0, capacity)
            bw = self.stride.read_bandwidth_gbs(
                target, total_bytes=capacity, stride=entry
            )
            bandwidths[self._level_name(i)] = bw
        return bandwidths

    def run(self) -> PerformanceReport:
        report = PerformanceReport()
        report.level_latency_ns = self.probe_latencies()
        report.level_bandwidth_gbs = self.probe_bandwidths()
        return report
