"""LENS microbenchmarks: pointer chasing, overwrite, stride."""

from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.overwrite import Overwrite
from repro.lens.microbench.stride import Stride

__all__ = ["PointerChasing", "Overwrite", "Stride"]
