"""Overwrite microbenchmark (Section III-A).

Repeatedly writes the same memory region and measures the latency of
each persisted 256B write (nt-stores followed by a drain fence, the
standard persistent-memory write idiom).  Variants:

1. per-256B-write latency at a fixed region (tail-latency / migration
   probe, Fig. 7b);
2. long-tail frequency across region sizes at a constant total write
   volume (migration-granularity probe, Fig. 7c) — the tail ratio is per
   written 256B unit, so points are comparable across region sizes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence

from repro.common.units import NS
from repro.engine.request import CACHE_LINE
from repro.engine.stats import LatencySeries
from repro.target import TargetSystem

CHUNK = 256  # one persisted write unit


@dataclass
class OverwriteResult:
    """Per-256B-write execution times of an overwrite run."""

    region_bytes: int
    iteration_ns: List[float]  # one entry per persisted 256B write

    @property
    def median_ns(self) -> float:
        return statistics.median(self.iteration_ns)

    def tail_indices(self, threshold: float = 10.0) -> List[int]:
        """Writes whose latency exceeds ``threshold`` x median."""
        limit = self.median_ns * threshold
        return [i for i, t in enumerate(self.iteration_ns) if t > limit]

    def tail_ratio_permille(self, threshold: float = 10.0) -> float:
        """Long-tail writes per thousand."""
        if not self.iteration_ns:
            return 0.0
        return 1000.0 * len(self.tail_indices(threshold)) / len(self.iteration_ns)

    def tail_magnitude_ns(self, threshold: float = 10.0) -> float:
        """Mean latency of the tail writes (0 if none)."""
        tails = self.tail_indices(threshold)
        if not tails:
            return 0.0
        return sum(self.iteration_ns[i] for i in tails) / len(tails)

    def tail_interval(self, threshold: float = 10.0) -> float:
        """Mean gap (in writes) between consecutive tails (0 if < 2)."""
        tails = self.tail_indices(threshold)
        if len(tails) < 2:
            return 0.0
        gaps = [b - a for a, b in zip(tails, tails[1:])]
        return sum(gaps) / len(gaps)


class Overwrite:
    """Driver for the overwrite variants."""

    def run(self, target: TargetSystem, region_bytes: int = CHUNK,
            iterations: int = 20000, now: int = 0) -> OverwriteResult:
        """Overwrite ``region_bytes`` ``iterations`` times.

        Each iteration walks the region in 256B units; every unit is four
        nt-stores followed by a drain fence, and its latency is the full
        store-to-persistence time — which is where a wear-leveling
        migration stall becomes visible.
        """
        region_bytes = max(region_bytes, CHUNK)
        chunks = [c * CHUNK for c in range(region_bytes // CHUNK)]
        times: List[float] = []
        for _ in range(iterations):
            for base in chunks:
                start = now
                for line in range(base, base + CHUNK, CACHE_LINE):
                    now = target.write(line, now)
                now = target.fence(now)
                times.append((now - start) / NS)
        return OverwriteResult(region_bytes, times)

    def tail_scan(self, target_factory, regions: Sequence[int],
                  total_bytes: int = 8 * 1024 * 1024,
                  threshold: float = 10.0) -> LatencySeries:
        """Variant 2: long-tail frequency vs region size (Fig. 7c).

        Each test writes the same total volume so the x-axis varies only
        the spread of the writes; ``target_factory`` builds a fresh
        system per point.
        """
        series = LatencySeries("tail-ratio-permille")
        for region in regions:
            region = max(region, CHUNK)
            iterations = max(1, total_bytes // region)
            target = target_factory()
            result = self.run(target, region, iterations)
            series.add(region, result.tail_ratio_permille(threshold))
        return series
