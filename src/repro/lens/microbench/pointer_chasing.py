"""Pointer-chasing microbenchmark (Section III-A).

Divides a contiguous PC-Region into equal PC-Blocks, visits the blocks in
a random order, and accesses the cache lines within each block
sequentially.  Reads form a true dependency chain (the next block address
is stored in the current one), so read requests are serialized; writes
issue as fast as the memory system accepts them.  All accesses are
non-temporal 64B operations, as in the kernel-module implementation.

Variants (Table II):

1. latency per cache line with a fixed PC-Block across PC-Region sizes
   (buffer-capacity probe);
2. latency across PC-Block sizes at a fixed PC-Region (read/write
   amplification probe);
3. read-after-write: write the region in pointer order, fence, then read
   it in the same order (buffer-hierarchy / data-fast-forward probe).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.rng import make_rng
from repro.common.units import NS
from repro.engine.request import CACHE_LINE
from repro.engine.stats import LatencySeries
from repro.target import TargetSystem


class PointerChasing:
    """Driver for the three pointer-chasing variants."""

    def __init__(
        self,
        seed: int = 0,
        max_lines_per_point: int = 2000,
        min_passes: int = 1,
        warm: bool = True,
    ) -> None:
        self.seed = seed
        self.max_lines_per_point = max_lines_per_point
        self.min_passes = min_passes
        self.warm = warm

    # -- access-order construction --------------------------------------

    def _block_order(self, region: int, block: int, stream: str) -> List[int]:
        """Random visit order of PC-Block base addresses, sampled down to
        the measurement budget for very large regions."""
        rng = make_rng(self.seed, stream)
        nblocks = max(1, region // block)
        budget_blocks = max(1, self.max_lines_per_point // max(1, block // CACHE_LINE))
        if nblocks <= budget_blocks:
            order = list(range(nblocks))
            rng.shuffle(order)
        else:
            order = rng.sample(range(nblocks), budget_blocks)
        return [b * block for b in order]

    def _lines_of(self, block_base: int, block: int) -> range:
        return range(block_base, block_base + block, CACHE_LINE)

    # -- variant 1: latency vs region size ------------------------------

    def read_latency_ns(self, target: TargetSystem, region: int,
                        block: int = CACHE_LINE, now: int = 0) -> float:
        """Average dependent-read latency per cache line (ns)."""
        if self.warm:
            target.warm_fill(0, region)
        total = 0
        count = 0
        for _pass in range(self.min_passes):
            order = self._block_order(region, block, f"rd-{region}-{block}-{_pass}")
            for base in order:
                for line in self._lines_of(base, block):
                    done = target.read(line, now)
                    total += done - now
                    now = done
                    count += 1
        return total / count / NS

    def write_latency_ns(self, target: TargetSystem, region: int,
                         block: int = CACHE_LINE, now: int = 0,
                         budget_lines: int = 1500) -> float:
        """Average nt-store accept latency per cache line (ns).

        Issues full passes over the region (sampled for huge regions),
        with a fence between passes whose drain time is excluded from the
        per-line average — the fence only resets queue state, matching
        the paper's per-iteration measurement loop.
        """
        total = 0
        count = 0
        npass = 0
        while count < budget_lines:
            order = self._block_order(region, block, f"wr-{region}-{block}-{npass}")
            for base in order:
                for line in self._lines_of(base, block):
                    accept = target.write(line, now)
                    total += accept - now
                    now = accept
                    count += 1
            now = target.fence(now)
            npass += 1
        return total / count / NS

    def latency_sweep(self, target_factory, regions: Sequence[int],
                      block: int = CACHE_LINE, op: str = "read") -> LatencySeries:
        """Latency-per-CL curve across PC-Region sizes (Fig. 5a/5b).

        ``target_factory`` builds a fresh system per sweep point so queue
        and buffer state cannot leak between region sizes (each point
        models an independent measurement run).
        """
        series = LatencySeries(f"{op}-lat-{block}B-block")
        for region in regions:
            target = target_factory()
            if op == "read":
                lat = self.read_latency_ns(target, region, block)
            else:
                lat = self.write_latency_ns(target, region, block)
            series.add(region, lat)
        return series

    # -- variant 2: amplification (block-size sweep) ---------------------

    def block_sweep(self, target_factory, region: int,
                    blocks: Sequence[int], op: str = "read") -> LatencySeries:
        """Latency per CL across PC-Block sizes at a fixed region (fresh
        system per point)."""
        series = LatencySeries(f"{op}-lat-region-{region}")
        for block in blocks:
            target = target_factory()
            if op == "read":
                lat = self.read_latency_ns(target, region, block)
            else:
                lat = self.write_latency_ns(target, region, block)
            series.add(block, lat)
        return series

    # -- variant 3: read-after-write -------------------------------------

    def read_after_write_ns(self, target: TargetSystem, region: int,
                            now: int = 0) -> float:
        """Roundtrip RaW latency per cache line (Fig. 5c).

        Writes every line of the region in pointer order, fences (the
        store data must be observable), then reads the lines back in the
        same order.  The fence is part of the measured roundtrip — that
        is precisely why small regions show RaW >> R+W.
        """
        order = self._block_order(region, CACHE_LINE, f"raw-{region}")
        start = now
        for line in order:
            now = target.write(line, now)
        now = target.fence(now)
        for line in order:
            now = target.read(line, now)
        return (now - start) / len(order) / NS

    def raw_sweep(self, target_factory, regions: Sequence[int]
                  ) -> Tuple[LatencySeries, LatencySeries]:
        """(RaW, R+W) curves; ``target_factory`` builds a fresh system per
        point so queue state never leaks between region sizes."""
        raw = LatencySeries("raw")
        rpw = LatencySeries("r-plus-w")
        for region in regions:
            raw.add(region, self.read_after_write_ns(target_factory(), region))
            r = self.read_latency_ns(target_factory(), region)
            w = self.write_latency_ns(target_factory(), region)
            rpw.add(region, r + w)
        return raw, rpw
