"""Stride microbenchmark (Section III-A).

Sequentially reads or writes cache lines at a fixed striding distance.
Variants:

1. bandwidth at a fixed stride across access sizes (performance probe);
2. multi-DIMM interleaving characterization: execution time of
   sequential/strided writes across total sizes (Fig. 7a).

Reads use a fixed concurrency window (the paper's streaming loads are
independent, unlike pointer chasing); writes issue as accepted.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.common.units import NS, US
from repro.engine.request import CACHE_LINE
from repro.engine.stats import LatencySeries
from repro.target import TargetSystem


class Stride:
    """Driver for the stride variants."""

    def __init__(self, read_window: int = 16) -> None:
        self.read_window = read_window

    def read_bandwidth_gbs(self, target: TargetSystem, total_bytes: int,
                           stride: int = CACHE_LINE, now: int = 0) -> float:
        """Streaming-read bandwidth with ``read_window`` lines in flight."""
        inflight: deque = deque()
        addr = 0
        issued = 0
        last_done = now
        while issued * stride < total_bytes:
            if len(inflight) >= self.read_window:
                gate = inflight.popleft()
                if gate > now:
                    now = gate
            done = target.read(addr, now)
            inflight.append(done)
            last_done = max(last_done, done)
            addr += stride
            issued += 1
        elapsed = max(1, last_done)
        return issued * CACHE_LINE / (elapsed / 1e12) / 1e9

    def write_bandwidth_gbs(self, target: TargetSystem, total_bytes: int,
                            stride: int = CACHE_LINE, nt: bool = True,
                            mode: str = None, now: int = 0) -> float:
        """Streaming-write bandwidth.

        ``mode`` selects the store flavour:

        * ``"nt"`` — non-temporal stores (uses ``write_nt`` if the target
          distinguishes it);
        * ``"rfo"`` — regular cached stores at the *memory* interface: a
          read-for-ownership plus the write-back (why cached-store
          bandwidth trails nt-store bandwidth on Optane, Fig. 1a);
        * ``"cached"`` — a plain write-back stream with no RFO cost
          (systems whose emulation layer does not slow ownership reads,
          like PMEP).

        ``nt`` is a backwards-compatible alias: True -> "nt",
        False -> "rfo".
        """
        if mode is None:
            mode = "nt" if nt else "rfo"
        addr = 0
        issued = 0
        start = now
        write_nt = getattr(target, "write_nt", None)
        while issued * stride < total_bytes:
            if mode == "rfo":
                now = target.read(addr, now)
            if mode == "nt" and write_nt is not None:
                now = write_nt(addr, now)
            else:
                now = target.write(addr, now)
            addr += stride
            issued += 1
        now = target.fence(now)
        elapsed = max(1, now - start)
        return issued * CACHE_LINE / (elapsed / 1e12) / 1e9

    def sequential_write_times_us(self, target_factory, sizes: Sequence[int]
                                  ) -> LatencySeries:
        """Variant 2: execution time of sequential write bursts (Fig. 7a).

        A fresh system per point so every burst starts with empty queues.
        """
        series = LatencySeries("seq-write-exec-us")
        for size in sizes:
            target = target_factory()
            now = 0
            for addr in range(0, size, CACHE_LINE):
                now = target.write(addr, now)
            now = target.fence(now)
            series.add(size, now / US)
        return series

    def strided_write_times_us(self, target_factory, total_bytes: int,
                               strides: Sequence[int]) -> LatencySeries:
        """Execution time of a fixed volume at varying stride distances."""
        series = LatencySeries("strided-write-exec-us")
        for stride in strides:
            target = target_factory()
            now = 0
            nlines = total_bytes // CACHE_LINE
            for i in range(nlines):
                now = target.write(i * stride, now)
            now = target.fence(now)
            series.add(stride, now / US)
        return series
