"""LENS characterization report (the Figure 4/8 parameter summary) and
the paper's static comparison tables.

``characterize`` runs all three probers against a target and assembles
the full microarchitecture picture; ``Characterization.render()``
produces the human-readable table, and ``compare_to_truth`` scores the
inferences against a known configuration (how we validate LENS itself —
the paper validated against vendor confirmation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.units import pretty_size
from repro.lens.probers.buffer import BufferProber, BufferReport
from repro.lens.probers.mapping import MappingProber, MappingReport
from repro.lens.probers.performance import PerformanceProber, PerformanceReport
from repro.lens.probers.policy import PolicyProber, PolicyReport
from repro.target import TargetSystem

#: Table I — profiling-tool capability matrix (static, from the paper).
TABLE_I = {
    "columns": ["latency", "bandwidth", "addr-mapping", "buffer-size",
                "buffer-granularity", "buffer-hierarchy",
                "migration-frequency", "migration-granularity",
                "long-tail-latency"],
    "rows": {
        "MLC": ["yes", "yes", "no", "no", "no", "no", "no", "no", "no"],
        "perf": ["yes", "yes", "no", "no", "no", "no", "no", "no", "no"],
        "DRAMA": ["partial", "partial", "yes", "no", "no", "no", "no",
                  "no", "no"],
        "LENS": ["yes"] * 9,
    },
}

#: Table II — LENS probers, microbenchmarks, and what they reveal.
TABLE_II = [
    ("Buffer", "PtrChasing (64B block)", "buffer overflow", "buffer size"),
    ("Buffer", "PtrChasing (various block)", "r/w amplification",
     "buffer entry size"),
    ("Buffer", "Read-after-write", "data fast-forwarding",
     "buffer hierarchy"),
    ("Policy", "Sequential/strided write", "interleaving speedup",
     "interleaving scheme"),
    ("Policy", "Overwrite (256B region)", "data migration",
     "migration latency"),
    ("Policy", "Overwrite (various region)", "data migration",
     "migration block size"),
    ("Perf.", "Strided read", "stable amplification",
     "internal bandwidth"),
    ("Perf.", "PtrChasing + miss rates", "n/a", "internal latency"),
]


@dataclass
class Characterization:
    """Everything LENS inferred about one NVRAM system."""

    target_name: str
    buffers: BufferReport
    policy: Optional[PolicyReport] = None
    performance: Optional[PerformanceReport] = None
    mapping: Optional[MappingReport] = None

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Figure 8-style parameter summary."""
        lines = [f"LENS characterization of {self.target_name}",
                 "=" * 48]
        caps = self.buffers.read_capacities
        ents = self.buffers.read_entry_sizes
        for i, cap in enumerate(caps):
            entry = pretty_size(ents[i]) if i < len(ents) else "?"
            name = ("RMW buffer", "AIT buffer")[i] if i < 2 else f"read L{i+1}"
            lines.append(f"  {name:<12} capacity {pretty_size(cap):>6} "
                         f"entry {entry}")
        wcaps = self.buffers.write_capacities
        wents = self.buffers.write_entry_sizes
        for i, cap in enumerate(wcaps):
            entry = pretty_size(wents[i]) if i < len(wents) else "?"
            name = ("WPQ", "LSQ")[i] if i < 2 else f"write L{i+1}"
            lines.append(f"  {name:<12} capacity {pretty_size(cap):>6} "
                         f"combine/flush {entry}")
        lines.append(f"  hierarchy    {self.buffers.hierarchy}")
        if self.policy is not None:
            lines.append(
                f"  wear-leveling: block {pretty_size(self.policy.migration_granularity)}"
                f", migration {self.policy.migration_latency_us:.1f}us every "
                f"~{self.policy.migration_interval_iters:.0f} overwrites"
            )
            if self.policy.interleave_granularity:
                lines.append(
                    f"  interleaving: {pretty_size(self.policy.interleave_granularity)}"
                    f" granularity, {self.policy.interleave_speedup:.2f}x speedup"
                )
        if self.mapping is not None and self.mapping.dimm_select_bits:
            bits = self.mapping.dimm_select_bits
            lines.append(
                f"  addr mapping: DIMM-select bits {bits[:4]}"
                f"{'...' if len(bits) > 4 else ''} "
                f"(granularity {pretty_size(self.mapping.interleave_granularity)})"
            )
        if self.performance is not None:
            for name, lat in self.performance.level_latency_ns.items():
                bw = self.performance.level_bandwidth_gbs.get(name)
                bw_txt = f", {bw:.1f} GB/s" if bw else ""
                lines.append(f"  {name:<12} read {lat:.0f} ns{bw_txt}")
        return "\n".join(lines)

    def compare_to_truth(self, truth: Dict[str, int],
                         tolerance: float = 1.0) -> Dict[str, bool]:
        """Score inferences against known parameters.

        ``truth`` keys: rmw_bytes, ait_bytes, wpq_bytes, lsq_bytes,
        wear_block_bytes, interleave_bytes, rmw_entry, ait_entry.  A
        detection within a factor of ``1 + tolerance`` counts as correct
        (capacity probes quantize to the sweep grid).
        """

        def close(measured: Optional[int], expected: Optional[int]) -> bool:
            if not measured or not expected:
                return False
            ratio = measured / expected
            return 1.0 / (1.0 + tolerance) <= ratio <= (1.0 + tolerance)

        caps = self.buffers.read_capacities
        wcaps = self.buffers.write_capacities
        ents = self.buffers.read_entry_sizes
        out = {
            "rmw_capacity": close(caps[0] if caps else None,
                                  truth.get("rmw_bytes")),
            "ait_capacity": close(caps[1] if len(caps) > 1 else None,
                                  truth.get("ait_bytes")),
            "wpq_capacity": close(wcaps[0] if wcaps else None,
                                  truth.get("wpq_bytes")),
            "lsq_capacity": close(wcaps[1] if len(wcaps) > 1 else None,
                                  truth.get("lsq_bytes")),
            "rmw_entry": close(ents[0] if ents else None,
                               truth.get("rmw_entry")),
            "ait_entry": close(ents[1] if len(ents) > 1 else None,
                               truth.get("ait_entry")),
        }
        if self.policy is not None:
            out["wear_block"] = close(self.policy.migration_granularity,
                                      truth.get("wear_block_bytes"))
            if truth.get("interleave_bytes"):
                out["interleave"] = close(self.policy.interleave_granularity,
                                          truth.get("interleave_bytes"))
        return out


def characterize(
    target_factory: Callable[[], TargetSystem],
    interleaved_factory: Optional[Callable[[], TargetSystem]] = None,
    run_policy: bool = True,
    run_performance: bool = True,
    overwrite_iterations: int = 40000,
    tail_scan_bytes: Optional[int] = None,
) -> Characterization:
    """Run the full LENS suite against a system.

    ``tail_scan_bytes`` sizes the migration-granularity probe; it must
    sit between 1x and 2x the wear threshold in 256B units for the
    frequency drop to be observable (the default suits the real
    ~14,000-write threshold).
    """
    name = target_factory().name
    buffer_report = BufferProber(target_factory).run()

    policy_report = None
    if run_policy:
        kwargs = {}
        if tail_scan_bytes is not None:
            kwargs["tail_scan_bytes"] = tail_scan_bytes
        policy_report = PolicyProber(
            target_factory,
            interleaved_factory=interleaved_factory,
            overwrite_iterations=overwrite_iterations,
            **kwargs,
        ).run()

    perf_report = None
    if run_performance:
        caps = buffer_report.read_capacities or [16 * 1024, 16 * 1024 * 1024]
        ents = buffer_report.read_entry_sizes or [256, 4096]
        perf_report = PerformanceProber(
            target_factory,
            read_capacities=caps[:2],
            entry_sizes=(ents + [256, 4096])[:2],
        ).run()

    mapping_report = None
    if interleaved_factory is not None:
        mapping_report = MappingProber(interleaved_factory).run()

    return Characterization(
        target_name=name,
        buffers=buffer_report,
        policy=policy_report,
        performance=perf_report,
        mapping=mapping_report,
    )
