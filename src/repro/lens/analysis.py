"""Curve analysis used by the LENS probers.

Pure functions over (x, y) series: inflection-point detection (buffer
capacities), amplification scores and their knees (entry sizes),
tail-event statistics (migration parameters), and periodicity detection
(interleaving granularity).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.engine.stats import LatencySeries


def find_inflections(series: LatencySeries, min_ratio: float = 1.18
                     ) -> List[int]:
    """Buffer capacities from a latency-vs-region curve.

    A buffer overflow shows as a sharp latency rise once the region
    exceeds the capacity; with a doubling sweep, the capacity is the last
    x before such a rise.  We take every *local maximum* of the
    consecutive-point ratio that exceeds ``min_ratio`` — local maxima
    separate distinct overflow events even when the tiers blend.
    """
    xs = series.xs
    ys = series.values
    if len(xs) < 2:
        return []
    ratios = []
    for i in range(len(ys) - 1):
        prev = ys[i] if ys[i] > 0 else 1e-9
        ratios.append(ys[i + 1] / prev)
    capacities = []
    for i, ratio in enumerate(ratios):
        if ratio < min_ratio:
            continue
        left = ratios[i - 1] if i > 0 else 0.0
        right = ratios[i + 1] if i + 1 < len(ratios) else 0.0
        if ratio >= left and ratio >= right:
            capacities.append(int(xs[i]))
    return capacities


def amplification_scores(overflow: LatencySeries, fit: LatencySeries
                         ) -> LatencySeries:
    """Amplification score per PC-Block size (Section III-A).

    Score = latency in the buffer-overflow case / latency in the fit
    case, at the same block size.  The score reaches its floor exactly
    when the block size reaches the buffer's entry size (no more wasted
    fill bytes).
    """
    fit_by_x = dict(fit.points)
    series = LatencySeries("amplification-score")
    for x, y_over in overflow:
        y_fit = fit_by_x.get(x)
        if y_fit and y_fit > 0:
            series.add(x, y_over / y_fit)
    return series


def score_knee(scores: LatencySeries, tolerance: float = 0.06) -> int:
    """Entry size = the first block size where the score stops dropping.

    Scanning the (doubling) block sizes, the knee is the first x whose
    score is within ``tolerance`` of the final floor value.
    """
    if not len(scores):
        return 0
    values = scores.values
    floor = min(values)
    for x, score in scores:
        if score <= floor * (1.0 + tolerance):
            return int(x)
    return int(scores.xs[-1])


def excess_knee(overflow: LatencySeries, fit: LatencySeries,
                floor_factor: float = 2.2) -> int:
    """Entry size from *excess latency* (overflow minus fit).

    The amplification's latency contribution is the excess of the
    overflow curve over the fit curve; it shrinks as the PC-Block
    amortizes each fill over more lines and bottoms out exactly when the
    block reaches the entry size.  The knee is the first block size whose
    excess falls within ``floor_factor`` of the floor — more robust than
    ratio thresholds when the two buffer levels have different
    hit/miss latency contrasts.
    """
    fit_by_x = dict(fit.points)
    excess = [(x, y - fit_by_x.get(x, 0.0)) for x, y in overflow
              if x in fit_by_x]
    if not excess:
        return 0
    floor = max(1e-9, min(e for _, e in excess))
    for x, e in excess:
        if e <= floor * floor_factor:
            return int(x)
    return int(excess[-1][0])


def detect_drop(series: LatencySeries, drop_factor: float = 0.5) -> int:
    """First x whose value drops below ``drop_factor`` x the running
    maximum — used for the migration-granularity probe (Fig. 7c).

    Returns the x *before* the drop (the largest region that still
    concentrates enough writes to trigger migrations), or 0.
    """
    running_max = 0.0
    prev_x = 0
    for x, y in series:
        if running_max > 0 and y < running_max * drop_factor:
            return int(prev_x)
        running_max = max(running_max, y)
        prev_x = x
    return 0


def detect_period(series: LatencySeries, min_strength: float = 0.25
                  ) -> int:
    """Dominant period of a sampled curve via normalized autocorrelation
    of the first differences (interleaving-granularity probe, Fig. 7a).

    ``series`` must be uniformly sampled in x; returns the period in x
    units (0 when no periodicity clears ``min_strength``).
    """
    ys = series.values
    xs = series.xs
    n = len(ys)
    if n < 8:
        return 0
    diffs = [ys[i + 1] - ys[i] for i in range(n - 1)]
    mean = sum(diffs) / len(diffs)
    centered = [d - mean for d in diffs]
    denom = sum(c * c for c in centered)
    if denom <= 0:
        return 0
    best_lag, best_score = 0, min_strength
    for lag in range(2, len(centered) // 2):
        num = sum(centered[i] * centered[i + lag]
                  for i in range(len(centered) - lag))
        score = num / denom
        if score > best_score:
            best_score = score
            best_lag = lag
    if best_lag == 0:
        return 0
    step = xs[1] - xs[0]
    return int(best_lag * step)


def mean_tail_gap(tail_indices: Sequence[int]) -> float:
    """Mean distance between consecutive tail events."""
    if len(tail_indices) < 2:
        return 0.0
    gaps = [b - a for a, b in zip(tail_indices, tail_indices[1:])]
    return sum(gaps) / len(gaps)


def accuracy(simulated: Sequence[float], reference: Sequence[float]
             ) -> float:
    """The paper's accuracy metric: arithmetic mean over points of
    ``1 - |sim - ref| / ref`` (floored at 0)."""
    pairs: List[Tuple[float, float]] = [
        (s, r) for s, r in zip(simulated, reference) if r
    ]
    if not pairs:
        return 0.0
    total = 0.0
    for sim, ref in pairs:
        total += max(0.0, 1.0 - abs(sim - ref) / abs(ref))
    return total / len(pairs)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (used by the Figure 11 accuracy summaries)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
