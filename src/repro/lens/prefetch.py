"""Prefetcher-noise model: why LENS disables hardware prefetchers.

LENS sets MSR 0x1a4 = 0xf to turn off all four CPU prefetchers before
profiling (Section III-B), because prefetched lines contaminate the
latency patterns the probers decode.  ``PrefetchingTarget`` puts that
noise back: a next-N-line streamer runs ahead of every demand read into
a small prefetch buffer, exactly the behaviour the L2 adjacent-line /
streamer prefetchers exhibit.  The ablation tests show the buffer
prober's capacity detection degrading once it is enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem


class PrefetchingTarget(TargetSystem):
    """Wrap a memory system with a CPU-side next-line prefetcher."""

    def __init__(self, target: TargetSystem, degree: int = 2,
                 buffer_lines: int = 32, hit_ps: int = 8_000,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.target = target
        self.degree = degree
        self.buffer_lines = buffer_lines
        self.hit_ps = hit_ps
        self.stats = stats or StatsRegistry()
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()
        self._c_hits = self.stats.counter("prefetch.hits")
        self._c_issued = self.stats.counter("prefetch.issued")
        self.name = f"prefetching-{target.name}"

    def _insert(self, line: int) -> None:
        self._buffer[line] = True
        self._buffer.move_to_end(line)
        if len(self._buffer) > self.buffer_lines:
            self._buffer.popitem(last=False)

    def read(self, addr: int, now: int) -> int:
        line = addr - addr % CACHE_LINE
        if line in self._buffer:
            # demand hit on a prefetched line: core-side latency only
            self._buffer.pop(line)
            self._c_hits.add()
            done = now + self.hit_ps
        else:
            done = self.target.read(addr, now)
        # run the streamer ahead (its traffic shares the memory system,
        # perturbing every latency the prober measures)
        for i in range(1, self.degree + 1):
            pf_line = line + i * CACHE_LINE
            if pf_line not in self._buffer:
                self._c_issued.add()
                self.target.read(pf_line, done)
                self._insert(pf_line)
        return done

    def write(self, addr: int, now: int) -> int:
        return self.target.write(addr, now)

    def fence(self, now: int) -> int:
        return self.target.fence(now)

    def warm_fill(self, start_addr: int, length: int) -> None:
        self.target.warm_fill(start_addr, length)

    @property
    def hit_rate(self) -> float:
        total = self._c_hits.value + self.stats.counter(
            "prefetch.issued").value
        demand = self._c_hits.value
        return demand / max(1, total)
