"""LENS — Low-level profilEr for Non-volatile memory Systems.

LENS reverse engineers NVRAM microarchitecture from performance patterns
(Section III).  It consists of:

* three microbenchmarks — pointer chasing, overwrite, stride — each with
  the variants of Table II;
* three probers — buffer, policy, performance — that run the
  microbenchmarks and infer buffer capacities/entry sizes/hierarchy,
  wear-leveling parameters, interleaving policy, and per-level
  latency/bandwidth;
* curve analysis (inflection detection, amplification scores, tail
  detection, periodicity detection);
* a characterization report (the Figure 8 parameter table).

The paper implements LENS as a Linux kernel module driving real DIMMs
with AVX-512 nt instructions; here the same benchmarks drive any
:class:`~repro.target.TargetSystem` (VANS, a baseline, or the Optane
reference).
"""

from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.overwrite import Overwrite
from repro.lens.microbench.stride import Stride
from repro.lens.probers.buffer import BufferProber, BufferReport
from repro.lens.probers.policy import PolicyProber, PolicyReport
from repro.lens.probers.performance import PerformanceProber, PerformanceReport
from repro.lens.probers.mapping import MappingProber, MappingReport
from repro.lens.report import Characterization, characterize, TABLE_I, TABLE_II

__all__ = [
    "PointerChasing",
    "Overwrite",
    "Stride",
    "BufferProber",
    "BufferReport",
    "PolicyProber",
    "PolicyReport",
    "PerformanceProber",
    "PerformanceReport",
    "MappingProber",
    "MappingReport",
    "Characterization",
    "characterize",
    "TABLE_I",
    "TABLE_II",
]
