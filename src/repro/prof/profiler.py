"""Wall-clock self/cumulative-time profiler core.

The profiler keeps an explicit frame stack.  ``push(key)`` opens a
frame and ``pop(frame)`` closes it, folding the elapsed wall time into
a per-key aggregate (call count, self time, cumulative time) and a
per-stack-path aggregate (for flamegraph exports).  Self time is
elapsed minus the time spent in child frames; cumulative time is
recursion-safe (a key already open further up the stack does not
double-count).

Two attachment surfaces exist:

* :meth:`Profiler.instrument` wraps the methods a target system names
  in its ``profile_points()`` protocol.  Wrapping happens *instance*-
  side over whatever binding is live — including the precompiled fast
  variants — so timings stay representative of the uninstrumented
  code and the fast bindings are restored exactly on uninstrument.
* ``engine.profiler = prof`` routes the event engine through its
  profiled dispatch replica, attributing each callback by qualname.

Sessions mirror :mod:`repro.progress`: ``session(prof)`` makes the
profiler visible to ``registry.build()`` via :func:`current`, and
uninstruments everything on exit.  The schema of the exported profile
document is ``repro.prof/1``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

PROFILE_SCHEMA = "repro.prof/1"

#: sentinel for "no prior instance-side binding existed"
_MISSING = object()


class NullProfiler:
    """Zero-cost stand-in bound at class level on every target."""

    __slots__ = ()
    enabled = False

    def push(self, key: str) -> None:
        return None

    def pop(self, frame: Any) -> None:
        pass

    @contextmanager
    def frame(self, key: str) -> Iterator[None]:
        yield

    def wrap(self, key: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        return fn

    def instrument(self, system: Any) -> None:
        pass

    def uninstrument_all(self) -> None:
        pass


NULL_PROF = NullProfiler()


class Profiler:
    """Aggregating wall-clock profiler (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        # frame: [key, start_ns, child_ns, path_tuple]
        self._stack: List[list] = []
        #: key -> [calls, self_ns, cum_ns]
        self._frames: Dict[str, List[int]] = {}
        #: stack path tuple -> [calls, self_ns]
        self._paths: Dict[Tuple[str, ...], List[int]] = {}
        #: (owner, method name, installed wrapper) records for restore
        self._wrapped: List[Tuple[Any, str, Any]] = []
        self._systems: List[Any] = []
        self._engines: List[Any] = []

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def push(self, key: str) -> list:
        stack = self._stack
        path = stack[-1][3] + (key,) if stack else (key,)
        frame = [key, perf_counter_ns(), 0, path]
        stack.append(frame)
        return frame

    def pop(self, frame: list) -> None:
        end = perf_counter_ns()
        stack = self._stack
        stack.pop()
        key = frame[0]
        elapsed = end - frame[1]
        self_ns = elapsed - frame[2]
        if self_ns < 0:
            self_ns = 0
        agg = self._frames.get(key)
        if agg is None:
            agg = self._frames[key] = [0, 0, 0]
        agg[0] += 1
        agg[1] += self_ns
        # recursion guard: cumulative counts only the outermost frame
        # of a key (stacks here are shallow, a linear scan is cheap)
        recursive = False
        for outer in stack:
            if outer[0] == key:
                recursive = True
                break
        if not recursive:
            agg[2] += elapsed
        if stack:
            stack[-1][2] += elapsed
        path = frame[3]
        pagg = self._paths.get(path)
        if pagg is None:
            pagg = self._paths[path] = [0, 0]
        pagg[0] += 1
        pagg[1] += self_ns

    @contextmanager
    def frame(self, key: str) -> Iterator[None]:
        entry = self.push(key)
        try:
            yield
        finally:
            self.pop(entry)

    def wrap(self, key: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        push = self.push
        pop = self.pop

        def profiled(*args: Any, **kwargs: Any) -> Any:
            frame = push(key)
            try:
                return fn(*args, **kwargs)
            finally:
                pop(frame)

        profiled.__repro_prof__ = True
        profiled.__repro_prof_key__ = key
        profiled.__wrapped__ = fn
        return profiled

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def instrument(self, system: Any) -> None:
        """Wrap every attribution point a system advertises.

        Wrapping is instance-side over the live binding (fast variants
        included); objects without a ``__dict__`` (slotted stations)
        are skipped — their time lands in the owning component's key.
        """
        points = getattr(system, "profile_points", None)
        if points is None:
            return
        for key, obj, name in points():
            d = getattr(obj, "__dict__", None)
            if d is None:
                continue
            if getattr(d.get(name), "__repro_prof__", False):
                continue  # already wrapped (warm-cache reuse)
            bound = getattr(obj, name, None)
            if bound is None:
                continue
            wrapper = self.wrap(key, bound)
            wrapper.__repro_prof_prior__ = d.get(name, _MISSING)
            d[name] = wrapper
            self._wrapped.append((obj, name, wrapper))
        d = getattr(system, "__dict__", None)
        if d is not None:
            d["prof"] = self
            d["_prof_wrapped"] = True
            self._systems.append(system)

    def attach_engine(self, engine: Any) -> None:
        """Route an event engine through its profiled dispatch."""
        engine.profiler = self
        self._engines.append(engine)

    def uninstrument_all(self) -> None:
        """Restore every binding this profiler installed.

        Only bindings still pointing at our wrapper are touched, so a
        system that was reset or released mid-session (which rebinds
        its fast paths itself) is left alone.
        """
        for obj, name, wrapper in reversed(self._wrapped):
            d = getattr(obj, "__dict__", None)
            if d is None or d.get(name) is not wrapper:
                continue
            prior = wrapper.__repro_prof_prior__
            if prior is _MISSING:
                del d[name]
            else:
                d[name] = prior
        self._wrapped.clear()
        for system in self._systems:
            d = getattr(system, "__dict__", None)
            if d is not None and d.get("prof") is self:
                d.pop("prof", None)
                d.pop("_prof_wrapped", None)
        self._systems.clear()
        for engine in self._engines:
            if getattr(engine, "profiler", None) is self:
                engine.profiler = None
        self._engines.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    @property
    def total_self_ns(self) -> int:
        return sum(agg[1] for agg in self._frames.values())

    def to_dict(self, wall_ns: Optional[int] = None,
                meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Deterministic ``repro.prof/1`` profile document."""
        frames = {
            key: {"calls": agg[0], "self_ns": agg[1], "cum_ns": agg[2]}
            for key, agg in sorted(self._frames.items())
        }
        stacks = [
            {"stack": list(path), "calls": agg[0], "self_ns": agg[1]}
            for path, agg in sorted(self._paths.items())
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "meta": dict(sorted((meta or {}).items())),
            "wall_ns": wall_ns,
            "total_self_ns": self.total_self_ns,
            "frames": frames,
            "stacks": stacks,
        }


def validate_profile(doc: Any) -> List[str]:
    """Structural check of a profile document; returns problem strings."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["profile document is not an object"]
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {PROFILE_SCHEMA!r}")
    frames = doc.get("frames")
    if not isinstance(frames, dict):
        problems.append("frames is not an object")
        frames = {}
    for key, entry in frames.items():
        if not isinstance(entry, dict):
            problems.append(f"frame {key!r} is not an object")
            continue
        for field in ("calls", "self_ns", "cum_ns"):
            if not isinstance(entry.get(field), int):
                problems.append(f"frame {key!r}.{field} is not an int")
    stacks = doc.get("stacks")
    if not isinstance(stacks, list):
        problems.append("stacks is not a list")
        stacks = []
    for i, entry in enumerate(stacks):
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("stack"), list)
                or not all(isinstance(k, str) for k in entry["stack"])
                or not isinstance(entry.get("calls"), int)
                or not isinstance(entry.get("self_ns"), int)):
            problems.append(f"stacks[{i}] is malformed")
    wall = doc.get("wall_ns")
    if wall is not None and not isinstance(wall, int):
        problems.append("wall_ns is neither null nor an int")
    if not isinstance(doc.get("total_self_ns"), int):
        problems.append("total_self_ns is not an int")
    return problems


def profile_from_dict(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and canonicalize a profile document (sorted keys/stacks).

    Canonical documents round-trip exactly:
    ``profile_from_dict(json.loads(json.dumps(doc))) == doc``.
    """
    problems = validate_profile(doc)
    if problems:
        raise ValueError("invalid profile document: "
                         + "; ".join(problems))
    return {
        "schema": PROFILE_SCHEMA,
        "meta": dict(sorted(doc.get("meta", {}).items())),
        "wall_ns": doc.get("wall_ns"),
        "total_self_ns": doc["total_self_ns"],
        "frames": {
            key: {"calls": e["calls"], "self_ns": e["self_ns"],
                  "cum_ns": e["cum_ns"]}
            for key, e in sorted(doc["frames"].items())
        },
        "stacks": sorted(
            ({"stack": list(e["stack"]), "calls": e["calls"],
              "self_ns": e["self_ns"]} for e in doc["stacks"]),
            key=lambda e: e["stack"]),
    }


def uninstrument(system: Any) -> None:
    """Strip any profiler wrappers from a system's attribution points.

    Used by the registry when a system is released back to the warm
    cache, so a parked system never leaks profiling into a later
    session.  Safe to call on systems that were never instrumented.
    """
    d = getattr(system, "__dict__", None)
    if d is None or "_prof_wrapped" not in d:
        return
    points = getattr(system, "profile_points", None)
    if points is not None:
        for _key, obj, name in points():
            od = getattr(obj, "__dict__", None)
            if od is None:
                continue
            current_binding = od.get(name)
            if getattr(current_binding, "__repro_prof__", False):
                prior = current_binding.__repro_prof_prior__
                if prior is _MISSING:
                    del od[name]
                else:
                    od[name] = prior
    d.pop("prof", None)
    d.pop("_prof_wrapped", None)


# ----------------------------------------------------------------------
# session plumbing (mirrors repro.progress)
# ----------------------------------------------------------------------

_ACTIVE_SESSIONS: List[Profiler] = []


def current() -> Any:
    """The innermost active profiler, or :data:`NULL_PROF`."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else NULL_PROF


@contextmanager
def session(profiler: Optional[Profiler]) -> Iterator[Any]:
    """Make ``profiler`` current for the duration of the block.

    ``None`` keeps the null profiler current (no-op path).  On exit
    the profiler uninstruments everything it wrapped.
    """
    if profiler is None:
        yield NULL_PROF
        return
    _ACTIVE_SESSIONS.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE_SESSIONS.remove(profiler)
        profiler.uninstrument_all()
