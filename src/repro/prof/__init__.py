"""Host-side wall-clock profiler for the simulator itself.

``repro.prof`` attributes the *host's* wall time (where the Python
process spends its cycles) per station/event-handler callsite — the
complement of the flight recorder, which attributes *simulated*
nanoseconds.  It is the fifth zero-cost hook after the instrument bus,
flight recorder, telemetry, and progress sinks: uninstrumented runs
see only the class-level :data:`NULL_PROF` null object and keep the
precompiled fast paths bound.
"""

from repro.prof.profiler import (
    NULL_PROF,
    PROFILE_SCHEMA,
    NullProfiler,
    Profiler,
    current,
    profile_from_dict,
    session,
    uninstrument,
    validate_profile,
)
from repro.prof.export import (
    merge_chrome,
    parse_collapsed,
    to_chrome,
    to_collapsed,
    to_speedscope,
)
from repro.prof.diff import Mover, diff_profiles, format_movers

__all__ = [
    "NULL_PROF",
    "PROFILE_SCHEMA",
    "NullProfiler",
    "Profiler",
    "current",
    "session",
    "uninstrument",
    "profile_from_dict",
    "validate_profile",
    "to_collapsed",
    "parse_collapsed",
    "to_speedscope",
    "to_chrome",
    "merge_chrome",
    "Mover",
    "diff_profiles",
    "format_movers",
]
