"""Profile document exporters: collapsed stacks, speedscope, Chrome.

All exporters are pure functions over a ``repro.prof/1`` document and
emit deterministic output (sorted stacks, stable ordering), so two
profiles of the same run diff cleanly.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: the flight recorder owns pid 0 in its Chrome traces; host-profiler
#: events live in their own process row so the two merge cleanly
_PROF_PID = 1


def to_collapsed(doc: Dict[str, Any]) -> str:
    """Brendan Gregg collapsed-stack format: ``a;b;c <self_ns>``.

    One line per distinct stack path, weight is self wall time in
    nanoseconds — pipe into ``flamegraph.pl`` or paste into speedscope.
    Zero-weight paths are kept (they carry call counts in the profile
    document) so the export round-trips the stack set exactly.
    """
    lines = []
    for entry in sorted(doc.get("stacks", []), key=lambda e: e["stack"]):
        lines.append(";".join(entry["stack"]) + f" {entry['self_ns']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> List[Dict[str, Any]]:
    """Inverse of :func:`to_collapsed` (calls are not representable in
    the collapsed format and come back as 0)."""
    stacks: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        path, _, weight = line.rpartition(" ")
        if not path or not weight.lstrip("-").isdigit():
            raise ValueError(f"collapsed line {lineno} is malformed: "
                             f"{line!r}")
        stacks.append({"stack": path.split(";"), "calls": 0,
                       "self_ns": int(weight)})
    stacks.sort(key=lambda e: e["stack"])
    return stacks


def to_speedscope(doc: Dict[str, Any], name: str = "repro-prof") -> Dict[str, Any]:
    """Speedscope sampled-profile file (https://www.speedscope.app).

    Each distinct stack path becomes one sample weighted by its self
    wall time; the flamegraph view then shows exactly the profiler's
    self/cumulative attribution.
    """
    frames: List[Dict[str, str]] = []
    index: Dict[str, int] = {}
    samples: List[List[int]] = []
    weights: List[int] = []
    for entry in sorted(doc.get("stacks", []), key=lambda e: e["stack"]):
        stack_idx = []
        for key in entry["stack"]:
            if key not in index:
                index[key] = len(frames)
                frames.append({"name": key})
            stack_idx.append(index[key])
        samples.append(stack_idx)
        weights.append(entry["self_ns"])
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "nanoseconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
        "exporter": "repro-prof",
        "name": name,
    }


def to_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome trace-event document for the host profile.

    Emits a synthetic icicle (one complete ``X`` span per stack path,
    laid out contiguously by self time) plus per-key ``C`` counter
    events carrying call counts, all under a dedicated profiler pid —
    loadable standalone in ``chrome://tracing`` / Perfetto, or merged
    with a flight-recorder trace via :func:`merge_chrome`.
    """
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _PROF_PID, "tid": 0,
         "args": {"name": "repro host profiler (wall clock)"}},
        {"name": "thread_name", "ph": "M", "pid": _PROF_PID, "tid": 0,
         "args": {"name": "self time by stack"}},
    ]
    cursor = 0.0
    for entry in sorted(doc.get("stacks", []), key=lambda e: e["stack"]):
        dur_us = entry["self_ns"] / 1e3
        depth = 0
        for key in entry["stack"]:
            events.append({
                "name": key, "ph": "X", "pid": _PROF_PID, "tid": 0,
                "ts": round(cursor, 3), "dur": round(dur_us, 3),
                "args": {"depth": depth},
            })
            depth += 1
        cursor += dur_us
    ts = 0.0
    for key, frame in sorted(doc.get("frames", {}).items()):
        events.append({
            "name": f"calls:{key}", "ph": "C", "pid": _PROF_PID, "tid": 0,
            "ts": round(ts, 3), "args": {"calls": frame["calls"]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro-prof",
            "schema": doc.get("schema"),
            "total_self_ns": doc.get("total_self_ns", 0),
        },
    }


def merge_chrome(flight_trace: Dict[str, Any],
                 prof_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Merge a host profile into a ``repro-flight`` Chrome trace.

    The flight recorder's simulated-time spans keep pid 0; the host
    profiler's wall-clock events ride along under pid 1, so one file
    shows both attributions side by side.
    """
    merged = dict(flight_trace)
    merged["traceEvents"] = (list(flight_trace.get("traceEvents", []))
                             + to_chrome(prof_doc)["traceEvents"])
    other = dict(flight_trace.get("otherData", {}))
    other["host_profile"] = prof_doc.get("schema")
    merged["otherData"] = other
    return merged
