"""Profile diffing: attribute a bench regression to the keys that moved.

The comparison is *share*-based: each key's self time is normalized to
its share of the profile's total self time, which cancels machine
speed and background load between the two runs.  A key is a mover only
when its share, its ratio, and its absolute self time all moved past
their floors — so two same-seed runs on one machine report nothing,
while a 2x slowdown injected into one station clears every bar at
once.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple


class Mover(NamedTuple):
    key: str
    direction: str          # "slower" | "faster"
    self_a_ns: int
    self_b_ns: int
    share_a: float          # fraction of total self time in profile A
    share_b: float
    ratio: float            # self_b / self_a (inf for new keys)

    @property
    def share_delta_pts(self) -> float:
        return (self.share_b - self.share_a) * 100.0


def diff_profiles(a: Dict[str, Any], b: Dict[str, Any],
                  min_share_pts: float = 5.0,
                  min_ratio: float = 1.5,
                  min_self_ms: float = 1.0) -> List[Mover]:
    """Movers between profile ``a`` (baseline) and ``b`` (candidate).

    A key moves when, in either direction, its share of total self
    time changed by ≥ ``min_share_pts`` percentage points AND its self
    time changed by ≥ ``min_ratio``x AND the absolute change is ≥
    ``min_self_ms`` milliseconds.  Sorted by share delta, largest
    first.
    """
    frames_a = a.get("frames", {})
    frames_b = b.get("frames", {})
    total_a = max(1, a.get("total_self_ns") or 1)
    total_b = max(1, b.get("total_self_ns") or 1)
    movers: List[Mover] = []
    for key in sorted(set(frames_a) | set(frames_b)):
        self_a = frames_a.get(key, {}).get("self_ns", 0)
        self_b = frames_b.get(key, {}).get("self_ns", 0)
        share_a = self_a / total_a
        share_b = self_b / total_b
        delta_pts = abs(share_b - share_a) * 100.0
        delta_ns = abs(self_b - self_a)
        if delta_pts < min_share_pts or delta_ns < min_self_ms * 1e6:
            continue
        lo, hi = min(self_a, self_b), max(self_a, self_b)
        ratio = (hi / lo) if lo else float("inf")
        if ratio < min_ratio:
            continue
        movers.append(Mover(
            key=key,
            direction="slower" if share_b > share_a else "faster",
            self_a_ns=self_a, self_b_ns=self_b,
            share_a=share_a, share_b=share_b,
            ratio=(self_b / self_a) if self_a else float("inf")))
    movers.sort(key=lambda m: (-abs(m.share_b - m.share_a), m.key))
    return movers


def format_movers(movers: List[Mover]) -> str:
    """Human table for ``repro-prof diff`` output."""
    if not movers:
        return "no significant movers\n"
    lines = [f"{'KEY':<36} {'DIR':<7} {'SELF A':>10} {'SELF B':>10} "
             f"{'SHARE A':>8} {'SHARE B':>8} {'RATIO':>7}"]
    for m in movers:
        ratio = "new" if m.ratio == float("inf") else f"{m.ratio:6.2f}x"
        lines.append(
            f"{m.key:<36} {m.direction:<7} "
            f"{m.self_a_ns / 1e6:9.2f}m {m.self_b_ns / 1e6:9.2f}m "
            f"{m.share_a:8.1%} {m.share_b:8.1%} {ratio:>7}")
    return "\n".join(lines) + "\n"
