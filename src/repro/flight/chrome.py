"""Chrome trace-event export of flight records.

Emits the JSON object format of the Chrome trace-event spec (the format
``chrome://tracing`` and https://ui.perfetto.dev both load): complete
events (``ph: "X"``) per span, instant events (``ph: "i"``) per marker,
and metadata events naming one thread ("track") per station.

Timestamps in the spec are microseconds; simulated picoseconds are
divided by 1e6 (so 1 simulated ns renders as 0.001us) and the exact
integer picosecond values are preserved in each event's ``args``.
``displayTimeUnit: "ns"`` makes the UIs label the scale sensibly.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Union

from repro.flight.recorder import FlightRecord

_PID = 0
_PS_PER_US = 1_000_000


def _station_tids(records: Iterable[FlightRecord]) -> Dict[str, int]:
    stations = sorted({s.station for r in records for s in r.spans}
                      | {i.station for r in records for i in r.instants})
    return {station: tid for tid, station in enumerate(stations)}


def to_chrome_trace(records: Iterable[FlightRecord],
                    extra_metadata: Union[Dict[str, object], None] = None
                    ) -> Dict[str, object]:
    """Build the trace-event JSON object for ``records``."""
    records = list(records)
    tids = _station_tids(records)
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": "repro simulated pipeline"},
    }]
    for station, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"name": station}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"sort_index": tid}})

    for record in records:
        ident = record.req_id if record.req_id is not None else "?"
        for span in record.spans:
            args: Dict[str, object] = {
                "req": ident,
                "op": record.op,
                "addr": f"0x{record.addr:x}",
                "start_ps": span.start_ps,
                "end_ps": span.end_ps,
            }
            if span.detail:
                args.update(span.detail)
            events.append({
                "name": f"{span.station}:{span.phase}",
                "cat": record.op,
                "ph": "X",
                "pid": _PID,
                "tid": tids[span.station],
                "ts": span.start_ps / _PS_PER_US,
                "dur": span.duration_ps / _PS_PER_US,
                "args": args,
            })
        for marker in record.instants:
            args = {"req": ident, "ts_ps": marker.ts_ps}
            if marker.detail:
                args.update(marker.detail)
            events.append({
                "name": f"{marker.station}:{marker.name}",
                "cat": record.op,
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tids[marker.station],
                "ts": marker.ts_ps / _PS_PER_US,
                "args": args,
            })

    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"time_base": "simulated picoseconds / 1e6",
                      "records": len(records)},
    }
    if extra_metadata:
        trace["otherData"].update(extra_metadata)  # type: ignore[union-attr]
    return trace


def save_chrome_trace(records: Iterable[FlightRecord],
                      dest: Union[str, IO[str]],
                      extra_metadata: Union[Dict[str, object], None] = None
                      ) -> int:
    """Write the trace to ``dest`` (path or text file object).

    Returns the number of events written.
    """
    trace = to_chrome_trace(records, extra_metadata)
    if hasattr(dest, "write"):
        json.dump(trace, dest)  # type: ignore[arg-type]
    else:
        with open(dest, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            json.dump(trace, fh)
    return len(trace["traceEvents"])  # type: ignore[arg-type]
