"""Latency-breakdown attribution over flight records.

A request's spans form a call tree over its ``[issue_ps, complete_ps)``
window — the RMW-buffer span nests inside the DIMM-LSQ residency, which
nests inside the iMC queue residency.  To decompose the end-to-end
latency into *disjoint* per-stage shares we sweep the window and charge
every instant to the **innermost** span covering it (latest start wins;
ties go to the span that ends first, then to the most deeply recorded
one).  Time covered by no span is charged to ``"other"``.

This construction guarantees that per-request stage durations sum
*exactly* to the request's end-to-end latency, so the per-stage means of
a :class:`LatencyBreakdown` sum to the mean latency — the invariant the
acceptance tests check.  Spans past ``complete_ps`` (a store's
asynchronous drain to media after its ADR accept) are clipped out of the
breakdown but still appear in the exported trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, floor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.flight.recorder import FlightRecord

#: stage name charged with time no station span covers
OTHER = "other"


def attribute(record: FlightRecord) -> Dict[str, int]:
    """Disjoint per-station time shares of one request (picoseconds).

    Values sum exactly to ``record.latency_ps``; uncovered time is
    returned under :data:`OTHER`.
    """
    lo, hi = record.issue_ps, record.complete_ps
    if hi <= lo:
        return {}
    clipped: List[Tuple[int, int, str, int]] = []
    for index, span in enumerate(record.spans):
        start = span.start_ps if span.start_ps > lo else lo
        end = span.end_ps if span.end_ps < hi else hi
        if end > start:
            clipped.append((start, end, span.station, index))

    shares: Dict[str, int] = {}
    if not clipped:
        shares[OTHER] = hi - lo
        return shares

    bounds = sorted({lo, hi, *(c[0] for c in clipped), *(c[1] for c in clipped)})
    for left, right in zip(bounds, bounds[1:]):
        owner = OTHER
        best: Optional[Tuple[int, int, int]] = None
        for start, end, station, index in clipped:
            if start <= left and end >= right:
                # innermost wins: latest start, then earliest end, then
                # deepest (most recently recorded) span
                key = (start, -end, index)
                if best is None or key > best:
                    best = key
                    owner = station
        shares[owner] = shares.get(owner, 0) + (right - left)
    return shares


def _pct(ordered: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sequence."""
    if not ordered:
        return 0.0
    rank = (pct / 100.0) * (len(ordered) - 1)
    low, high = int(floor(rank)), int(ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass
class StageStats:
    """Distribution of one stage's per-request latency share."""

    station: str
    mean_ps: float
    p50_ps: float
    p99_ps: float
    #: fraction of total mean latency attributed to this stage
    share: float

    def as_dict(self) -> Dict[str, float]:
        return {"mean_ps": self.mean_ps, "p50_ps": self.p50_ps,
                "p99_ps": self.p99_ps, "share": self.share}


@dataclass
class LatencyBreakdown:
    """Per-stage decomposition of end-to-end latency for one op kind."""

    op: str
    count: int
    mean_ps: float
    p50_ps: float
    p99_ps: float
    stages: List[StageStats] = field(default_factory=list)
    #: stage with the largest mean share (never :data:`OTHER` unless it
    #: is the only stage)
    bottleneck: str = ""

    @classmethod
    def from_records(cls, records: Iterable[FlightRecord],
                     op: Optional[str] = None) -> "LatencyBreakdown":
        """Aggregate attribution over ``records`` (optionally one op)."""
        selected = [r for r in records
                    if (op is None or r.op == op) and r.complete_ps > r.issue_ps]
        if not selected:
            return cls(op=op or "all", count=0, mean_ps=0.0,
                       p50_ps=0.0, p99_ps=0.0)
        per_request = [attribute(r) for r in selected]
        stations = sorted({s for shares in per_request for s in shares})
        totals = sorted(r.latency_ps for r in selected)
        mean_total = sum(totals) / len(totals)

        stages: List[StageStats] = []
        for station in stations:
            values = sorted(shares.get(station, 0) for shares in per_request)
            mean = sum(values) / len(values)
            stages.append(StageStats(
                station=station,
                mean_ps=mean,
                p50_ps=_pct(values, 50),
                p99_ps=_pct(values, 99),
                share=mean / mean_total if mean_total else 0.0,
            ))
        stages.sort(key=lambda s: -s.mean_ps)
        named = [s for s in stages if s.station != OTHER] or stages
        return cls(
            op=op or "all",
            count=len(selected),
            mean_ps=mean_total,
            p50_ps=_pct(totals, 50),
            p99_ps=_pct(totals, 99),
            stages=stages,
            bottleneck=named[0].station if named else "",
        )

    def render(self) -> str:
        """Aligned-text stage table (nanoseconds)."""
        head = (f"latency breakdown [{self.op}] n={self.count} "
                f"mean={self.mean_ps / 1000:.1f}ns "
                f"p50={self.p50_ps / 1000:.1f}ns "
                f"p99={self.p99_ps / 1000:.1f}ns")
        if not self.stages:
            return head + "\n  (no records)"
        rows = [head,
                f"  {'stage':<16} {'mean ns':>9} {'p50 ns':>9} "
                f"{'p99 ns':>9} {'share':>6}"]
        for stage in self.stages:
            marker = " <- bottleneck" if stage.station == self.bottleneck else ""
            rows.append(
                f"  {stage.station:<16} {stage.mean_ps / 1000:>9.1f} "
                f"{stage.p50_ps / 1000:>9.1f} {stage.p99_ps / 1000:>9.1f} "
                f"{stage.share:>6.1%}{marker}")
        return "\n".join(rows)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (attached to ``ExperimentResult.flight``)."""
        return {
            "op": self.op,
            "count": self.count,
            "mean_ps": self.mean_ps,
            "p50_ps": self.p50_ps,
            "p99_ps": self.p99_ps,
            "bottleneck": self.bottleneck,
            "stages": {s.station: s.as_dict() for s in self.stages},
        }


def breakdowns(records: Sequence[FlightRecord]
               ) -> Dict[str, LatencyBreakdown]:
    """One :class:`LatencyBreakdown` per op kind present in ``records``."""
    ops = sorted({r.op for r in records})
    return {op: LatencyBreakdown.from_records(records, op=op) for op in ops}


def breakdown_by_size(records: Sequence[FlightRecord]
                      ) -> Dict[Tuple[str, int], LatencyBreakdown]:
    """One breakdown per (op, access size) point — the table the paper's
    "why is this slow at 16MB" questions need."""
    keys = sorted({(r.op, r.size) for r in records})
    out: Dict[Tuple[str, int], LatencyBreakdown] = {}
    for op, size in keys:
        subset = [r for r in records if r.op == op and r.size == size]
        out[(op, size)] = LatencyBreakdown.from_records(subset, op=op)
    return out
