"""The per-request flight recorder.

The instrumentation bus (:mod:`repro.instrument`) answers *how much* —
aggregate counters and gauges over a whole run.  The flight recorder
answers *where did this request's time go*: every station a request
crosses (iMC queues, the DDR-T link, the DIMM LSQ, the RMW buffer, AIT
translation, wear-leveling, 3D-XPoint media) records a span with
simulated-picosecond timestamps onto the request currently in flight.

Design mirrors the ``NULL_BUS`` pattern:

* :data:`NULL_FLIGHT` is the zero-cost default — ``enabled`` and
  ``active`` are plain ``False`` class attributes, so hot paths guard
  span recording with one attribute load and a branch;
* a real :class:`FlightRecorder` is *enabled* always but *active* only
  while the current request was selected by the sampling policy
  (record-all, 1-in-N, or reservoir), so a sampled run pays recording
  cost only on the sampled fraction;
* recorders nest: a wrapper system (Memory Mode, ``TargetSystem.submit``,
  the CPU miss path) may ``begin`` a request that internally issues more
  ``begin``/``end`` pairs — only the outermost pair delimits the record,
  inner spans accrue to it.

Everything recorded is simulated time; no wall-clock value ever enters a
record, so flight-recorded runs stay bit-deterministic.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import make_rng

#: sampling policies understood by :class:`FlightRecorder`
MODES = ("all", "every", "reservoir")


@dataclass
class SpanEvent:
    """One station crossing: ``[start_ps, end_ps)`` at ``station``.

    ``phase`` distinguishes what the station was doing ("wait" in a full
    queue vs "service"); ``detail`` carries small structured annotations
    (channel index, media partition, hit/miss) that end up in the
    exported trace's ``args``.
    """

    __slots__ = ("station", "phase", "start_ps", "end_ps", "detail")

    station: str
    phase: str
    start_ps: int
    end_ps: int
    detail: Optional[Dict[str, object]]

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


@dataclass
class InstantEvent:
    """A zero-duration marker (e.g. a Lazy-cache eviction)."""

    __slots__ = ("station", "name", "ts_ps", "detail")

    station: str
    name: str
    ts_ps: int
    detail: Optional[Dict[str, object]]


@dataclass
class FlightRecord:
    """Everything recorded about one memory request."""

    op: str
    addr: int
    size: int
    issue_ps: int
    complete_ps: int = 0
    req_id: Optional[int] = None
    spans: List[SpanEvent] = field(default_factory=list)
    instants: List[InstantEvent] = field(default_factory=list)

    @property
    def latency_ps(self) -> int:
        return self.complete_ps - self.issue_ps


class NullFlightRecorder:
    """No-op recorder: the zero-cost default on every component."""

    __slots__ = ()

    enabled = False
    active = False

    def begin(self, op: str, addr: int, size: int = 64, issue_ps: int = 0,
              req_id: Optional[int] = None) -> None:
        pass

    def span(self, station: str, start_ps: int, end_ps: int,
             phase: str = "service", **detail) -> None:
        pass

    def instant(self, station: str, name: str, ts_ps: int, **detail) -> None:
        pass

    def end(self, complete_ps: int) -> None:
        pass

    def amend(self, station: str, start_ps: int, end_ps: int,
              phase: str = "service", **detail) -> None:
        pass

    @property
    def last(self) -> Optional[FlightRecord]:
        return None


#: shared no-op recorder; holds no state, safe to pass around.
NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder:
    """Samples requests and records their station-crossing spans.

    Args:
        mode: ``"all"`` records every request; ``"every"`` records one
            request in ``every``; ``"reservoir"`` keeps a uniform random
            sample of ``capacity`` requests (deterministic, seeded).
        every: the N of 1-in-N sampling (``mode="every"``).
        capacity: reservoir size (``mode="reservoir"``).
        seed: reservoir RNG seed (ignored by the other modes).
    """

    enabled = True

    def __init__(self, mode: str = "all", every: int = 1,
                 capacity: int = 4096, seed: int = 0) -> None:
        if mode not in MODES:
            raise ConfigError(
                f"unknown flight sampling mode {mode!r}; expected one of {MODES}")
        if mode == "every" and every < 1:
            raise ConfigError(f"sampling interval must be >= 1, got {every}")
        if mode == "reservoir" and capacity < 1:
            raise ConfigError(f"reservoir capacity must be >= 1, got {capacity}")
        self.mode = mode
        self.every = every
        self.capacity = capacity
        self.records: List[FlightRecord] = []
        #: requests begun (depth-0) since construction
        self.seen = 0
        #: sampled-out requests (never recorded or reservoir-evicted)
        self.dropped = 0
        self.active = False
        self._rng = make_rng(seed, "flight-reservoir")
        self._current: Optional[FlightRecord] = None
        self._depth = 0

    # -- request lifecycle ---------------------------------------------

    def begin(self, op: str, addr: int, size: int = 64, issue_ps: int = 0,
              req_id: Optional[int] = None) -> None:
        """Open a request.  Nested calls (wrapper systems forwarding to
        inner ones) fold into the outermost open request."""
        self._depth += 1
        if self._depth > 1:
            return
        self.seen += 1
        if self.mode == "every" and (self.seen - 1) % self.every:
            self.dropped += 1
            return
        self._current = FlightRecord(op=op, addr=addr, size=size,
                                     issue_ps=issue_ps, req_id=req_id)
        self.active = True

    def span(self, station: str, start_ps: int, end_ps: int,
             phase: str = "service", **detail) -> None:
        """Record one station crossing of the current request.

        Zero/negative-length spans are dropped — a station that did not
        hold the request contributes nothing to its latency.
        """
        if not self.active or end_ps <= start_ps:
            return
        self._current.spans.append(
            SpanEvent(station, phase, start_ps, end_ps, detail or None))

    def instant(self, station: str, name: str, ts_ps: int, **detail) -> None:
        """Record a zero-duration marker on the current request."""
        if not self.active:
            return
        self._current.instants.append(
            InstantEvent(station, name, ts_ps, detail or None))

    def end(self, complete_ps: int) -> None:
        """Close the innermost ``begin``; the outermost close files the
        record according to the sampling policy."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        record, self._current = self._current, None
        self.active = False
        if record is None:
            return
        record.complete_ps = complete_ps
        if self.mode == "reservoir" and len(self.records) >= self.capacity:
            slot = self._rng.randrange(self.seen)
            if slot < self.capacity:
                self.dropped += 1
                self.records[slot] = record
            else:
                self.dropped += 1
            return
        self.records.append(record)

    def amend(self, station: str, start_ps: int, end_ps: int,
              phase: str = "service", **detail) -> None:
        """Append a span to the most recently *completed* record.

        Used by callers that only learn a duration after the request
        closed — e.g. the CPU model wrapping a backend access.
        """
        if not self.records or end_ps <= start_ps:
            return
        self.records[-1].spans.append(
            SpanEvent(station, phase, start_ps, end_ps, detail or None))

    # -- reading -------------------------------------------------------

    @property
    def last(self) -> Optional[FlightRecord]:
        """The most recently completed record, if any survived sampling."""
        return self.records[-1] if self.records else None

    def sampling_summary(self) -> Dict[str, object]:
        """Self-describing sampling metadata for reports/exports."""
        return {
            "mode": self.mode,
            "every": self.every,
            "capacity": self.capacity,
            "seen": self.seen,
            "kept": len(self.records),
            "dropped": self.dropped,
        }


# ----------------------------------------------------------------------
# session: route registry-built systems onto one recorder
# ----------------------------------------------------------------------

_ACTIVE_SESSIONS: List[FlightRecorder] = []


def current() -> "FlightRecorder | NullFlightRecorder":
    """The innermost active session recorder, or :data:`NULL_FLIGHT`."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else NULL_FLIGHT


@contextmanager
def session(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Attach ``recorder`` to every system the target registry builds
    while the context is active (mirrors
    :class:`repro.instrument.Collection`)."""
    _ACTIVE_SESSIONS.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE_SESSIONS.remove(recorder)
