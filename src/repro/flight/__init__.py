"""Per-request flight recorder: span events, sampling, breakdown, export.

The instrumentation bus aggregates; the flight recorder explains.  See
``docs/ARCHITECTURE.md`` ("Observability") for the split and the span
schema.
"""

from repro.flight.chrome import save_chrome_trace, to_chrome_trace
from repro.flight.recorder import (
    MODES,
    NULL_FLIGHT,
    FlightRecord,
    FlightRecorder,
    InstantEvent,
    NullFlightRecorder,
    SpanEvent,
    current,
    session,
)
from repro.flight.report import (
    OTHER,
    LatencyBreakdown,
    StageStats,
    attribute,
    breakdown_by_size,
    breakdowns,
)

__all__ = [
    "MODES",
    "NULL_FLIGHT",
    "OTHER",
    "FlightRecord",
    "FlightRecorder",
    "InstantEvent",
    "LatencyBreakdown",
    "NullFlightRecorder",
    "SpanEvent",
    "StageStats",
    "attribute",
    "breakdown_by_size",
    "breakdowns",
    "current",
    "save_chrome_trace",
    "session",
    "to_chrome_trace",
]
