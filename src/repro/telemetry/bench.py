"""repro-bench: continuous benchmarking over the experiment suite.

One invocation runs a named suite of experiments, measures each one
(wall-clock seconds, simulated requests executed, requests per wall
second, key model outputs), stamps the whole run with a manifest, and
writes a schema'd ``BENCH_<date>.json``.  A later invocation — or CI —
diffs a fresh run against the latest committed baseline and fails
(exit 3) on regressions beyond a threshold.

Two families of signals, gated separately because they drift for
different reasons:

* **metrics** — the experiments' model outputs (latencies, hit rates,
  amplification factors).  Deterministic: any change means the *model*
  changed, so CI gates on these with a tight threshold;
* **perf** — wall seconds, requests/sec, peak RSS.  Machine-dependent:
  gate locally when chasing performance, not in shared CI.
"""

from __future__ import annotations

import fnmatch
import os
import time
import traceback
from typing import Dict, List, Mapping, Optional, Tuple

from repro.experiments.common import Scale
from repro.telemetry.manifest import MANIFEST_SCHEMA, run_manifest

#: bench document version (bump on breaking key changes).  /2 adds a
#: per-entry ``kernel_stats`` snapshot to the kernel suite; /1
#: documents remain valid baselines (the extra key is never gated).
BENCH_SCHEMA = "repro.bench/2"

#: schemas accepted as baselines by :func:`validate_bench`
BENCH_SCHEMAS = ("repro.bench/1", BENCH_SCHEMA)

#: instrumentation counters that count one memory request each — the
#: denominator-free "how much simulated work happened" measure shared
#: by all target families
REQUEST_KEYS = (
    "imc.reads", "imc.writes", "imc.fences",
    "slowdram.reads", "slowdram.writes",
    "memmode.hits", "memmode.misses",
)

#: suite name -> experiment ids (resolved against the runner registry)
SUITES: Dict[str, Tuple[str, ...]] = {
    # CI smoke: fast, covers VANS + a baseline + the table inventory
    "smoke": ("fig1", "tables"),
    # the paper's validation figures
    "validation": ("fig9", "fig10", "fig11"),
    # LENS probing stack
    "lens": ("fig5", "fig6", "fig7"),
    # everything in the registry
    "full": (),
    # simulation-kernel microbenchmarks: optimized calendar kernel vs
    # the seed binary heap on identical deterministic workloads (not
    # experiment ids — handled by run_suite directly)
    "kernel": (),
}


def suite_ids(suite: str) -> List[str]:
    """Experiment ids for a named suite (``full`` -> whole registry)."""
    from repro.experiments.runner import REGISTRY, validate_ids
    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; known: {', '.join(sorted(SUITES))}")
    if suite == "kernel":
        from repro.engine.kernelbench import CASES
        from repro.shard.bench import CASES as SHARD_CASES
        return [f"kernel.{case}" for case in CASES] \
            + [f"shard.{case}" for case in SHARD_CASES]
    ids = SUITES[suite]
    return validate_ids(list(ids)) if ids else list(REGISTRY)


def _peak_rss_kb() -> Optional[int]:
    """Peak RSS of this process in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:          # non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":
        return usage // 1024
    return usage


def _count_requests(instrumentation: Mapping[str, object]) -> int:
    return int(sum(instrumentation.get(key, 0) or 0
                   for key in REQUEST_KEYS))


def run_suite(suite: str, scale: Scale = Scale.SMOKE,
              seed: Optional[int] = None,
              config: Optional[Mapping[str, object]] = None
              ) -> Dict[str, object]:
    """Run a suite and return the bench document (not yet written).

    Experiments run serially (perf numbers from a loaded parallel
    machine would gate on scheduler noise, not code).

    One raising experiment does not lose the whole run: its entry keeps
    the required numeric keys (zeroed) plus an ``"error"`` traceback,
    and the document's ``"completed"`` flag flips to False so callers
    can persist the partial artifact and exit distinctly.
    """
    from repro.experiments.runner import DEFAULT_SEED, run_experiment
    base_seed = DEFAULT_SEED if seed is None else seed
    if suite == "kernel":
        return _run_kernel_suite(scale, base_seed, config)
    ids = suite_ids(suite)
    experiments: Dict[str, object] = {}
    total_wall = 0.0
    total_requests = 0
    completed = True
    for exp_id in ids:
        start = time.time()
        try:
            results = run_experiment(exp_id, scale, base_seed)
        except Exception:
            completed = False
            experiments[exp_id] = {
                "wall_s": round(time.time() - start, 4),
                "requests": 0,
                "requests_per_s": 0.0,
                "metrics": {},
                "error": traceback.format_exc(),
            }
            continue
        wall_s = time.time() - start
        requests = _count_requests(results[0].instrumentation) \
            if results else 0
        metrics: Dict[str, float] = {}
        for result in results:
            for key, value in result.metrics.items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                metrics[f"{result.experiment}.{key}"] = value
        experiments[exp_id] = {
            "wall_s": round(wall_s, 4),
            "requests": requests,
            "requests_per_s": round(requests / wall_s, 2) if wall_s > 0
            else 0.0,
            "metrics": metrics,
        }
        total_wall += wall_s
        total_requests += requests
    doc: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "scale": scale.value,
        "seed": base_seed,
        "completed": completed,
        "manifest": run_manifest(
            seed=base_seed,
            config=dict(config or {}, suite=suite, scale=scale.value)),
        "experiments": experiments,
        "totals": {
            "wall_s": round(total_wall, 4),
            "requests": total_requests,
            "requests_per_s": round(total_requests / total_wall, 2)
            if total_wall > 0 else 0.0,
            "peak_rss_kb": _peak_rss_kb(),
        },
    }
    return doc


def _run_kernel_suite(scale: Scale, seed: int,
                      config: Optional[Mapping[str, object]]
                      ) -> Dict[str, object]:
    """Bench document for the simulation-kernel microbenchmarks.

    Each case is one pseudo-experiment ``kernel.<case>``: the standard
    ``wall_s``/``requests``/``requests_per_s`` report the *optimized*
    kernel (so the continuous baseline tracks what production runs use),
    while the entry additionally carries the legacy-heap numbers from
    the same run and the same-runner ``speedup`` — which is what the CI
    relative gate checks (see ``repro-bench``'s kernel gate), keeping
    the pass/fail machine-independent.  The only gated *metric* is the
    deterministic firing-order checksum: both kernels must produce it
    identically here, and any cross-commit drift means event ordering
    changed.
    """
    from repro.engine.kernelbench import (
        PAPER_MULTIPLIER,
        SMOKE_EVENTS,
        run_kernel_bench,
    )
    from repro.shard.bench import PAPER_MULTIPLIER as SHARD_MULTIPLIER
    from repro.shard.bench import SMOKE_REQUESTS as SHARD_REQUESTS
    from repro.shard.bench import run_shard_bench
    nevents = SMOKE_EVENTS * (
        PAPER_MULTIPLIER if scale is Scale.PAPER else 1)
    experiments: Dict[str, object] = {}
    total_wall = 0.0
    total_requests = 0
    completed = True
    start = time.time()
    try:
        cases = {f"kernel.{case}": numbers for case, numbers
                 in run_kernel_bench(nevents=nevents, seed=seed).items()}
    except Exception:
        completed = False
        experiments["kernel"] = {
            "wall_s": round(time.time() - start, 4),
            "requests": 0,
            "requests_per_s": 0.0,
            "metrics": {},
            "error": traceback.format_exc(),
        }
        cases = {}
    # the sharded+vectorized execution path, same legacy-vs-optimized
    # contract (serial scalar authoritative, bit-identity enforced)
    shard_requests = SHARD_REQUESTS * (
        SHARD_MULTIPLIER if scale is Scale.PAPER else 1)
    start = time.time()
    try:
        shards = (config or {}).get("shards")
        cases.update(
            {f"shard.{case}": numbers for case, numbers
             in run_shard_bench(nrequests=shard_requests, seed=seed,
                                shards=shards).items()})
    except Exception:
        completed = False
        experiments["shard"] = {
            "wall_s": round(time.time() - start, 4),
            "requests": 0,
            "requests_per_s": 0.0,
            "metrics": {},
            "error": traceback.format_exc(),
        }
    for case, numbers in cases.items():
        wall_s = float(numbers["optimized_wall_s"])
        events = int(numbers["events"])
        experiments[case] = {
            "wall_s": round(wall_s, 4),
            "requests": events,
            "requests_per_s": round(float(numbers["optimized_events_per_s"]),
                                    2),
            "metrics": {
                f"{case}.order_checksum":
                    float(numbers["order_checksum"]),
            },
            "legacy_wall_s": round(float(numbers["legacy_wall_s"]), 4),
            "legacy_events_per_s": round(
                float(numbers["legacy_events_per_s"]), 2),
            "speedup": round(float(numbers["speedup"]), 3),
            # engine health snapshot (bucket occupancy, far migrations,
            # compactions, pool hit rate, batch histogram) — recorded
            # for observability, never gated: diff_bench only compares
            # metrics/requests/wall_s/requests_per_s
            "kernel_stats": numbers.get("kernel_stats", {}),
        }
        total_wall += wall_s
        total_requests += events
    return {
        "schema": BENCH_SCHEMA,
        "suite": "kernel",
        "scale": scale.value,
        "seed": seed,
        "completed": completed,
        "manifest": run_manifest(
            seed=seed,
            config=dict(config or {}, suite="kernel", scale=scale.value)),
        "experiments": experiments,
        "totals": {
            "wall_s": round(total_wall, 4),
            "requests": total_requests,
            "requests_per_s": round(total_requests / total_wall, 2)
            if total_wall > 0 else 0.0,
            "peak_rss_kb": _peak_rss_kb(),
        },
    }


def kernel_gate(doc: Mapping[str, object]) -> List[str]:
    """Same-runner relative gate for a kernel-suite document.

    Returns one violation line per case where the optimized kernel was
    *slower* than the legacy heap in the same run (``speedup < 1``).
    Both kernels ran back-to-back on the same machine, so this gate is
    load- and hardware-independent in a way absolute thresholds are not.
    """
    violations: List[str] = []
    experiments = doc.get("experiments", {})
    if not isinstance(experiments, Mapping):
        return violations
    for exp_id in sorted(experiments):
        entry = experiments[exp_id]
        if not isinstance(entry, Mapping) or "speedup" not in entry:
            continue
        speedup = entry["speedup"]
        if isinstance(speedup, (int, float)) and speedup < 1.0:
            violations.append(
                f"{exp_id}: optimized kernel slower than legacy heap "
                f"(speedup {speedup:.3f}x, "
                f"{entry.get('requests_per_s', 0):.0f} vs "
                f"{entry.get('legacy_events_per_s', 0):.0f} events/s)")
    return violations


def validate_bench(doc: Mapping[str, object]) -> List[str]:
    """Structural check of a bench document; empty list when valid."""
    problems: List[str] = []
    if doc.get("schema") not in BENCH_SCHEMAS:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"one of {', '.join(BENCH_SCHEMAS)}")
    for key in ("suite", "scale", "manifest", "experiments", "totals"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    # "completed" is optional (documents written before partial-run
    # support lack it and stay valid baselines) but must be a bool
    # when present.
    if "completed" in doc and not isinstance(doc["completed"], bool):
        problems.append("'completed' is not a bool")
    manifest = doc.get("manifest")
    if isinstance(manifest, Mapping) and \
            manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append("manifest has wrong schema")
    experiments = doc.get("experiments")
    if isinstance(experiments, Mapping):
        for exp_id, entry in experiments.items():
            if not isinstance(entry, Mapping):
                problems.append(f"experiment {exp_id!r} entry not a mapping")
                continue
            for key in ("wall_s", "requests", "requests_per_s", "metrics"):
                if key not in entry:
                    problems.append(f"experiment {exp_id!r} missing {key!r}")
    return problems


def find_baseline(directory: str, exclude: Optional[str] = None
                  ) -> Optional[str]:
    """Path of the latest ``BENCH_*.json`` in ``directory`` by name.

    The date-stamped naming scheme makes lexicographic order
    chronological.  ``exclude`` (a basename) skips the file a run is
    about to overwrite, so today's output never diffs against itself.
    """
    try:
        names = sorted(
            n for n in os.listdir(directory)
            if fnmatch.fnmatch(n, "BENCH_*.json") and n != exclude)
    except OSError:
        return None
    return os.path.join(directory, names[-1]) if names else None


class Delta:
    """One compared value: old vs new with relative change."""

    __slots__ = ("key", "kind", "old", "new")

    def __init__(self, key: str, kind: str, old: float, new: float) -> None:
        self.key = key
        self.kind = kind          # "metric" | "perf"
        self.old = old
        self.new = new

    @property
    def rel(self) -> float:
        """Relative change (0 when both sides are 0)."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)

    def exceeds(self, threshold: float) -> bool:
        return abs(self.rel) > threshold

    def render(self) -> str:
        rel = self.rel
        pct = "inf" if rel == float("inf") else f"{rel * 100:+.2f}%"
        return (f"{self.kind:6s} {self.key}: "
                f"{self.old:g} -> {self.new:g} ({pct})")


def diff_bench(old: Mapping[str, object], new: Mapping[str, object]
               ) -> Dict[str, List[Delta]]:
    """Compare two bench documents.

    Returns ``{"metrics": [...], "perf": [...]}`` with every *changed*
    value; thresholds are applied by :func:`gate`, not here.
    Experiments present on only one side are skipped — a suite change is
    not a regression.
    """
    metric_deltas: List[Delta] = []
    perf_deltas: List[Delta] = []
    old_exps = old.get("experiments", {})
    new_exps = new.get("experiments", {})
    for exp_id in sorted(set(old_exps) & set(new_exps)):
        old_entry, new_entry = old_exps[exp_id], new_exps[exp_id]
        # a crashed experiment's zeroed entry is not a regression signal
        if "error" in old_entry or "error" in new_entry:
            continue
        old_metrics = old_entry.get("metrics", {})
        new_metrics = new_entry.get("metrics", {})
        for key in sorted(set(old_metrics) & set(new_metrics)):
            if old_metrics[key] != new_metrics[key]:
                metric_deltas.append(Delta(
                    key, "metric", old_metrics[key], new_metrics[key]))
        # request counts are deterministic model behavior too
        if old_entry.get("requests") != new_entry.get("requests"):
            metric_deltas.append(Delta(
                f"{exp_id}.requests", "metric",
                old_entry.get("requests", 0), new_entry.get("requests", 0)))
        for key in ("wall_s", "requests_per_s"):
            old_v, new_v = old_entry.get(key, 0), new_entry.get(key, 0)
            if old_v != new_v:
                perf_deltas.append(Delta(f"{exp_id}.{key}", "perf",
                                         old_v, new_v))
    return {"metrics": metric_deltas, "perf": perf_deltas}


def gate(deltas: Mapping[str, List[Delta]], mode: str,
         metric_threshold: float = 0.001,
         perf_threshold: float = 0.25) -> List[Delta]:
    """Deltas that violate the gate for ``mode``.

    ``mode`` is ``all`` | ``metrics`` | ``perf`` | ``none``.  Metrics
    gate tight (they are deterministic — any drift is a model change);
    perf gates loose (wall clock is machine- and load-dependent).  For
    perf only *slowdowns* gate: wall_s up or requests_per_s down.
    """
    if mode == "none":
        return []
    violations: List[Delta] = []
    if mode in ("all", "metrics"):
        violations.extend(d for d in deltas["metrics"]
                          if d.exceeds(metric_threshold))
    if mode in ("all", "perf"):
        for d in deltas["perf"]:
            slower = (d.rel > 0 if d.key.endswith("wall_s")
                      else d.rel < 0)
            if slower and d.exceeds(perf_threshold):
                violations.append(d)
    return violations
