"""Typed sim-time time-series: what the telemetry sampler produces.

A :class:`Timeline` is an ordered set of samples taken at simulated-time
boundaries; each sampled path becomes one :class:`TimeSeries` tagged
with its signal *kind*:

* ``counter`` — cumulative monotone values (instrument-bus counters,
  stats-registry counters, histogram ``.count``s).  Deltas and rates are
  derived views, so the stored series stays exact integers;
* ``gauge`` — levels evaluated at sample time (queue occupancy, busy
  picoseconds, wear blocks tracked);
* ``stat`` — distribution statistics at sample time (histogram
  ``.mean/.p50/.p99``).

Everything in a timeline is simulated time and deterministic state —
no wall-clock value ever enters one, so telemetry-enabled runs stay
bit-identical between serial and parallel execution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigError

#: signal kinds a series can carry
KINDS = ("counter", "gauge", "stat")

_PS_PER_S = 1_000_000_000_000


class TimeSeries:
    """One sampled path: parallel ``times_ps`` / ``values`` arrays."""

    __slots__ = ("path", "kind", "times_ps", "values")

    def __init__(self, path: str, kind: str) -> None:
        if kind not in KINDS:
            raise ConfigError(
                f"unknown series kind {kind!r}; expected one of {KINDS}")
        self.path = path
        self.kind = kind
        self.times_ps: List[int] = []
        self.values: List[float] = []

    def add(self, t_ps: int, value: float) -> None:
        self.times_ps.append(t_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterable[Tuple[int, float]]:
        return iter(zip(self.times_ps, self.values))

    @property
    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    def deltas(self) -> List[float]:
        """Per-sample increments (first sample counts from zero).

        Meaningful for ``counter`` series; for levels it is just the
        discrete difference.
        """
        out: List[float] = []
        prev = 0.0
        for value in self.values:
            out.append(value - prev)
            prev = value
        return out

    def rates_per_s(self) -> List[float]:
        """Deltas scaled to events per simulated second."""
        out: List[float] = []
        prev_t: Optional[int] = None
        prev_v = 0.0
        for t, value in zip(self.times_ps, self.values):
            dt = t - (prev_t if prev_t is not None else 0)
            out.append((value - prev_v) / (dt / _PS_PER_S) if dt > 0 else 0.0)
            prev_t, prev_v = t, value
        return out

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind,
                "t_ps": list(self.times_ps),
                "values": list(self.values)}


class Timeline:
    """All series sampled over one run, at a fixed sim-time interval."""

    def __init__(self, interval_ps: int) -> None:
        if interval_ps <= 0:
            raise ConfigError(
                f"telemetry interval must be positive, got {interval_ps}")
        self.interval_ps = interval_ps
        self.sample_times_ps: List[int] = []
        self.series: Dict[str, TimeSeries] = {}
        #: gauge paths whose callable raised during sampling (deduped,
        #: first-seen order)
        self.errors: List[str] = []

    # -- recording -----------------------------------------------------

    def _series(self, path: str, kind: str) -> TimeSeries:
        series = self.series.get(path)
        if series is None:
            series = TimeSeries(path, kind)
            self.series[path] = series
        return series

    def record(self, t_ps: int,
               counters: Mapping[str, float],
               gauges: Mapping[str, float],
               stats: Mapping[str, float],
               errors: Iterable[str] = ()) -> None:
        """Append one sample taken at simulated time ``t_ps``."""
        self.sample_times_ps.append(t_ps)
        for path, value in counters.items():
            self._series(path, "counter").add(t_ps, value)
        for path, value in gauges.items():
            self._series(path, "gauge").add(t_ps, value)
        for path, value in stats.items():
            self._series(path, "stat").add(t_ps, value)
        for path in errors:
            if path not in self.errors:
                self.errors.append(path)

    # -- reading -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.sample_times_ps)

    def paths(self, kind: Optional[str] = None) -> List[str]:
        """Sorted sampled paths, optionally filtered by kind."""
        return sorted(path for path, s in self.series.items()
                      if kind is None or s.kind == kind)

    @property
    def end_ps(self) -> int:
        return self.sample_times_ps[-1] if self.sample_times_ps else 0

    # -- (de)serialization ---------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (rides on ``ExperimentResult.telemetry`` and
        crosses process boundaries from parallel workers)."""
        return {
            "interval_ps": self.interval_ps,
            "samples": len(self.sample_times_ps),
            "sample_times_ps": list(self.sample_times_ps),
            "series": {path: s.as_dict()
                       for path, s in sorted(self.series.items())},
            "errors": list(self.errors),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "Timeline":
        timeline = cls(int(doc["interval_ps"]))
        timeline.sample_times_ps = [int(t) for t in doc["sample_times_ps"]]
        for path, entry in doc["series"].items():
            series = TimeSeries(path, str(entry["kind"]))
            series.times_ps = [int(t) for t in entry["t_ps"]]
            series.values = list(entry["values"])
            timeline.series[path] = series
        timeline.errors = list(doc.get("errors", ()))
        return timeline
