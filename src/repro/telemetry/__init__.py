"""Sim-time telemetry: time-series sampling, manifests, benchmarking.

Public surface:

* :class:`TelemetrySampler` / :data:`NULL_TELEMETRY` / :func:`session` —
  the sim-clock-driven sampler (zero-cost when disabled);
* :class:`Timeline` / :class:`TimeSeries` — the typed series it fills;
* :func:`run_manifest` / :func:`validate_manifest` — run attribution;
* :func:`render_timeline` / :func:`sparkline` / CSV and Chrome-counter
  exporters — ways to look at a timeline;
* :mod:`repro.telemetry.bench` — the ``repro-bench`` harness.
"""

from repro.telemetry.export import (
    render_timeline,
    save_chrome_counters,
    save_timelines_csv,
    sparkline,
    to_chrome_counters,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    config_hash,
    git_info,
    run_manifest,
    validate_manifest,
)
from repro.telemetry.sampler import (
    DEFAULT_INTERVAL_PS,
    NULL_TELEMETRY,
    NullTelemetry,
    TelemetrySampler,
    current,
    session,
)
from repro.telemetry.series import KINDS, TimeSeries, Timeline

__all__ = [
    "DEFAULT_INTERVAL_PS",
    "KINDS",
    "MANIFEST_SCHEMA",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TelemetrySampler",
    "TimeSeries",
    "Timeline",
    "config_hash",
    "current",
    "git_info",
    "render_timeline",
    "run_manifest",
    "save_chrome_counters",
    "save_timelines_csv",
    "session",
    "sparkline",
    "to_chrome_counters",
    "validate_manifest",
]
