"""Sim-clock-driven telemetry sampler over the instrumentation bus.

The instrumentation bus answers *how much, at the end*; the flight
recorder answers *where one request's time went*.  The telemetry sampler
answers the remaining question: *how did the run evolve* — queue depths,
bandwidth, wear activity, cache hit counts as a function of simulated
time.

Design mirrors ``NULL_BUS`` / ``NULL_FLIGHT`` exactly:

* :data:`NULL_TELEMETRY` is the zero-cost default on every component:
  ``enabled`` is a plain class-attribute ``False``, so hot paths guard
  ticking with one attribute load and a branch;
* a real :class:`TelemetrySampler` is installed for a run via
  :func:`session`; the target registry attaches the active sampler to
  every system it builds (and the systems tick it as their simulated
  clock advances);
* everything sampled is simulated time and deterministic simulator
  state.  No wall-clock value ever enters a timeline, so serial and
  ``--workers N`` runs produce bit-identical telemetry.

Sampling is driven by *ticks*: each completed request (and each event
the discrete-event :class:`~repro.engine.event.Engine` fires, when one
is wired) reports the current simulated time.  When the clock crosses an
interval boundary the sampler takes one typed snapshot of every attached
system — counters (stats-registry and bus), pull-gauges (evaluated with
the same error resilience as :meth:`InstrumentBus.snapshot`), and
histogram statistics — and appends it to the :class:`Timeline`.

Harnesses that rebuild a fresh system per sweep point restart the
simulated clock at zero; each newly attached system therefore opens a
new *clock domain*, and the sampler folds the previous domain's extent
into a monotone *run clock*, so a timeline always reads left-to-right
over the whole run.  Within a domain, requests may complete out of order
(FCFS banks drain independently); the run clock tracks the high-water
mark, so out-of-order completions never move time backwards.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.units import US
from repro.engine.stats import Histogram, StatsRegistry
from repro.instrument import InstrumentBus
from repro.telemetry.series import Timeline

#: default sampling interval: 100 simulated microseconds
DEFAULT_INTERVAL_PS = 100 * US

#: histogram statistics emitted per sampled histogram (``count`` rides
#: separately as a counter-kind series)
_HIST_STATS = ("mean", "p50", "p99")


class NullTelemetry:
    """No-op sampler: the zero-cost default on every component."""

    __slots__ = ()

    enabled = False

    def attach(self, system: object) -> None:
        pass

    def tick(self, now_ps: int) -> None:
        pass

    def finalize(self) -> None:
        pass


#: shared no-op sampler; holds no state, safe to pass around.
NULL_TELEMETRY = NullTelemetry()


def _merged_hist_stats(hists: List[Histogram]) -> Tuple[float, Dict[str, float]]:
    """(total count, merged mean/p50/p99) across same-path histograms.

    Quantiles merge as count-weighted averages of the per-histogram
    quantiles — approximate, but deterministic and adequate for a
    telemetry series (the exact per-histogram values stay available in
    each system's own snapshot).
    """
    total = sum(h.count for h in hists)
    if total == 0:
        return 0, {key: 0.0 for key in _HIST_STATS}
    if len(hists) == 1:
        h = hists[0]
        return total, {"mean": h.mean, "p50": h.percentile(50.0),
                       "p99": h.percentile(99.0)}
    stats = {
        "mean": sum(h.total for h in hists) / total,
        "p50": sum(h.percentile(50.0) * h.count for h in hists) / total,
        "p99": sum(h.percentile(99.0) * h.count for h in hists) / total,
    }
    return total, stats


class TelemetrySampler:
    """Samples attached systems into a :class:`Timeline`.

    Args:
        interval_ps: simulated picoseconds between samples.
        max_samples: safety cap on timeline length (the sampler stops
            adding samples beyond it; the final :meth:`finalize` sample
            is always taken so the end state is never lost).
    """

    enabled = True

    def __init__(self, interval_ps: int = DEFAULT_INTERVAL_PS,
                 max_samples: int = 100_000) -> None:
        self.timeline = Timeline(interval_ps)
        self.interval_ps = self.timeline.interval_ps
        self.max_samples = max_samples
        self._systems: List[object] = []
        # run clock: concatenates per-system sim-clock domains
        self._base = 0
        self._domain_max = 0
        self._next_due = self.interval_ps
        self._last_sample_t = -1

    # -- wiring ---------------------------------------------------------

    def attach(self, system: object) -> None:
        """Include ``system`` in every subsequent sample (registry calls
        this for everything it builds during a session).

        A freshly built system starts its own simulated clock at zero, so
        attaching one also folds the previous clock domain's extent into
        the run-clock base — sweep harnesses that rebuild per point get a
        monotone concatenated timeline for free.
        """
        if not any(existing is system for existing in self._systems):
            self._systems.append(system)
            if self._domain_max > 0:
                self._base += self._domain_max
                self._domain_max = 0

    # -- ticking ---------------------------------------------------------

    def tick(self, now_ps: int) -> None:
        """Report the current simulated time; samples on boundary cross.

        ``now_ps`` below the domain high-water mark is an out-of-order
        completion, not a clock restart — the run clock only moves
        forward.
        """
        if now_ps > self._domain_max:
            self._domain_max = now_ps
        t = self._base + self._domain_max
        if t < self._next_due:
            return
        boundary = (t // self.interval_ps) * self.interval_ps
        if len(self.timeline) < self.max_samples:
            self._sample(boundary)
        self._next_due = boundary + self.interval_ps

    def finalize(self) -> None:
        """Take a terminal sample at the current run-clock time.

        Guarantees short runs (shorter than one interval) still produce
        a timeline, and that the final state always lands on it.
        """
        t = self._base + self._domain_max
        if t > self._last_sample_t:
            self._sample(t)

    # -- sampling --------------------------------------------------------

    def _sources(self, system: object):
        """(StatsRegistry, root InstrumentBus) pair for one system."""
        registries = []
        getter = getattr(system, "stat_registries", None)
        if callable(getter):
            registries = [r for r in getter()
                          if isinstance(r, StatsRegistry)]
        else:
            stats = getattr(system, "stats", None)
            if isinstance(stats, StatsRegistry):
                registries = [stats]
        bus = getattr(system, "instrument", None)
        bus = bus if isinstance(bus, InstrumentBus) else None
        return registries, bus

    def _sample(self, t_ps: int) -> None:
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        hists: Dict[str, List[Histogram]] = {}
        errors: List[str] = []
        for system in self._systems:
            registries, bus = self._sources(system)
            for registry in registries:
                for counter in registry.counters():
                    counters[counter.name] = (
                        counters.get(counter.name, 0) + counter.value)
                for name, hist in registry.histograms().items():
                    hists.setdefault(name, []).append(hist)
            if bus is not None:
                signals = bus.signals()
                for path, counter in signals.counters.items():
                    counters[path] = counters.get(path, 0) + counter.value
                for path, hist in signals.histograms.items():
                    hists.setdefault(path, []).append(hist)
                for path, fn in signals.gauges.items():
                    try:
                        value = fn()
                    except Exception:
                        errors.append(path)
                        continue
                    if isinstance(value, bool) or not isinstance(
                            value, (int, float)):
                        continue
                    gauges[path] = gauges.get(path, 0) + value
        stats: Dict[str, float] = {}
        for path, group in hists.items():
            count, merged = _merged_hist_stats(group)
            counters[f"{path}.count"] = count
            for key, value in merged.items():
                stats[f"{path}.{key}"] = value
        self.timeline.record(t_ps, counters, gauges, stats, errors)
        self._last_sample_t = t_ps

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Self-describing sampling metadata for reports/exports."""
        return {
            "interval_ps": self.interval_ps,
            "samples": len(self.timeline),
            "series": len(self.timeline.series),
            "systems": len(self._systems),
            "end_ps": self.timeline.end_ps,
            "errors": list(self.timeline.errors),
        }


# ----------------------------------------------------------------------
# session: route registry-built systems onto one sampler
# ----------------------------------------------------------------------

_ACTIVE_SESSIONS: List[TelemetrySampler] = []


def current() -> "TelemetrySampler | NullTelemetry":
    """The innermost active session sampler, or :data:`NULL_TELEMETRY`."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else NULL_TELEMETRY


@contextmanager
def session(sampler: TelemetrySampler) -> Iterator[TelemetrySampler]:
    """Attach ``sampler`` to every system the target registry builds
    while the context is active (mirrors ``flight.session`` and
    :class:`repro.instrument.Collection`).  Finalizes the timeline on
    exit."""
    _ACTIVE_SESSIONS.append(sampler)
    try:
        yield sampler
    finally:
        _ACTIVE_SESSIONS.remove(sampler)
        sampler.finalize()
