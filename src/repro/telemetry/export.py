"""Timeline rendering and export: sparklines, CSV, Chrome counter tracks.

Three consumers of a :class:`~repro.telemetry.series.Timeline`:

* :func:`render_timeline` — terminal summary with unicode sparklines of
  the most active series (counters shown as per-interval deltas so the
  shape reads as activity, not as a monotone ramp);
* :func:`save_timelines_csv` — long-form CSV (``experiment, path, kind,
  t_ps, value``) for external plotting/diffing;
* :func:`to_chrome_counters` / :func:`save_chrome_counters` — Chrome
  trace-event counter tracks (``ph: "C"``), the same lane format as the
  flight recorder's span export, so a telemetry trace opens in
  ``ui.perfetto.dev`` next to a flight trace.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, IO, List, Mapping, Union

from repro.telemetry.series import TimeSeries, Timeline

_SPARK = "▁▂▃▄▅▆▇█"
_PS_PER_US = 1_000_000


def sparkline(values, width: int = 48) -> str:
    """Unicode sparkline of ``values``, downsampled to ``width`` buckets
    by bucket means.  Flat/empty series render as a flat baseline."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - low) / span * len(_SPARK)))]
        for v in values)


def _display_values(series: TimeSeries) -> List[float]:
    return series.deltas() if series.kind == "counter" else list(series.values)


def render_timeline(timeline: Timeline, top: int = 8,
                    match: str = "") -> str:
    """Terminal rendering: header + one sparkline row per series.

    Counter series are ranked by final (total) value and drawn as
    per-sample deltas; gauge/stat series ride along when ``match``
    selects them.  ``match`` filters paths by substring.
    """
    header = (f"telemetry: {len(timeline)} samples @ "
              f"{timeline.interval_ps / _PS_PER_US:g}us over "
              f"{timeline.end_ps / _PS_PER_US:.1f}us simulated")
    lines = [header]
    if timeline.errors:
        lines.append(f"  gauge errors: {', '.join(timeline.errors)}")
    chosen = [s for path, s in sorted(timeline.series.items())
              if match in path]
    if match:
        chosen.sort(key=lambda s: (-s.final, s.path))
        chosen = chosen[:top]
    else:
        counters = [s for s in chosen if s.kind == "counter"
                    and not s.path.endswith(".count")]
        counters.sort(key=lambda s: (-s.final, s.path))
        chosen = counters[:top]
    width = max((len(s.path) for s in chosen), default=0)
    for series in chosen:
        values = _display_values(series)
        label = "Δ" if series.kind == "counter" else "·"
        lines.append(f"  {series.path.ljust(width)} {label} "
                     f"{sparkline(values)} "
                     f"(final {series.final:g})")
    if not chosen:
        lines.append("  (no matching series)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------


def save_timelines_csv(timelines: Mapping[str, Timeline],
                       dest: Union[str, IO[str]]) -> int:
    """Long-form CSV of every series of every timeline; returns rows."""
    rows = 0

    def _write(fh) -> int:
        nonlocal rows
        writer = csv.writer(fh)
        writer.writerow(["experiment", "path", "kind", "t_ps", "value"])
        for experiment, timeline in timelines.items():
            for path in timeline.paths():
                series = timeline.series[path]
                for t_ps, value in series:
                    writer.writerow([experiment, path, series.kind,
                                     t_ps, value])
                    rows += 1
        return rows

    if hasattr(dest, "write"):
        return _write(dest)
    with open(dest, "w", encoding="utf-8", newline="") as fh:
        return _write(fh)


# ----------------------------------------------------------------------
# Chrome counter tracks
# ----------------------------------------------------------------------


def to_chrome_counters(timelines: Mapping[str, Timeline],
                       extra_metadata: Union[Dict[str, object], None] = None
                       ) -> Dict[str, object]:
    """Chrome trace-event JSON with one counter track per series.

    One process lane per experiment (mirroring the flight exporter's
    station lanes); counter-kind series are emitted as per-sample deltas
    so the track shows activity per interval.
    """
    events: List[Dict[str, object]] = []
    for pid, (experiment, timeline) in enumerate(sorted(timelines.items())):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"telemetry:{experiment}"}})
        for path in timeline.paths():
            series = timeline.series[path]
            values = _display_values(series)
            for t_ps, value in zip(series.times_ps, values):
                events.append({
                    "name": path,
                    "ph": "C",
                    "pid": pid,
                    "ts": t_ps / _PS_PER_US,
                    "args": {"value": value},
                })
    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"time_base": "simulated picoseconds / 1e6",
                      "timelines": len(timelines)},
    }
    if extra_metadata:
        trace["otherData"].update(extra_metadata)  # type: ignore[union-attr]
    return trace


def save_chrome_counters(timelines: Mapping[str, Timeline],
                         dest: Union[str, IO[str]],
                         extra_metadata: Union[Dict[str, object], None] = None
                         ) -> int:
    """Write the counter-track trace to ``dest``; returns event count."""
    trace = to_chrome_counters(timelines, extra_metadata)
    if hasattr(dest, "write"):
        json.dump(trace, dest)  # type: ignore[arg-type]
    else:
        with open(dest, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            json.dump(trace, fh)
    return len(trace["traceEvents"])  # type: ignore[arg-type]
