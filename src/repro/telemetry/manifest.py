"""Run manifests: make every recorded result attributable.

A manifest captures *where a number came from*: the environment
(interpreter, platform, CPU count), the exact code version (git SHA,
branch, dirty flag), a content hash of the run's configuration, and the
RNG seeds.  Benchmark documents (``BENCH_*.json``) and telemetry exports
embed one, so a regression found weeks later can be traced to the code
and configuration that produced the baseline.

Everything here degrades gracefully: no git binary, no repository, or a
detached environment just leaves the corresponding fields out — a
manifest never fails a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Mapping, Optional

#: manifest document version (bump on breaking key changes)
MANIFEST_SCHEMA = "repro.manifest/1"


def _package_version() -> str:
    # lazy: repro/__init__ imports subsystems that (indirectly) import
    # this module, so a top-level ``from repro import __version__`` could
    # run against a partially initialized package.
    try:
        import repro
        return getattr(repro, "__version__", "unknown")
    except Exception:
        return "unknown"


def config_hash(config: Any) -> str:
    """Short content hash of a JSON-able configuration object.

    Canonical JSON (sorted keys, no whitespace) so logically identical
    configs hash identically regardless of construction order.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _git(args, cwd: Optional[str]) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=5, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_info(cwd: Optional[str] = None) -> Dict[str, object]:
    """``{sha, branch, dirty}`` of the working tree, or ``{}``."""
    sha = _git(["rev-parse", "HEAD"], cwd)
    if not sha:
        return {}
    info: Dict[str, object] = {"sha": sha}
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd)
    if branch:
        info["branch"] = branch
    status = _git(["status", "--porcelain"], cwd)
    if status is not None:
        info["dirty"] = bool(status)
    return info


def run_manifest(*, seed: Optional[int] = None,
                 config: Optional[Mapping[str, Any]] = None,
                 argv: Optional[list] = None,
                 cwd: Optional[str] = None,
                 session: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, object]:
    """Build a manifest for the current process/run.

    Args:
        seed: the run's base RNG seed (experiments derive per-id streams
            from it, so one integer fully describes the randomness).
        config: JSON-able run configuration (suite ids, scale, target
            overrides); recorded verbatim *and* content-hashed.
        argv: command line to record (defaults to ``sys.argv``).
        cwd: directory whose git state to record.
        session: serving-session identity (``repro-serve`` session id,
            tenant, daemon instance) so served artifacts stay
            attributable to the session that produced them.
    """
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "package_version": _package_version(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "argv": list(sys.argv if argv is None else argv),
    }
    git = git_info(cwd)
    if git:
        manifest["git"] = git
    if seed is not None:
        manifest["seed"] = seed
    if config is not None:
        manifest["config"] = dict(config)
        manifest["config_hash"] = config_hash(dict(config))
    if session is not None:
        manifest["session"] = dict(session)
    return manifest


def validate_manifest(manifest: Mapping[str, object]) -> list:
    """Structural check; returns a list of problems (empty when valid)."""
    problems = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema is {manifest.get('schema')!r}, expected "
            f"{MANIFEST_SCHEMA!r}")
    for key in ("created_utc", "package_version", "python", "platform",
                "argv"):
        if key not in manifest:
            problems.append(f"missing key {key!r}")
    if "config" in manifest and "config_hash" in manifest:
        if config_hash(manifest["config"]) != manifest["config_hash"]:
            problems.append("config_hash does not match config")
    return problems
