"""Deterministic per-DIMM sharding of a VANS run (the second kernel leap).

The iMC keeps one WPQ/RPQ/write-bus/DIMM stack per channel, and the
channels interact *only* at fences (``IntegratedMemoryController.fence``
is a max over per-channel drain times).  That makes the address space
shardable exactly: partition a fence-delimited open-loop request stream
with the interleave map, run each shard's DIMM+media stack
independently (in-process or in forked workers), and merge the
per-shard results at the fence synchronization points.  The merged
metrics, instrument-bus snapshots, and telemetry timelines are
bit-identical to the serial run by construction — the property the CI
``shard-identity`` job enforces.

Layout:

* :mod:`repro.shard.plan` — DIMM → shard assignment;
* :mod:`repro.shard.stream` — fence-delimited epoch compiler and the
  interleave-map partitioner;
* :mod:`repro.shard.vector` — numpy batch kernels for the FCFS/media
  timing math, with the scalar path staying authoritative;
* :mod:`repro.shard.merge` — canonical snapshot/timeline/checksum
  merge algebra (associative and order-independent);
* :mod:`repro.shard.executor` — serial, in-process-sharded, and
  forked-worker execution with the epoch barrier protocol;
* :mod:`repro.shard.bench` — kernel-suite cases gated by
  ``repro-bench --suite kernel``.

The session default below is how ``--shards N`` travels from the CLIs
into :func:`repro.experiments.exec.run_stream` without touching every
intermediate signature (the same pattern the flight/telemetry/fault
sessions use).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.common.errors import ConfigError

_DEFAULT_SHARDS = 1


def validate_shards(shards: int) -> int:
    """Normalize and validate a shard count (``>= 1``)."""
    try:
        value = int(shards)
    except (TypeError, ValueError):
        raise ConfigError(f"shards must be an integer, got {shards!r}")
    if value < 1:
        raise ConfigError(f"shards must be >= 1, got {value}")
    return value


def default_shards() -> int:
    """The session-wide shard count (1 unless a session is active)."""
    return _DEFAULT_SHARDS


@contextmanager
def shard_session(shards: int):
    """Scope a session-wide default shard count (``--shards N``).

    Forked worker processes inherit the default through the fork, so a
    campaign parent sets it once for the whole fan-out.
    """
    global _DEFAULT_SHARDS
    value = validate_shards(shards)
    prev = _DEFAULT_SHARDS
    _DEFAULT_SHARDS = value
    try:
        yield
    finally:
        _DEFAULT_SHARDS = prev
