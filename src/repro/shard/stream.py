"""Fence-delimited open-loop epoch streams and the shard partitioner.

The chained streams :func:`repro.experiments.exec.run_stream` executes
(each op issues at the prior op's completion) are serial by definition —
request N's issue time depends on every earlier completion, across all
DIMMs.  The shard plane therefore runs *open-loop epochs*: a fence
closes an epoch, and every request inside an epoch issues at a
deterministic time (the epoch base plus a per-request offset declared by
the stream itself).  Requests to different DIMMs then never observe each
other before the fence, which is exactly the independence the iMC model
already has — so sharding by the interleave map is exact, not
approximate.

Op vocabulary: ``read``/``write``/``write_nt`` plus ``fence``.  The
cached-store persistency ops (``store``/``flush``) belong to the chained
plane (the litmus harness) and are rejected with a pointer there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.common.errors import _suggest

#: ops the shard plane accepts (``fence`` closes an epoch)
SHARD_OPS = ("read", "write", "write_nt", "fence")

#: chained-plane ops we reject with guidance
_CHAINED_ONLY = ("store", "flush")


@dataclass(frozen=True)
class ShardRequest:
    """One expanded request of an open-loop epoch."""

    #: global program-order index across the whole stream
    index: int
    op: str
    addr: int
    #: issue offset from the epoch base, ps
    offset_ps: int


@dataclass(frozen=True)
class Epoch:
    """Requests between two fences; ``fenced`` when a fence closes it."""

    requests: Tuple[ShardRequest, ...]
    fenced: bool


def compile_epochs(ops: Sequence[Mapping[str, object]]) -> List[Epoch]:
    """Expand compact op mappings into fence-delimited epochs.

    Each op mapping takes the :func:`run_stream` shape — ``op`` plus
    optional ``addr``/``count``/``stride`` — with one shard-plane
    addition: ``gap_ps`` (default 0), the issue-time gap *after* each
    expanded request.  Offsets accumulate across ops within an epoch and
    reset at every fence, so the stream fully determines every issue
    time before execution starts.
    """
    epochs: List[Epoch] = []
    current: List[ShardRequest] = []
    index = 0
    cursor = 0
    for item in ops:
        op = str(item.get("op", "read"))
        if op not in SHARD_OPS:
            if op in _CHAINED_ONLY:
                raise ValueError(
                    f"stream op {op!r} is chained-plane only (cached-store "
                    f"persistency); the shard plane accepts: "
                    f"{', '.join(SHARD_OPS)}")
            raise ValueError(
                f"unknown stream op {op!r}{_suggest(op, SHARD_OPS)}"
                f"; choose from: {', '.join(SHARD_OPS)}")
        count = int(item.get("count", 1))
        if op == "fence":
            for _ in range(count):
                epochs.append(Epoch(tuple(current), fenced=True))
                current = []
                cursor = 0
            continue
        addr = int(item.get("addr", 0))
        stride = int(item.get("stride", 64))
        gap_ps = int(item.get("gap_ps", 0))
        for i in range(count):
            current.append(ShardRequest(index, op, addr + i * stride, cursor))
            index += 1
            cursor += gap_ps
    if current:
        epochs.append(Epoch(tuple(current), fenced=False))
    return epochs


def total_requests(epochs: Sequence[Epoch]) -> int:
    return sum(len(epoch.requests) for epoch in epochs)


def partition(epochs: Sequence[Epoch], interleaver,
              plan) -> List[List[Tuple[ShardRequest, ...]]]:
    """Split epochs across shards with the iMC interleave map.

    Returns ``substreams[shard][epoch]`` — each shard sees every epoch
    (possibly empty) so the barrier protocol stays in lockstep — with
    program order preserved inside each shard's slice.  Restricting a
    stream to one DIMM's requests preserves that DIMM's arrival order,
    which is why per-channel state evolves identically to the serial
    run.
    """
    substreams: List[List[List[ShardRequest]]] = [
        [[] for _ in epochs] for _ in range(plan.effective)]
    for e, epoch in enumerate(epochs):
        for request in epoch.requests:
            dimm, _ = interleaver.map(request.addr)
            substreams[plan.shard_of(dimm)][e].append(request)
    return [[tuple(reqs) for reqs in shard] for shard in substreams]


def synthetic_stream(kind: str, requests: int, *, stride: int = 256,
                     fence_every: int = 1024, gap_ps: int = 0,
                     write_ratio: float = 1.0, seed: int = 0,
                     addr_space: int = 1 << 26) -> List[Dict[str, object]]:
    """Deterministic open-loop workloads for benches and the CLI.

    * ``seq`` — a sequential sweep (stride ``stride``), fenced every
      ``fence_every`` requests;
    * ``burst`` — the ddrt_burst shape: bursts of near-simultaneous
      requests striped across the interleave granules, mixing reads in
      per ``write_ratio``;
    * ``rand`` — seeded uniform addresses over ``addr_space``.
    """
    if kind not in ("seq", "burst", "rand"):
        raise ValueError(f"unknown synthetic stream kind {kind!r}"
                         f"{_suggest(kind, ('seq', 'burst', 'rand'))}")
    rng = random.Random(f"repro-shard:{kind}:{seed}")
    ops: List[Dict[str, object]] = []
    emitted = 0
    while emitted < requests:
        chunk = min(fence_every, requests - emitted)
        if kind == "seq":
            ops.append({"op": "write", "addr": emitted * stride,
                        "count": chunk, "stride": stride,
                        "gap_ps": gap_ps})
        else:
            for i in range(chunk):
                n = emitted + i
                if kind == "burst":
                    # stripe bursts of 8 across 4KB granules so every
                    # DIMM sees traffic inside each epoch
                    addr = (n // 8) * 4096 + (n % 8) * stride
                else:
                    addr = rng.randrange(addr_space // stride) * stride
                op = "write" if rng.random() < write_ratio else "read"
                ops.append({"op": op, "addr": addr, "gap_ps": gap_ps})
        ops.append({"op": "fence"})
        emitted += chunk
    return ops
