"""Numpy batch kernels for the FCFS/media timing hot loops.

The scalar paths (:meth:`repro.engine.queueing.Server.serve`,
:meth:`repro.media.xpoint.XPointMedia.access`) stay authoritative; the
kernels here compute the *identical* integer timings for a whole batch
at once and leave the server/counter state exactly as the equivalent
scalar loop would — the same contract the PR 5 calendar-queue kernel
established, enforced by checksum cross-checks in ``repro-bench
--suite kernel`` and ``repro-shard crosscheck``.

The FCFS recurrence ``c_i = max(a_i, c_{i-1}) + s_i`` vectorizes as a
prefix scan: with ``P_i = cumsum(s)_i`` (inclusive) and ``d_i = a_i -
P_{i-1}``,

    ``c_i = P_i + max(busy0, max_{j<=i} d_j)``

which is two ``cumsum``/``maximum.accumulate`` passes in exact int64
(picosecond magnitudes keep every intermediate far below 2**63).

numpy is an optional accelerator: without it every entry point falls
back to the scalar loop, bit-identically.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:  # soft dependency — the scalar path is always available
    import numpy as np
except ImportError:  # pragma: no cover - container always has numpy
    np = None

HAVE_NUMPY = np is not None


def _as_int64(values):
    return np.asarray(values, dtype=np.int64)


def fcfs_completions(arrivals, services, busy0: int = 0):
    """Vectorized FCFS completion times (see module docstring).

    Pure function — does not touch any server state.
    """
    a = _as_int64(arrivals)
    s = _as_int64(services)
    prefix = np.cumsum(s)
    started = a - prefix + s  # a_i - P_{i-1}
    np.maximum.accumulate(started, out=started)
    np.maximum(started, int(busy0), out=started)
    return prefix + started


def serve_batch(server, arrivals, services) -> "np.ndarray":
    """Batched :meth:`Server.serve`: identical completions and state.

    Falls back to the scalar loop without numpy.
    """
    if not HAVE_NUMPY:
        return server.serve_batch(arrivals, services)
    completions = fcfs_completions(arrivals, services, server.busy_until)
    n = len(completions)
    if n:
        server.busy_until = int(completions[-1])
        server.total_busy += int(np.sum(_as_int64(services)))
        server.served += n
    return completions


def banked_serve_batch(banked, banks, arrivals, services) -> "np.ndarray":
    """Batched :meth:`BankedServer.serve` over mixed bank indices.

    Requests are scanned per bank in stream order (the order the scalar
    loop would serve them in — bank subsequences are exactly the
    per-bank arrival order) and completions scatter back into stream
    positions.
    """
    if not HAVE_NUMPY:
        return banked.serve_batch(banks, arrivals, services)
    bank_idx = _as_int64(banks) % banked.nbanks
    a = _as_int64(arrivals)
    s = _as_int64(services)
    out = np.empty(len(a), dtype=np.int64)
    for bank in np.unique(bank_idx):
        where = np.nonzero(bank_idx == bank)[0]
        out[where] = serve_batch(banked.banks[int(bank)], a[where], s[where])
    return out


def media_access_batch(media, addrs, is_write, issues) -> "np.ndarray":
    """Batched :meth:`XPointMedia.access` (uninstrumented media only).

    Computes the partition index and service time of every access,
    scans each partition server, and applies the same counter updates
    the scalar loop would.  Raises :class:`ValueError` when the media
    has live flight/fault sinks — those paths branch per request and
    stay scalar.
    """
    from repro.faults.injector import NULL_FAULTS
    from repro.flight.recorder import NULL_FLIGHT
    if media.flight is not NULL_FLIGHT or media.faults is not NULL_FAULTS:
        raise ValueError("media_access_batch requires uninstrumented media "
                         "(null flight/fault sinks); use the scalar path")
    if not HAVE_NUMPY:
        return media_access_batch_scalar(media, addrs, is_write, issues)
    cfg = media.config
    units = (_as_int64(addrs) % cfg.capacity_bytes) // cfg.granularity
    writes = np.asarray(is_write, dtype=bool)
    services = np.where(writes, np.int64(cfg.write_ps), np.int64(cfg.read_ps))
    completions = banked_serve_batch(media.banks, units % cfg.npartitions,
                                     issues, services)
    nwrites = int(np.count_nonzero(writes))
    nreads = len(units) - nwrites
    if nwrites:
        media._writes.add(nwrites)
        media._bytes_written.add(nwrites * cfg.granularity)
    if nreads:
        media._reads.add(nreads)
        media._bytes_read.add(nreads * cfg.granularity)
    return completions


def media_access_batch_scalar(media, addrs, is_write,
                              issues) -> List[int]:
    """The authoritative scalar loop ``media_access_batch`` must match."""
    access = media.access
    return [access(int(addr), bool(w), int(t))
            for addr, w, t in zip(addrs, is_write, issues)]


def batch_checksum(indices, completions) -> int:
    """Vectorized :func:`repro.shard.merge.completion_checksum` partial."""
    from repro.shard.merge import MASK64, MIX_INDEX, MIX_VALUE
    if not HAVE_NUMPY:
        from repro.shard.merge import completion_checksum
        return completion_checksum(zip(indices, completions))
    idx = np.asarray(indices, dtype=np.uint64) + np.uint64(1)
    comp = np.asarray(completions).astype(np.uint64)
    mixed = (idx * np.uint64(MIX_INDEX)) ^ (comp * np.uint64(MIX_VALUE))
    return int(np.sum(mixed, dtype=np.uint64)) & MASK64


def batch_timeline(completions, issues,
                   interval_ps: int) -> List[Tuple[int, int, int]]:
    """Bucketed ``(bucket, n_requests, busy_ps)`` rows for a batch.

    ``busy_ps`` sums ``completion - issue`` per completion bucket —
    the same accumulation the scalar per-request path performs.
    """
    if not HAVE_NUMPY:
        rows = {}
        for done, start in zip(completions, issues):
            bucket = int(done) // interval_ps
            n, busy = rows.get(bucket, (0, 0))
            rows[bucket] = (n + 1, busy + int(done) - int(start))
        return [(b, n, busy) for b, (n, busy) in sorted(rows.items())]
    comp = _as_int64(completions)
    lat = comp - _as_int64(issues)
    buckets = comp // np.int64(interval_ps)
    unique, inverse, counts = np.unique(buckets, return_inverse=True,
                                        return_counts=True)
    busy = np.bincount(inverse, weights=lat.astype(np.float64))
    return [(int(b), int(n), int(round(s)))
            for b, n, s in zip(unique, counts, busy)]
