"""DIMM → shard assignment.

A shard owns a contiguous block of DIMM indices (contiguous blocks keep
non-interleaved address ranges on one shard too, since concatenated DIMM
spaces are themselves contiguous).  The effective shard count never
exceeds the DIMM population — per-channel state is the unit of
isolation, so extra shards would own nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.shard import validate_shards


@dataclass(frozen=True)
class ShardPlan:
    """Balanced contiguous assignment of ``ndimms`` DIMMs to shards."""

    ndimms: int
    requested: int
    effective: int
    #: ``assignment[dimm] -> shard`` for every DIMM index
    assignment: Tuple[int, ...] = field(repr=False)

    @classmethod
    def for_target(cls, ndimms: int, shards: int) -> "ShardPlan":
        requested = validate_shards(shards)
        if ndimms < 1:
            raise ConfigError(f"ndimms must be >= 1, got {ndimms}")
        effective = min(requested, ndimms)
        base, extra = divmod(ndimms, effective)
        assignment = []
        for shard in range(effective):
            width = base + (1 if shard < extra else 0)
            assignment.extend([shard] * width)
        return cls(ndimms=ndimms, requested=requested,
                   effective=effective, assignment=tuple(assignment))

    def shard_of(self, dimm: int) -> int:
        """Owning shard of DIMM ``dimm``."""
        return self.assignment[dimm]

    def owned(self, shard: int) -> Tuple[int, ...]:
        """DIMM indices owned by ``shard`` (ascending)."""
        return tuple(d for d, s in enumerate(self.assignment) if s == shard)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ndimms": self.ndimms,
            "requested": self.requested,
            "effective": self.effective,
            "assignment": list(self.assignment),
        }
