"""Sharded stream execution: serial, in-process, and forked workers.

The execution model is a lockstep epoch barrier:

1. every shard executes its slice of the epoch's requests, each issuing
   at ``base + offset`` (open-loop — see :mod:`repro.shard.stream`);
2. the coordinator takes the max completion across shards;
3. on a fenced epoch every shard drains the channels it owns at that
   max, and the max drain time becomes the next epoch's base.

A single-shard run goes through the *same* state machine, merge
algebra, and payload shape, so "serial" is literally the one-shard
special case and the bit-identity claim reduces to per-DIMM
independence between fences — which the iMC model guarantees by
construction (per-channel WPQ/RPQ/bus/DIMM state, interaction only in
``fence``).  The CI ``shard-identity`` job checks the resulting
documents byte-for-byte anyway.

Forked mode reuses the campaign conventions from
:mod:`repro.experiments.exec`: fork-preferring start method, pipe
transport with stringified remote tracebacks, a poll-based watchdog,
and deterministic retries with exponential backoff.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import registry
from repro.common.errors import ConfigError, ReproError
from repro.experiments.exec import BACKOFF_S, _mp_context
from repro.faults.injector import current as current_faults
from repro.flight.recorder import current as current_flight
from repro.shard import default_shards
from repro.shard import merge as shard_merge
from repro.shard import vector
from repro.shard.plan import ShardPlan
from repro.shard.stream import Epoch, ShardRequest, compile_epochs, partition
from repro.telemetry.sampler import current as current_telemetry

SHARD_SCHEMA = "repro.shard/1"

#: telemetry-timeline bucket width (completion-time bucketing)
DEFAULT_INTERVAL_PS = 1_000_000

#: per-barrier-message watchdog budget
DEFAULT_TIMEOUT_S = 120.0

#: doc keys that legitimately differ across execution variants of the
#: same stream (shard count, batch engine, process placement)
VARIANT_KEYS = ("plan", "engine", "fork")


class ShardError(ReproError):
    """Shard-plane configuration or worker failure."""


class ShardTimeoutError(ShardError):
    """A shard worker missed the watchdog deadline."""


def _mix(index: int, completion: int) -> int:
    return ((((index + 1) * shard_merge.MIX_INDEX) & shard_merge.MASK64)
            ^ ((completion * shard_merge.MIX_VALUE) & shard_merge.MASK64))


def _fence_owned(system, now: int, owned: Sequence[int]) -> int:
    """Drain the owned channels (the per-channel slice of
    ``IntegratedMemoryController.fence``, same timings, no counter)."""
    imc = system.imc
    done = now
    for i in owned:
        wpq_done = imc.wpqs[i].drain_time(now)
        if wpq_done > done:
            done = wpq_done
        flush_done = imc.dimms[i].flush(now)
        if flush_done > done:
            done = flush_done
    return done


class _ShardState:
    """One shard's system plus its result accumulators."""

    def __init__(self, system, owned: Sequence[int], epochs:
                 Sequence[Tuple[ShardRequest, ...]], level: str,
                 engine: str, interval_ps: int) -> None:
        self.system = system
        self.owned = tuple(owned)
        self.epochs = epochs
        self.level = level
        self.engine = engine
        self.interval_ps = interval_ps
        self._media_batches: Optional[List[List[tuple]]] = None
        if level == "media":
            self._media_batches = self._group_media(epochs)
        self.reset_accumulators()

    def _group_media(self, epochs) -> List[List[tuple]]:
        """Per epoch: ``(media, indices, locals, writes, offsets, ops)``
        per DIMM, in first-touch order.  Grouped (and, for the vector
        engine, converted to int64/uint64 arrays) once at prepare time,
        so the hot loop per epoch is pure array math."""
        imc = self.system.imc
        inter = imc.interleaver
        grouped = []
        for requests in epochs:
            by_dimm: Dict[int, List[ShardRequest]] = {}
            locals_by_dimm: Dict[int, List[int]] = {}
            for req in requests:
                dimm, local = inter.map(req.addr)
                by_dimm.setdefault(dimm, []).append(req)
                locals_by_dimm.setdefault(dimm, []).append(local)
            batches = []
            for dimm, reqs in by_dimm.items():
                indices = [r.index for r in reqs]
                addrs = locals_by_dimm[dimm]
                writes = [r.op != "read" for r in reqs]
                offsets = [r.offset_ps for r in reqs]
                ops = [r.op for r in reqs]
                if self.engine == "vector":
                    np = vector.np
                    batches.append((
                        imc.dimms[dimm].media,
                        np.asarray(indices, dtype=np.uint64),
                        np.asarray(addrs, dtype=np.int64),
                        np.asarray(writes, dtype=bool),
                        np.asarray(offsets, dtype=np.int64),
                        ops))
                else:
                    batches.append((imc.dimms[dimm].media, indices, addrs,
                                    writes, offsets, ops))
            grouped.append(batches)
        return grouped

    def reset_accumulators(self) -> None:
        self.counts: Dict[str, int] = {"read": 0, "write": 0, "write_nt": 0}
        self.busy_ps = 0
        self.checksum = 0
        self.lat_min: Optional[int] = None
        self.lat_max: Optional[int] = None
        #: completion bucket -> [requests, busy_ps]
        self.buckets: Dict[int, List[int]] = {}

    def reset(self) -> None:
        """Back to as-built state (bench repeats re-run the same job)."""
        self.system.reset()
        self.reset_accumulators()

    # -- execution ----------------------------------------------------

    def execute_epoch(self, e: int, base: int) -> int:
        if self.level == "media":
            if self.engine == "vector":
                return self._execute_media_vector(e, base)
            return self._execute_media_scalar(e, base)
        return self._execute_system(e, base)

    def _note(self, index: int, op: str, issue: int, done: int) -> None:
        self.counts[op] += 1
        lat = done - issue
        self.busy_ps += lat
        if self.lat_min is None or lat < self.lat_min:
            self.lat_min = lat
        if self.lat_max is None or lat > self.lat_max:
            self.lat_max = lat
        self.checksum = (self.checksum + _mix(index, done)) \
            & shard_merge.MASK64
        row = self.buckets.get(done // self.interval_ps)
        if row is None:
            self.buckets[done // self.interval_ps] = [1, lat]
        else:
            row[0] += 1
            row[1] += lat

    def _execute_system(self, e: int, base: int) -> int:
        system = self.system
        local_max = base
        for req in self.epochs[e]:
            issue = base + req.offset_ps
            if req.op == "read":
                done = system.read(req.addr, issue)
            else:  # write / write_nt both ride the nt-store path
                done = system.write(req.addr, issue)
            self._note(req.index, req.op, issue, done)
            if done > local_max:
                local_max = done
        return local_max

    def _execute_media_scalar(self, e: int, base: int) -> int:
        local_max = base
        for media, indices, addrs, writes, offsets, ops in \
                self._media_batches[e]:
            access = media.access
            for index, addr, is_write, offset, op in \
                    zip(indices, addrs, writes, offsets, ops):
                issue = base + offset
                done = access(addr, is_write, issue)
                self._note(index, op, issue, done)
                if done > local_max:
                    local_max = done
        return local_max

    def _execute_media_vector(self, e: int, base: int) -> int:
        np = vector.np
        local_max = base
        interval = self.interval_ps
        for media, indices, addrs, writes, offsets, ops in \
                self._media_batches[e]:
            if not len(indices):
                continue
            issues = offsets + base
            completions = vector.media_access_batch(media, addrs, writes,
                                                    issues)
            lat = completions - issues
            self.busy_ps += int(np.sum(lat))
            lo, hi = int(np.min(lat)), int(np.max(lat))
            if self.lat_min is None or lo < self.lat_min:
                self.lat_min = lo
            if self.lat_max is None or hi > self.lat_max:
                self.lat_max = hi
            self.checksum = (self.checksum
                             + vector.batch_checksum(indices, completions)) \
                & shard_merge.MASK64
            for bucket, n, busy in vector.batch_timeline(completions, issues,
                                                         interval):
                row = self.buckets.get(bucket)
                if row is None:
                    self.buckets[bucket] = [n, busy]
                else:
                    row[0] += n
                    row[1] += busy
            nwrites = int(np.count_nonzero(writes))
            nnt = sum(1 for op in ops if op == "write_nt")
            self.counts["read"] += len(indices) - nwrites
            self.counts["write"] += nwrites - nnt
            self.counts["write_nt"] += nnt
            top = int(np.max(completions))
            if top > local_max:
                local_max = top
        return local_max

    def fence(self, gmax: int) -> int:
        if self.level == "media":
            # bare media has no queues to drain; the barrier max is the
            # fence time on every shard count
            return gmax
        return _fence_owned(self.system, gmax, self.owned)

    # -- result -------------------------------------------------------

    def payload(self) -> Dict[str, object]:
        timeline = shard_merge.empty_timeline(self.interval_ps)
        requests = timeline["series"]["requests"]
        busy = timeline["series"]["busy_ps"]
        for bucket in sorted(self.buckets):
            n, lat = self.buckets[bucket]
            requests[str(bucket)] = n
            busy[str(bucket)] = lat
        snapshot = shard_merge.filter_owned(
            shard_merge.canonical_snapshot(
                self.system.instrument_snapshot()), self.owned)
        return {
            "counts": dict(self.counts),
            "busy_ps": self.busy_ps,
            "checksum": self.checksum,
            "lat_min": self.lat_min,
            "lat_max": self.lat_max,
            "timeline": timeline,
            "snapshot": snapshot,
        }


def _resolve_engine(level: str, engine: str) -> str:
    if level not in ("system", "media"):
        raise ConfigError(f"unknown shard level {level!r} "
                          f"(choose 'system' or 'media')")
    if engine not in ("auto", "scalar", "vector"):
        raise ConfigError(f"unknown shard engine {engine!r} "
                          f"(choose 'auto', 'scalar', or 'vector')")
    if level == "system":
        if engine == "vector":
            raise ConfigError("the vector engine batches bare media "
                              "timing; system-level streams are scalar "
                              "(use level='media')")
        return "scalar"
    if engine == "auto":
        return "vector" if vector.HAVE_NUMPY else "scalar"
    if engine == "vector" and not vector.HAVE_NUMPY:
        raise ConfigError("vector engine requires numpy")
    return engine


def _check_uninstrumented(target: str) -> None:
    if current_flight().enabled or current_faults().enabled \
            or current_telemetry().enabled:
        raise ShardError(
            f"the shard plane runs {target!r} uninstrumented; disable the "
            f"active flight/telemetry/fault session (per-request recording "
            f"is inherently serial)")


class _Prepared:
    """A compiled, partitioned, system-built shard job (re-runnable)."""

    def __init__(self, target: str, overrides: Mapping[str, object],
                 epochs: Sequence[Epoch], plan: ShardPlan, level: str,
                 engine: str, interval_ps: int,
                 substreams: Sequence[Sequence[Tuple[ShardRequest, ...]]]
                 ) -> None:
        self.target = target
        self.overrides = dict(overrides)
        self.epochs = epochs
        self.fenced = [epoch.fenced for epoch in epochs]
        self.plan = plan
        self.level = level
        self.engine = engine
        self.interval_ps = interval_ps
        self.substreams = substreams
        self.states: Optional[List[_ShardState]] = None

    def build_states(self) -> List[_ShardState]:
        if self.states is None:
            self.states = [
                _ShardState(registry.build(self.target, **self.overrides),
                            self.plan.owned(shard), self.substreams[shard],
                            self.level, self.engine, self.interval_ps)
                for shard in range(self.plan.effective)]
        return self.states

    def reset(self) -> None:
        if self.states is not None:
            for state in self.states:
                state.reset()


def prepare(target: str, ops: Sequence[Mapping[str, object]], *,
            shards: Optional[int] = None,
            overrides: Optional[Mapping[str, object]] = None,
            level: str = "system", engine: str = "auto",
            interval_ps: int = DEFAULT_INTERVAL_PS) -> _Prepared:
    """Compile + partition a stream against a built target (no
    execution yet; the bench suite reuses one prepared job across
    repeats)."""
    engine = _resolve_engine(level, engine)
    _check_uninstrumented(target)
    overrides = dict(overrides or {})
    epochs = compile_epochs(ops)
    probe = registry.build(target, **overrides)
    imc = getattr(probe, "imc", None)
    interleaver = getattr(imc, "interleaver", None)
    if interleaver is None:
        raise ShardError(
            f"target {target!r} has no iMC interleave map; the shard plane "
            f"needs a VANS-family target (per-channel state is the unit of "
            f"isolation)")
    plan = ShardPlan.for_target(interleaver.ndimms,
                                shards if shards is not None
                                else default_shards())
    substreams = partition(epochs, interleaver, plan)
    return _Prepared(target, overrides, epochs, plan, level, engine,
                     interval_ps, substreams)


def execute_inprocess(prepared: _Prepared) -> Tuple[int, List[Dict]]:
    """Run every shard in this process under the lockstep barrier."""
    states = prepared.build_states()
    base = 0
    for e, is_fenced in enumerate(prepared.fenced):
        local_maxes = [state.execute_epoch(e, base) for state in states]
        gmax = max([base] + local_maxes)
        if is_fenced:
            base = max([gmax] + [state.fence(gmax) for state in states])
        else:
            base = gmax
    return base, [state.payload() for state in states]


# -- forked workers ----------------------------------------------------

def _shard_child(conn, spec: Dict[str, object]) -> None:
    """Worker entry: build the shard's system, follow the barrier
    protocol, ship the payload.  Tracebacks travel as strings (the
    campaign-child convention)."""
    try:
        system = registry.build(spec["target"], **spec["overrides"])
        state = _ShardState(system, spec["owned"], spec["epochs"],
                            spec["level"], spec["engine"],
                            spec["interval_ps"])
        for e, is_fenced in enumerate(spec["fenced"]):
            _, base = conn.recv()
            conn.send(("max", state.execute_epoch(e, base)))
            if is_fenced:
                _, gmax = conn.recv()
                conn.send(("fenced", state.fence(gmax)))
        conn.send(("result", state.payload()))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _recv(conn, proc, shard: int, timeout_s: float):
    if not conn.poll(timeout_s):
        raise ShardTimeoutError(
            f"shard {shard} (pid {proc.pid}) missed the {timeout_s:.0f}s "
            f"barrier deadline")
    try:
        tag, value = conn.recv()
    except EOFError:
        raise ShardError(f"shard {shard} worker died "
                         f"(exit code {proc.exitcode})")
    if tag == "error":
        raise ShardError(f"shard {shard} worker failed:\n{value}")
    return value


def execute_forked(prepared: _Prepared,
                   timeout_s: float = DEFAULT_TIMEOUT_S
                   ) -> Tuple[int, List[Dict]]:
    """Run each shard in its own forked worker process."""
    ctx = _mp_context()
    workers = []
    try:
        for shard in range(prepared.plan.effective):
            parent_conn, child_conn = ctx.Pipe()
            spec = {
                "target": prepared.target,
                "overrides": prepared.overrides,
                "owned": prepared.plan.owned(shard),
                "epochs": prepared.substreams[shard],
                "fenced": prepared.fenced,
                "level": prepared.level,
                "engine": prepared.engine,
                "interval_ps": prepared.interval_ps,
            }
            proc = ctx.Process(target=_shard_child,
                               args=(child_conn, spec), daemon=True)
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn, shard))
        base = 0
        for is_fenced in prepared.fenced:
            for _, conn, _ in workers:
                conn.send(("epoch", base))
            maxes = [_recv(conn, proc, shard, timeout_s)
                     for proc, conn, shard in workers]
            gmax = max([base] + maxes)
            if is_fenced:
                for _, conn, _ in workers:
                    conn.send(("fence", gmax))
                base = max([gmax] + [_recv(conn, proc, shard, timeout_s)
                                     for proc, conn, shard in workers])
            else:
                base = gmax
        payloads = [_recv(conn, proc, shard, timeout_s)
                    for proc, conn, shard in workers]
        return base, payloads
    finally:
        for proc, conn, _ in workers:
            conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)


def merge_payloads(prepared: _Prepared, sim_end_ps: int,
                   payloads: Sequence[Mapping[str, object]], *,
                   fork: bool, session: Optional[Mapping[str, object]] = None
                   ) -> Dict[str, object]:
    """Fold per-shard payloads into the ``repro.shard/1`` document."""
    counts = shard_merge.merge_counts([p["counts"] for p in payloads])
    counts["fence"] = sum(1 for f in prepared.fenced if f)
    total = counts["read"] + counts["write"] + counts["write_nt"]
    busy_ps = sum(p["busy_ps"] for p in payloads)
    lat_min, lat_max = shard_merge.merge_latency_bounds(
        [(p["lat_min"], p["lat_max"]) for p in payloads])
    checksum = shard_merge.merge_checksums(p["checksum"] for p in payloads)
    return {
        "schema": SHARD_SCHEMA,
        "target": prepared.target,
        "overrides": dict(prepared.overrides),
        "plan": prepared.plan.as_dict(),
        "level": prepared.level,
        "engine": prepared.engine,
        "fork": bool(fork),
        "epochs": len(prepared.epochs),
        "ops": total,
        "counts": counts,
        "sim_end_ps": sim_end_ps,
        "busy_ps": busy_ps,
        "mean_latency_ps": (busy_ps / total) if total else 0.0,
        "latency_min_ps": lat_min,
        "latency_max_ps": lat_max,
        "checksum": f"{checksum:016x}",
        "instrumentation": shard_merge.merge_snapshots(
            [p["snapshot"] for p in payloads]),
        "timeline": shard_merge.sort_timeline(shard_merge.merge_timelines(
            [p["timeline"] for p in payloads])),
        "faults": {},
        "session": dict(session or {}),
    }


def identity_view(doc: Mapping[str, object]) -> Dict[str, object]:
    """The variant-independent projection two runs of the same stream
    must agree on byte-for-byte (drops shard count / engine /
    process-placement keys — everything else is the simulation)."""
    return {key: value for key, value in doc.items()
            if key not in VARIANT_KEYS}


def run_shard_stream(target: str, ops: Sequence[Mapping[str, object]], *,
                     shards: Optional[int] = None,
                     overrides: Optional[Mapping[str, object]] = None,
                     level: str = "system", engine: str = "auto",
                     fork: Optional[bool] = None,
                     interval_ps: int = DEFAULT_INTERVAL_PS,
                     timeout_s: float = DEFAULT_TIMEOUT_S,
                     retries: int = 1,
                     session: Optional[Mapping[str, object]] = None,
                     progress=None) -> Dict[str, object]:
    """Run an open-loop stream sharded by the interleave map.

    ``shards=None`` takes the session default (``--shards N``).
    ``fork=None`` forks workers only when more than one shard is
    effective and more than one CPU is available; ``fork=False`` runs
    every shard in-process (same numbers, no processes); ``fork=True``
    forces worker processes.  Worker failures and watchdog timeouts
    retry the whole (deterministic) job up to ``retries`` times with
    exponential backoff.

    Returns the ``repro.shard/1`` document — wall-clock free, so two
    runs of the same stream compare byte-for-byte after
    :func:`identity_view`.
    """
    if progress is not None:
        progress.phase(f"shard:{target}")
    prepared = prepare(target, ops, shards=shards, overrides=overrides,
                       level=level, engine=engine, interval_ps=interval_ps)
    if fork is None:
        fork = prepared.plan.effective > 1 and (os.cpu_count() or 1) > 1
    use_fork = bool(fork) and prepared.plan.effective > 1
    attempt = 0
    while True:
        attempt += 1
        try:
            if use_fork:
                sim_end, payloads = execute_forked(prepared, timeout_s)
            else:
                prepared.reset()
                sim_end, payloads = execute_inprocess(prepared)
            break
        except ShardError:
            if not use_fork or attempt > retries:
                raise
            time.sleep(BACKOFF_S * 2 ** (attempt - 1))
    return merge_payloads(prepared, sim_end, payloads, fork=use_fork,
                          session=session)
