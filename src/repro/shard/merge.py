"""Merge algebra for per-shard results.

Everything a shard worker ships back — instrument snapshots, telemetry
timelines, op counts, completion checksums — merges through the
functions here.  The algebra is associative and order-independent
(hypothesis-tested in ``tests/test_shard_merge_properties.py``), and
``merge_snapshots([canonical_snapshot(s)]) == canonical_snapshot(s)``,
which is what makes the serial run and every shard count land on the
same bytes.

Canonical snapshot form
-----------------------

Histograms expand to ``.count/.sum/.min/.max/.mean/.p50/.p99`` keys
(:meth:`repro.engine.stats.Histogram.as_stats`).  Derived quantile keys
(``mean``/``p50``/``p99``) are not mergeable across shards, so the
canonical form drops them and keeps the sufficient statistics: counts
and sums add, mins/maxes combine across the shards that recorded
anything.  Every other signal in a shard-plane snapshot is additive —
DIMM-level stats are counters, and per-station gauges live under
per-DIMM scopes that exactly one shard owns.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

MASK64 = (1 << 64) - 1
#: odd multiplicative mixers (golden-ratio and FNV-prime constants)
MIX_INDEX = 0x9E3779B97F4A7C15
MIX_VALUE = 0x100000001B3

#: histogram suffixes dropped from the canonical form (not mergeable)
_DERIVED = ("mean", "p50", "p99")

_SCOPED = re.compile(r"(?:^|\.)(?:dimm|channel)(\d+)\.")


def completion_checksum(pairs: Iterable[Tuple[int, int]]) -> int:
    """Position-binding order-independent digest of completions.

    Each ``(index, completion)`` pair mixes independently and the mixes
    *sum* mod 2**64, so per-shard partial checksums merge by addition no
    matter how the stream was partitioned — yet any request completing
    at a different time, or two completions swapping positions, changes
    the digest.
    """
    total = 0
    for index, completion in pairs:
        total += (((index + 1) * MIX_INDEX) & MASK64) \
            ^ ((completion * MIX_VALUE) & MASK64)
    return total & MASK64


def merge_checksums(parts: Iterable[int]) -> int:
    return sum(parts) & MASK64


def _histogram_bases(snapshot: Mapping[str, object]) -> set:
    return {key[:-len(".count")] for key in snapshot
            if key.endswith(".count")}


def canonical_snapshot(snapshot: Mapping[str, object]) -> Dict[str, object]:
    """Mergeable form of an instrument snapshot (see module docstring)."""
    bases = _histogram_bases(snapshot)
    out: Dict[str, object] = {}
    for key, value in snapshot.items():
        base, _, suffix = key.rpartition(".")
        if base in bases:
            if suffix in _DERIVED:
                continue
            if suffix in ("min", "max") and not snapshot.get(f"{base}.count"):
                value = 0
        out[key] = value
    return out


def filter_owned(snapshot: Mapping[str, object],
                 owned: Sequence[int]) -> Dict[str, object]:
    """Drop per-DIMM-scoped signals for DIMMs the shard does not own.

    Unowned stacks are never driven, but their constant gauges (e.g.
    ``media.partitions``) would still report — and an additive merge
    would multiply-count them — so each worker keeps only the
    ``dimm<i>.``/``channel<i>.`` scopes it owns.  Unscoped signals
    (shared stats counters, system histograms) pass through; they only
    ever count the shard's own traffic.
    """
    owned_set = {int(d) for d in owned}
    out: Dict[str, object] = {}
    for key, value in snapshot.items():
        match = _SCOPED.search(key)
        if match is not None and int(match.group(1)) not in owned_set:
            continue
        out[key] = value
    return out


def merge_snapshots(snapshots: Sequence[Mapping[str, object]]
                    ) -> Dict[str, object]:
    """Merge canonical snapshots: sums, count-guarded min/max, error
    union.  Associative and order-independent."""
    bases = set()
    for snap in snapshots:
        bases |= _histogram_bases(snap)
    keys = set()
    for snap in snapshots:
        keys |= set(snap)
    out: Dict[str, object] = {}
    for key in sorted(keys):  # deterministic output order for byte-compares
        if key == "errors":
            paths = set()
            for snap in snapshots:
                paths.update(snap.get("errors", ()))
            out[key] = sorted(paths)
            continue
        base, _, suffix = key.rpartition(".")
        if base in bases and suffix in ("min", "max"):
            pick = min if suffix == "min" else max
            recorded = [snap[key] for snap in snapshots
                        if key in snap and snap.get(f"{base}.count")]
            out[key] = pick(recorded) if recorded else 0
            continue
        out[key] = sum(snap[key] for snap in snapshots if key in snap)
    return out


def merge_counts(counts: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Additive merge of per-op count dicts."""
    out: Dict[str, int] = {}
    for part in counts:
        for op, n in part.items():
            out[op] = out.get(op, 0) + n
    return out


def empty_timeline(interval_ps: int) -> Dict[str, object]:
    return {"interval_ps": int(interval_ps),
            "series": {"requests": {}, "busy_ps": {}}}


def merge_timelines(timelines: Sequence[Mapping[str, object]]
                    ) -> Dict[str, object]:
    """Pointwise-sum merge of completion-bucketed timelines.

    Buckets are keyed by completion time, so the timeline is a pure
    function of *which requests completed when* — independent of the
    order shards report in.
    """
    if not timelines:
        return empty_timeline(1)
    intervals = {int(tl["interval_ps"]) for tl in timelines}
    if len(intervals) != 1:
        raise ValueError(f"cannot merge timelines with mixed intervals: "
                         f"{sorted(intervals)}")
    out = empty_timeline(intervals.pop())
    for tl in timelines:
        for name, series in tl["series"].items():
            merged = out["series"].setdefault(name, {})
            for bucket, value in series.items():
                merged[bucket] = merged.get(bucket, 0) + value
    return out


def sort_timeline(timeline: Mapping[str, object]) -> Dict[str, object]:
    """Bucket-ordered copy (stable JSON output)."""
    return {
        "interval_ps": timeline["interval_ps"],
        "series": {name: {k: series[k]
                          for k in sorted(series, key=int)}
                   for name, series in timeline["series"].items()},
    }


def merge_latency_bounds(bounds: Sequence[Tuple[object, object]]
                         ) -> Tuple[object, object]:
    """Combine per-shard ``(min, max)`` latency pairs (``None`` = none
    recorded)."""
    mins = [lo for lo, _ in bounds if lo is not None]
    maxes = [hi for _, hi in bounds if hi is not None]
    return (min(mins) if mins else None, max(maxes) if maxes else None)
