"""Kernel-suite cases for the sharded + vectorized execution path.

Same contract as :mod:`repro.engine.kernelbench` (the PR 5 calendar
kernel): the legacy side — the serial scalar path every run before this
used — and the optimized side — the sharded, numpy-vectorized path —
execute the identical deterministic workload back-to-back, their merged
documents must agree byte-for-byte (a mismatch raises, it is never a
perf number), and ``repro-bench --suite kernel`` gates ``speedup >= 1``
relative to the same run, keeping the gate machine-independent.

Cases run the shards in-process: on a single-CPU runner forked workers
cannot win, so the gated speedup comes from the structural change (the
prefix-scan media kernels), and fork parallelism rides on top on
multi-core machines without being load-bearing for CI.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Mapping, Optional

from repro.shard.executor import (
    execute_inprocess,
    identity_view,
    merge_payloads,
    prepare,
)
from repro.shard.stream import synthetic_stream

#: requests per case at smoke scale (paper scale multiplies)
SMOKE_REQUESTS = 49152
PAPER_MULTIPLIER = 8

#: best-of repeats per side (same policy as the calendar kernel bench)
REPEATS = 3

#: case -> workload + target shape.  ``ddrt_burst`` mirrors the
#: calendar-kernel case of the same name: bursts of near-simultaneous
#: requests striped across the interleave granules.
CASES: Dict[str, Dict[str, object]] = {
    "ddrt_burst": {
        "kind": "burst",
        "write_ratio": 0.7,
        "fence_every": 8192,
        "shards": 2,
        "overrides": {"ndimms": 4, "interleaved": True,
                      "collect_latency_histograms": False},
    },
    "media_randmix": {
        "kind": "rand",
        "write_ratio": 0.5,
        "fence_every": 8192,
        "shards": 2,
        "overrides": {"ndimms": 2, "interleaved": True,
                      "collect_latency_histograms": False},
    },
}


def _time_side(prepared) -> tuple:
    """Best-of-``REPEATS`` wall seconds plus the (repeat-stable) doc."""
    best_wall = None
    doc = None
    view = None
    for _ in range(REPEATS):
        prepared.reset()
        start = time.perf_counter()
        sim_end, payloads = execute_inprocess(prepared)
        wall = time.perf_counter() - start
        merged = merge_payloads(prepared, sim_end, payloads, fork=False)
        rendered = json.dumps(identity_view(merged), sort_keys=True)
        if view is None:
            view = rendered
            doc = merged
        elif rendered != view:
            raise RuntimeError(
                f"shard bench nondeterminism: {prepared.engine} engine "
                f"produced different documents across repeats")
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return best_wall, doc, view


def run_shard_bench(nrequests: int = SMOKE_REQUESTS, seed: int = 0,
                    shards: Optional[int] = None,
                    cases: Optional[Mapping[str, Mapping[str, object]]] = None
                    ) -> Dict[str, Dict[str, object]]:
    """Run every case; returns kernelbench-shaped numbers per case.

    ``shards`` overrides each case's shard count (the ``repro-bench
    --shards`` knob).  Raises when the sharded+vectorized document
    diverges from the serial scalar document — bit-identity is a
    correctness invariant here, not a metric.
    """
    out: Dict[str, Dict[str, object]] = {}
    for name, spec in (cases or CASES).items():
        ops = synthetic_stream(
            str(spec["kind"]), nrequests,
            fence_every=int(spec["fence_every"]),
            write_ratio=float(spec["write_ratio"]), seed=seed)
        overrides = dict(spec["overrides"])
        nshards = int(shards if shards is not None else spec["shards"])
        legacy = prepare("vans", ops, shards=1, overrides=overrides,
                         level="media", engine="scalar")
        optimized = prepare("vans", ops, shards=nshards,
                            overrides=overrides, level="media",
                            engine="auto")
        legacy_wall, legacy_doc, legacy_view = _time_side(legacy)
        optimized_wall, optimized_doc, optimized_view = _time_side(optimized)
        if optimized_view != legacy_view:
            raise RuntimeError(
                f"shard bench identity violation in case {name!r}: "
                f"sharded {optimized.engine} document differs from the "
                f"serial scalar document (checksums "
                f"{optimized_doc['checksum']} vs {legacy_doc['checksum']})")
        checksum32 = int(legacy_doc["checksum"], 16) & 0xFFFFFFFF
        out[name] = {
            "events": nrequests,
            "order_checksum": checksum32,
            "optimized_wall_s": optimized_wall,
            "optimized_events_per_s": nrequests / optimized_wall
            if optimized_wall > 0 else 0.0,
            "legacy_wall_s": legacy_wall,
            "legacy_events_per_s": nrequests / legacy_wall
            if legacy_wall > 0 else 0.0,
            "speedup": (legacy_wall / optimized_wall)
            if optimized_wall > 0 else 0.0,
            "kernel_stats": {
                "engine": optimized.engine,
                "plan": optimized.plan.as_dict(),
                "epochs": len(optimized.epochs),
                "sim_end_ps": optimized_doc["sim_end_ps"],
            },
        }
    return out
