"""Physical-address to DRAM-coordinate mapping.

The default layout is row:bank:column:offset — consecutive cache lines
fill a row before moving to the next bank, which keeps sequential streams
on open rows (the behaviour DRAMA-style mapping probes detect on real
parts, and a good match for the on-DIMM DRAM where the 4KB AIT entries
are laid out contiguously).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two
from repro.engine.request import CACHE_LINE


@dataclass(frozen=True)
class AddressMapping:
    """Decompose byte addresses into (bank, row, col).

    ``row_bytes`` is the row-buffer size per bank; ``col`` indexes 64B
    bursts within the row.
    """

    nbanks: int = 16
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if not is_power_of_two(self.nbanks):
            raise ConfigError(f"nbanks must be a power of two, got {self.nbanks}")
        if not is_power_of_two(self.row_bytes) or self.row_bytes < CACHE_LINE:
            raise ConfigError(f"invalid row_bytes {self.row_bytes}")

    @property
    def cols_per_row(self) -> int:
        return self.row_bytes // CACHE_LINE

    def decompose(self, addr: int) -> Tuple[int, int, int]:
        """Return ``(bank, row, col)`` for a byte address."""
        line = addr // CACHE_LINE
        col = line % self.cols_per_row
        line //= self.cols_per_row
        bank = line % self.nbanks
        row = line // self.nbanks
        return bank, row, col

    def compose(self, bank: int, row: int, col: int) -> int:
        """Inverse of :meth:`decompose` (returns the line base address)."""
        line = (row * self.nbanks + bank) * self.cols_per_row + col
        return line * CACHE_LINE
