"""DDR timing parameter sets.

All parameters are stored in clock cycles (of tCK) exactly as JEDEC
datasheets specify them; helpers convert to picoseconds.  The DDR4-2666
set matches the grade the paper's server uses (Table III/V: 2666MT/s with
tCAS(19) tRCD(19) tRP(19) tRAS(43)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class DDR4Timing:
    """JEDEC-style timing parameters (cycles unless noted).

    ``tck_ps`` is the clock period in picoseconds; at 2666MT/s the clock
    runs at 1333MHz so tCK = 750ps.
    """

    name: str
    tck_ps: int
    burst_length: int  # transfers per burst (8 for DDR4 BL8)
    cl: int            # CAS latency (RD -> first data)
    cwl: int           # CAS write latency (WR -> first data in)
    trcd: int          # ACT -> RD/WR
    trp: int           # PRE -> ACT
    tras: int          # ACT -> PRE
    trrd: int          # ACT -> ACT, different banks
    tfaw: int          # window for at most 4 ACTs
    tccd: int          # RD->RD / WR->WR burst spacing
    twr: int           # end of write data -> PRE
    twtr: int          # end of write data -> RD
    trtp: int          # RD -> PRE
    trefi: int         # average refresh interval
    trfc: int          # refresh cycle time

    def __post_init__(self) -> None:
        if self.tck_ps <= 0:
            raise ConfigError("tCK must be positive")
        if self.tras < self.trcd:
            raise ConfigError("tRAS must cover tRCD")

    @property
    def trc(self) -> int:
        """ACT -> ACT, same bank."""
        return self.tras + self.trp

    @property
    def burst_cycles(self) -> int:
        """Data-bus occupancy of one burst in clock cycles (DDR: BL/2)."""
        return self.burst_length // 2

    def ps(self, cycles: int) -> int:
        """Convert a cycle count to picoseconds."""
        return cycles * self.tck_ps

    def read_latency_ps(self) -> int:
        """RD command to last data beat."""
        return self.ps(self.cl + self.burst_cycles)

    def scaled(self, name: str, read_scale: float, write_scale: float) -> "DDR4Timing":
        """Derive a slower technology (the 'NVRAM as slow DRAM' model).

        This is exactly what conventional simulators' PCM models do: keep
        the DDR state machine and stretch array timings.
        """
        return replace(
            self,
            name=name,
            trcd=int(round(self.trcd * read_scale)),
            tras=int(round(self.tras * write_scale)),
            trp=int(round(self.trp * write_scale)),
            twr=int(round(self.twr * write_scale)),
        )


#: DDR4-2666 (the paper's server DIMMs, Table V: 19-19-19-43).
DDR4_2666 = DDR4Timing(
    name="DDR4-2666",
    tck_ps=750,
    burst_length=8,
    cl=19,
    cwl=14,
    trcd=19,
    trp=19,
    tras=43,
    trrd=7,
    tfaw=30,
    tccd=7,
    twr=20,
    twtr=10,
    trtp=10,
    trefi=10400,  # 7.8us / 750ps
    trfc=467,     # 350ns for 8Gb parts
)

#: DDR4-2400 (17-17-17-39).
DDR4_2400 = DDR4Timing(
    name="DDR4-2400",
    tck_ps=833,
    burst_length=8,
    cl=17,
    cwl=12,
    trcd=17,
    trp=17,
    tras=39,
    trrd=6,
    tfaw=26,
    tccd=6,
    twr=18,
    twtr=9,
    trtp=9,
    trefi=9363,
    trfc=420,
)

#: DDR3-1600 (11-11-11-28) for the DRAMSim2-style baseline.
DDR3_1600 = DDR4Timing(
    name="DDR3-1600",
    tck_ps=1250,
    burst_length=8,
    cl=11,
    cwl=8,
    trcd=11,
    trp=11,
    tras=28,
    trrd=5,
    tfaw=24,
    tccd=4,
    twr=12,
    twtr=6,
    trtp=6,
    trefi=6240,
    trfc=208,
)

#: Ramulator-style PCM plug-in: DDR4 state machine with stretched array
#: timings (~4.4x reads, ~12x writes at the array), per common PCM params
#: (tRCD ~ 55ns read, write restore ~ 150ns+).
PCM_TIMING = DDR4_2666.scaled("PCM-2666", read_scale=4.4, write_scale=8.0)
