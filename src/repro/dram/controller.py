"""Command-level DDR4 controller.

For each line access the controller issues the minimal legal command
sequence (PRE/ACT/RD or WR plus lazy REF), tracking every JEDEC timing
constraint from :class:`~repro.dram.timing.DDR4Timing`.  It is an
open-page FCFS controller by default (closed-page optional); the command
stream can be recorded and replayed through the protocol checker.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.errors import ConfigError
from repro.dram.address import AddressMapping
from repro.dram.command import Command, CmdType
from repro.dram.timing import DDR4Timing
from repro.engine.stats import StatsRegistry


class _BankState:
    __slots__ = ("open_row", "act_ps", "pre_ready_ps", "act_ready_ps")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.act_ps = 0
        self.pre_ready_ps = 0  # earliest legal PRE
        self.act_ready_ps = 0  # earliest legal ACT


class DramController:
    """One channel of DDR4: banks, timing state, and command generation."""

    def __init__(
        self,
        timing: DDR4Timing,
        mapping: Optional[AddressMapping] = None,
        row_policy: str = "open",
        record_commands: bool = False,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if row_policy not in ("open", "closed"):
            raise ConfigError(f"unknown row policy {row_policy!r}")
        self.timing = timing
        self.mapping = mapping or AddressMapping()
        self.row_policy = row_policy
        self.record_commands = record_commands
        self.commands: List[Command] = []
        self.stats = stats or StatsRegistry()

        self._banks = [_BankState() for _ in range(self.mapping.nbanks)]
        self._act_history: Deque[int] = deque(maxlen=4)  # for tFAW
        self._last_act_ps = -(10**15)
        self._next_cas_ps = 0          # tCCD spacing between bursts
        self._rd_ready_after_wr_ps = 0  # tWTR
        self._next_refresh_due = timing.ps(timing.trefi)
        self._blocked_until_ps = 0      # tRFC after a refresh

        self._hits = self.stats.counter("dram.row_hits")
        self._misses = self.stats.counter("dram.row_misses")
        self._reads = self.stats.counter("dram.reads")
        self._writes = self.stats.counter("dram.writes")
        self._refreshes = self.stats.counter("dram.refreshes")

    # -- helpers -------------------------------------------------------

    def _emit(self, time_ps: int, kind: CmdType, bank: int, row: int = -1,
              col: int = -1) -> None:
        if self.record_commands:
            self.commands.append(Command(time_ps, kind, bank, row, col))

    def _do_refresh(self, now: int) -> None:
        """Issue any overdue all-bank refreshes before servicing ``now``."""
        t = self.timing
        while self._next_refresh_due <= now:
            start = max(self._next_refresh_due, self._blocked_until_ps)
            # All banks must be precharged before REF.
            for bank_id, bank in enumerate(self._banks):
                if bank.open_row is not None:
                    pre_time = max(start, bank.pre_ready_ps)
                    self._emit(pre_time, CmdType.PRE, bank_id)
                    bank.open_row = None
                    start = max(start, pre_time + t.ps(t.trp))
            self._emit(start, CmdType.REF, -1)
            self._refreshes.add()
            end = start + t.ps(t.trfc)
            self._blocked_until_ps = end
            for bank in self._banks:
                bank.act_ready_ps = max(bank.act_ready_ps, end)
            self._next_refresh_due += t.ps(t.trefi)

    def _open_row(self, bank_id: int, row: int, earliest: int) -> int:
        """Ensure ``row`` is open in ``bank_id``; returns CAS-ready time."""
        t = self.timing
        bank = self._banks[bank_id]
        if bank.open_row == row:
            self._hits.add()
            return max(earliest, bank.act_ps + t.ps(t.trcd))
        self._misses.add()
        when = earliest
        if bank.open_row is not None:
            pre_time = max(when, bank.pre_ready_ps)
            self._emit(pre_time, CmdType.PRE, bank_id)
            bank.open_row = None
            bank.act_ready_ps = max(bank.act_ready_ps, pre_time + t.ps(t.trp))
        act_time = max(when, bank.act_ready_ps, self._blocked_until_ps,
                       self._last_act_ps + t.ps(t.trrd))
        if len(self._act_history) == 4:
            act_time = max(act_time, self._act_history[0] + t.ps(t.tfaw))
        self._emit(act_time, CmdType.ACT, bank_id, row=row)
        bank.open_row = row
        bank.act_ps = act_time
        bank.pre_ready_ps = act_time + t.ps(t.tras)
        bank.act_ready_ps = act_time + t.ps(t.trc)
        self._last_act_ps = act_time
        self._act_history.append(act_time)
        return act_time + t.ps(t.trcd)

    # -- public API ----------------------------------------------------

    def access(self, addr: int, is_write: bool, now: int) -> int:
        """Perform one 64B access; returns the data completion time.

        For reads this is the time of the last data beat on the bus; for
        writes it is the end of the write burst (write data has entered
        the array interface; durability rules are enforced via tWR before
        any later PRE).
        """
        self._do_refresh(now)
        t = self.timing
        bank_id, row, col = self.mapping.decompose(addr)
        cas_ready = self._open_row(bank_id, row, max(now, self._blocked_until_ps))
        cas_time = max(cas_ready, self._next_cas_ps)
        if not is_write:
            cas_time = max(cas_time, self._rd_ready_after_wr_ps)

        bank = self._banks[bank_id]
        burst = t.ps(t.burst_cycles)
        if is_write:
            self._emit(cas_time, CmdType.WR, bank_id, row=row, col=col)
            self._writes.add()
            data_end = cas_time + t.ps(t.cwl) + burst
            bank.pre_ready_ps = max(bank.pre_ready_ps, data_end + t.ps(t.twr))
            self._rd_ready_after_wr_ps = max(
                self._rd_ready_after_wr_ps, data_end + t.ps(t.twtr)
            )
        else:
            self._emit(cas_time, CmdType.RD, bank_id, row=row, col=col)
            self._reads.add()
            data_end = cas_time + t.ps(t.cl) + burst
            bank.pre_ready_ps = max(bank.pre_ready_ps, cas_time + t.ps(t.trtp))
        self._next_cas_ps = cas_time + t.ps(t.tccd)

        if self.row_policy == "closed":
            pre_time = bank.pre_ready_ps
            self._emit(pre_time, CmdType.PRE, bank_id)
            bank.open_row = None
            bank.act_ready_ps = max(bank.act_ready_ps, pre_time + t.ps(t.trp))
        return data_end

    @property
    def row_hit_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    def reset(self) -> None:
        """Forget all timing/row state (used between experiment phases)."""
        t = self.timing
        self.__init__(
            timing=t,
            mapping=self.mapping,
            row_policy=self.row_policy,
            record_commands=self.record_commands,
            stats=self.stats,
        )
