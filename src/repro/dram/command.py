"""DDR command representation used by controllers and the verifier."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class CmdType(Enum):
    ACT = auto()   # activate (open) a row
    PRE = auto()   # precharge (close) a bank
    RD = auto()    # column read burst
    WR = auto()    # column write burst
    REF = auto()   # all-bank refresh


@dataclass(frozen=True)
class Command:
    """One DDR command with its issue time (picoseconds).

    ``row`` and ``col`` are only meaningful for ACT and RD/WR
    respectively; they stay at -1 otherwise.
    """

    time_ps: int
    kind: CmdType
    bank: int
    row: int = -1
    col: int = -1

    def __str__(self) -> str:
        if self.kind is CmdType.ACT:
            detail = f"row={self.row}"
        elif self.kind in (CmdType.RD, CmdType.WR):
            detail = f"col={self.col}"
        else:
            detail = ""
        return f"{self.time_ps:>12}ps {self.kind.name:<3} bank={self.bank} {detail}"
