"""DDR4 protocol checker.

Replays a command trace and asserts every timing/state rule the
controller is supposed to honour.  This is an *independent*
implementation of the constraints (it shares only the timing numbers), so
a controller bug shows up as a :class:`ProtocolError` — the same role
Micron's Verilog model plays in the paper's Section IV-B verification.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.common.errors import ProtocolError
from repro.dram.command import Command, CmdType
from repro.dram.timing import DDR4Timing


class _CheckBank:
    __slots__ = ("open_row", "act_ps", "last_rd_ps", "wr_data_end_ps", "pre_ps")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.act_ps: Optional[int] = None
        self.last_rd_ps: Optional[int] = None
        self.wr_data_end_ps: Optional[int] = None
        self.pre_ps: Optional[int] = None


class DDR4ProtocolChecker:
    """Validates a DDR4 command stream against the JEDEC rules.

    Usage::

        checker = DDR4ProtocolChecker(DDR4_2666, nbanks=16)
        checker.check(controller.commands)   # raises ProtocolError on bug
    """

    def __init__(self, timing: DDR4Timing, nbanks: int = 16) -> None:
        self.timing = timing
        self.nbanks = nbanks
        self.violations: List[str] = []

    def _fail(self, cmd: Command, rule: str, detail: str) -> None:
        raise ProtocolError(f"{rule} violated by [{cmd}]: {detail}")

    def check(self, commands: Iterable[Command], sort: bool = True) -> int:
        """Replay ``commands``; raises on the first violation.

        Commands are sorted by issue time first (``sort=True``): the
        controller may *record* commands for overlapping transactions out
        of wall-clock order, but legality is defined over the time-ordered
        stream the bus would carry.  Returns the number checked.
        """
        t = self.timing
        if sort:
            commands = sorted(commands, key=lambda c: c.time_ps)
        banks = [_CheckBank() for _ in range(self.nbanks)]
        act_history: Deque[int] = deque(maxlen=4)
        last_act_ps: Optional[int] = None
        last_cas_ps: Optional[int] = None
        last_wr_data_end: Optional[int] = None
        ref_end_ps = 0
        last_time = -1
        count = 0

        for cmd in commands:
            count += 1
            if cmd.time_ps < last_time:
                self._fail(cmd, "ordering", "command trace not time-ordered")
            last_time = cmd.time_ps
            if cmd.kind is not CmdType.REF and cmd.time_ps < ref_end_ps:
                self._fail(cmd, "tRFC", f"command during refresh (until {ref_end_ps})")

            if cmd.kind is CmdType.ACT:
                bank = banks[cmd.bank]
                if bank.open_row is not None:
                    self._fail(cmd, "state", "ACT to a bank with an open row")
                if bank.pre_ps is not None and cmd.time_ps < bank.pre_ps + t.ps(t.trp):
                    self._fail(cmd, "tRP", f"ACT {cmd.time_ps - bank.pre_ps}ps after PRE")
                if bank.act_ps is not None and cmd.time_ps < bank.act_ps + t.ps(t.trc):
                    self._fail(cmd, "tRC", "same-bank ACT too soon")
                if last_act_ps is not None and cmd.time_ps < last_act_ps + t.ps(t.trrd):
                    self._fail(cmd, "tRRD", "ACT-to-ACT spacing too small")
                if len(act_history) == 4 and cmd.time_ps < act_history[0] + t.ps(t.tfaw):
                    self._fail(cmd, "tFAW", "5th ACT inside the tFAW window")
                bank.open_row = cmd.row
                bank.act_ps = cmd.time_ps
                bank.last_rd_ps = None
                bank.wr_data_end_ps = None
                last_act_ps = cmd.time_ps
                act_history.append(cmd.time_ps)

            elif cmd.kind in (CmdType.RD, CmdType.WR):
                bank = banks[cmd.bank]
                if bank.open_row is None:
                    self._fail(cmd, "state", "column access to a precharged bank")
                if cmd.row != -1 and bank.open_row != cmd.row:
                    self._fail(cmd, "state", f"column access to row {cmd.row} while "
                                             f"row {bank.open_row} is open")
                assert bank.act_ps is not None
                if cmd.time_ps < bank.act_ps + t.ps(t.trcd):
                    self._fail(cmd, "tRCD", "column access before tRCD")
                if last_cas_ps is not None and cmd.time_ps < last_cas_ps + t.ps(t.tccd):
                    self._fail(cmd, "tCCD", "burst spacing too small")
                if cmd.kind is CmdType.RD:
                    if (last_wr_data_end is not None
                            and cmd.time_ps < last_wr_data_end + t.ps(t.twtr)):
                        self._fail(cmd, "tWTR", "read too soon after write data")
                    bank.last_rd_ps = cmd.time_ps
                else:
                    data_end = cmd.time_ps + t.ps(t.cwl) + t.ps(t.burst_cycles)
                    bank.wr_data_end_ps = data_end
                    last_wr_data_end = max(last_wr_data_end or 0, data_end)
                last_cas_ps = cmd.time_ps

            elif cmd.kind is CmdType.PRE:
                bank = banks[cmd.bank]
                if bank.open_row is None:
                    # PRE to an idle bank is legal (NOP), but we flag it as
                    # sloppy controller behaviour rather than an error.
                    self.violations.append(f"redundant PRE at {cmd.time_ps}")
                    continue
                assert bank.act_ps is not None
                if cmd.time_ps < bank.act_ps + t.ps(t.tras):
                    self._fail(cmd, "tRAS", "PRE before tRAS")
                if (bank.last_rd_ps is not None
                        and cmd.time_ps < bank.last_rd_ps + t.ps(t.trtp)):
                    self._fail(cmd, "tRTP", "PRE too soon after read")
                if (bank.wr_data_end_ps is not None
                        and cmd.time_ps < bank.wr_data_end_ps + t.ps(t.twr)):
                    self._fail(cmd, "tWR", "PRE before write recovery")
                bank.open_row = None
                bank.pre_ps = cmd.time_ps

            elif cmd.kind is CmdType.REF:
                for bank_id, bank in enumerate(banks):
                    if bank.open_row is not None:
                        self._fail(cmd, "state", f"REF with bank {bank_id} open")
                ref_end_ps = cmd.time_ps + t.ps(t.trfc)

        return count
