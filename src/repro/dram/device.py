"""A DRAM device: one or more channels behind a line-interleaved front end.

This is the building block for (a) the on-DIMM DRAM inside the Optane
model (single channel, holds AIT table + buffer) and (b) the DRAM main
memory of the baseline server configuration (multi-channel).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.units import GIB, is_power_of_two
from repro.dram.address import AddressMapping
from repro.dram.controller import DramController
from repro.dram.timing import DDR4Timing
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry


class DramDevice:
    """Multi-channel DDR4 memory with a 64B-line channel interleave."""

    def __init__(
        self,
        timing: DDR4Timing,
        nchannels: int = 1,
        capacity_bytes: int = 4 * GIB,
        mapping: Optional[AddressMapping] = None,
        row_policy: str = "open",
        record_commands: bool = False,
    ) -> None:
        if not is_power_of_two(nchannels):
            raise ConfigError(f"nchannels must be a power of two, got {nchannels}")
        self.timing = timing
        self.nchannels = nchannels
        self.capacity_bytes = capacity_bytes
        self.stats = StatsRegistry()
        self.channels: List[DramController] = [
            DramController(
                timing,
                mapping=mapping,
                row_policy=row_policy,
                record_commands=record_commands,
                stats=self.stats,
            )
            for _ in range(nchannels)
        ]

    def _channel_of(self, addr: int) -> int:
        return (addr // CACHE_LINE) % self.nchannels

    def access(self, addr: int, is_write: bool, now: int) -> int:
        """One 64B access; returns the completion time in picoseconds."""
        addr %= self.capacity_bytes
        channel = self.channels[self._channel_of(addr)]
        local = addr // (CACHE_LINE * self.nchannels) * CACHE_LINE + addr % CACHE_LINE
        return channel.access(local, is_write, now)

    def access_block(self, addr: int, nbytes: int, is_write: bool, now: int) -> int:
        """Access ``nbytes`` starting at ``addr`` line by line.

        Returns the completion time of the final line; consecutive lines
        stream across channels/banks so big blocks (e.g. a 4KB AIT entry
        fill) get realistic pipelined throughput, not nbytes/64 serial
        latencies.
        """
        completion = now
        for offset in range(0, max(nbytes, CACHE_LINE), CACHE_LINE):
            completion = max(completion, self.access(addr + offset, is_write, now))
        return completion

    def all_commands(self):
        """Concatenated command trace from all channels (if recorded)."""
        out = []
        for channel in self.channels:
            out.extend(channel.commands)
        return out

    @property
    def row_hit_rate(self) -> float:
        hits = self.stats.counter("dram.row_hits").value
        misses = self.stats.counter("dram.row_misses").value
        total = hits + misses
        return hits / total if total else 0.0

    def reset(self) -> None:
        """As-built state: idle channels *and* zeroed device counters
        (row hits/misses etc.), so a warm-cache-reused device is
        indistinguishable from a fresh one."""
        for channel in self.channels:
            channel.reset()
        self.stats.reset()
