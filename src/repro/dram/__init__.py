"""DDR4 DRAM substrate.

Models DRAM at command level (ACT/PRE/RD/WR/REF with full timing
constraints).  Used in three places, mirroring the paper:

* the on-DIMM DDR4 DRAM that holds the Optane AIT table and AIT buffer,
* the DRAM-main-memory baseline system for the Figure 11 speedup ratios,
* the conventional-DRAM-architecture baselines (DRAMSim2/Ramulator-style).

The command stream each controller produces can be replayed through
:class:`~repro.dram.verifier.DDR4ProtocolChecker`, which plays the role
of Micron's Verilog verification model in Section IV-B.
"""

from repro.dram.timing import (
    DDR4Timing,
    DDR4_2666,
    DDR4_2400,
    DDR3_1600,
    PCM_TIMING,
)
from repro.dram.command import Command, CmdType
from repro.dram.address import AddressMapping
from repro.dram.controller import DramController
from repro.dram.device import DramDevice
from repro.dram.verifier import DDR4ProtocolChecker

__all__ = [
    "DDR4Timing",
    "DDR4_2666",
    "DDR4_2400",
    "DDR3_1600",
    "PCM_TIMING",
    "Command",
    "CmdType",
    "AddressMapping",
    "DramController",
    "DramDevice",
    "DDR4ProtocolChecker",
]
