"""Wear-leveling engine.

The paper's policy prober (Section III-D) finds that repeated 256B
overwrites hit a >100x tail latency roughly every 14,000 iterations
(3.4MB written to the same region), and that the tails all but disappear
once the overwritten region exceeds 64KB — implying the wear-leveler
tracks and migrates 64KB blocks.

This module implements that behaviour: per-64KB-block write counters, a
migration threshold, a remap table (the AIT's media indirection), and a
block-copy migration whose duration stalls in-flight writes to the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import KIB, US, is_power_of_two
from repro.engine.stats import StatsRegistry


@dataclass(frozen=True)
class WearConfig:
    """Wear-leveling parameters (defaults = LENS-characterized values)."""

    block_bytes: int = 64 * KIB
    #: media writes to one block before it is migrated; ~14,000 256B
    #: overwrite iterations per tail event in the paper's Figure 7b.
    migrate_threshold: int = 14_000
    #: duration of one 64KB block migration (the measured tail is tens of
    #: microseconds; Figure 7b shows ~10-60us spikes).
    migration_ps: int = 50 * US
    #: optional counter aging: every this-many total media writes the
    #: per-block counters are halved (0 disables).  Disabled by default:
    #: the Figure 7c frequency drop needs no decay — writing a fixed
    #: volume across two or more wear blocks leaves every per-block count
    #: under the migration threshold, so migrations stop by quantization
    #: alone — and plain accumulating counters are what let YCSB's hot
    #: lines trigger migrations disproportionately (Fig. 12b).
    decay_window_writes: int = 0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(f"block size must be a power of two: {self.block_bytes}")
        if self.migrate_threshold <= 0:
            raise ConfigError("migrate_threshold must be positive")


class WearLeveler:
    """Tracks block wear, remaps blocks, and injects migration stalls."""

    def __init__(
        self,
        config: WearConfig,
        capacity_bytes: int,
        stats: Optional[StatsRegistry] = None,
        track_line_wear: bool = False,
        flight=None,
        faults=None,
    ) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.nblocks = max(1, capacity_bytes // config.block_bytes)
        self.stats = stats or StatsRegistry()
        self.track_line_wear = track_line_wear
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS

        self._write_counts: Dict[int, int] = {}
        self.migration_counts: Dict[int, int] = {}  # block -> migrations
        #: start-gap-style rotation: logical block b currently lives at
        #: physical block (b + generation_b) mod nblocks
        self._remap: Dict[int, int] = {}
        self._blocked_until: Dict[int, int] = {}
        self.line_wear: Dict[int, int] = {}  # 256B line -> media write count

        self._migrations = self.stats.counter("wear.migrations")
        self._stall_ps = self.stats.counter("wear.stall_ps")
        self._writes = self.stats.counter("wear.media_writes")

    def _block_of(self, addr: int) -> int:
        return addr // self.config.block_bytes

    def translate(self, addr: int) -> int:
        """Logical media address -> physical media address after remap."""
        block = self._block_of(addr)
        generation = self._remap.get(block, 0)
        physical = (block + generation) % self.nblocks
        return physical * self.config.block_bytes + (
            addr % self.config.block_bytes
        )

    def block_write_count(self, addr: int) -> int:
        """Writes accumulated toward migration for the block of ``addr``."""
        return self._write_counts.get(self._block_of(addr), 0)

    def on_write(self, addr: int, now: int) -> Tuple[int, bool]:
        """Account one 256B media write to ``addr`` at time ``now``.

        Returns ``(ready_time, migrated)``: the time the write may proceed
        (delayed past ``now`` when it lands in a block that is migrating
        or that this write pushed over the wear threshold), and whether
        this write triggered a migration.
        """
        cfg = self.config
        block = self._block_of(addr)
        self._writes.add()
        if (cfg.decay_window_writes
                and self._writes.value % cfg.decay_window_writes == 0):
            # Optional hot-block counter aging.
            self._write_counts = {
                b: c // 2 for b, c in self._write_counts.items() if c > 1
            }
        if self.track_line_wear:
            line = addr // 256 * 256
            self.line_wear[line] = self.line_wear.get(line, 0) + 1

        ready = now
        blocked = self._blocked_until.get(block, 0)
        if blocked > ready:
            ready = blocked

        count = self._write_counts.get(block, 0) + 1
        if count >= cfg.migrate_threshold:
            # Migrate: copy the 64KB block to a spare location.  In-flight
            # and subsequent writes to this block stall until the copy ends.
            self._write_counts[block] = 0
            if self.nblocks > 1:
                self._remap[block] = self._remap.get(block, 0) + 1
            migration_ps = cfg.migration_ps
            fa = self.faults
            if fa.enabled:
                # media-latency episodes stretch the 64KB block copy too
                migration_ps += fa.migration_extra_ps(ready, cfg.migration_ps)
            end = ready + migration_ps
            self._blocked_until[block] = end
            self._migrations.add()
            self.migration_counts[block] = self.migration_counts.get(block, 0) + 1
            self._stall_ps.add(end - now)
            if self.flight.active:
                self.flight.span("media.wear", now, end, phase="migrate",
                                 block=f"0x{block * cfg.block_bytes:x}")
            return end, True
        self._write_counts[block] = count
        if ready > now:
            self._stall_ps.add(ready - now)
            if self.flight.active:
                self.flight.span("media.wear", now, ready, phase="stall")
        return ready, False

    def on_read(self, addr: int, now: int) -> int:
        """Reads also stall while their block is mid-migration."""
        blocked = self._blocked_until.get(self._block_of(addr), 0)
        if blocked > now:
            if self.flight.active:
                self.flight.span("media.wear", now, blocked, phase="stall")
            return blocked
        return now

    @property
    def migrations(self) -> int:
        return self._migrations.value

    def publish(self, bus, prefix: str = "wear") -> None:
        """Register pull-gauges for wear state on an instrument bus.

        The push-counters (migrations, stall time, media writes) already
        live in the shared stats registry; these gauges expose the
        *structural* state — how many blocks have accumulated wear and
        how many have been remapped — without any hot-path recording.
        """
        bus.gauge(f"{prefix}.blocks_tracked", lambda: len(self._write_counts))
        bus.gauge(f"{prefix}.blocks_remapped", lambda: len(self._remap))
        bus.gauge(f"{prefix}.hot_lines_tracked", lambda: len(self.line_wear))

    def top_written_lines(self, n: int = 10):
        """The ``n`` most-written 256B lines (requires track_line_wear)."""
        ranked = sorted(self.line_wear.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]

    def reset(self) -> None:
        self._write_counts.clear()
        self.migration_counts.clear()
        self._remap.clear()
        self._blocked_until.clear()
        self.line_wear.clear()
        self._migrations.reset()
        self._stall_ps.reset()
        self._writes.reset()
