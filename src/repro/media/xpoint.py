"""3D-XPoint media timing model.

Industrial documents (Micron [37], Intel [23]) describe the media as
accessed in 256-byte units; reads and writes have asymmetric array
timings and the dies are partitioned so independent 256B accesses can
proceed in parallel.  We model each partition as an FCFS server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import GIB, NS, align_down, is_power_of_two
from repro.engine.queueing import BankedServer
from repro.engine.stats import StatsRegistry


@dataclass(frozen=True)
class XPointConfig:
    """Media geometry and array timings.

    Defaults are calibrated so the full VANS pipeline lands on the
    paper's measured latency tiers (AIT-buffer-miss loads ~ 400ns/CL).
    """

    capacity_bytes: int = 4 * GIB
    granularity: int = 256
    npartitions: int = 16
    read_ps: int = 160 * NS    # one 256B array read
    write_ps: int = 480 * NS   # one 256B array write (program)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.granularity):
            raise ConfigError(f"granularity must be a power of two: {self.granularity}")
        if not is_power_of_two(self.npartitions):
            raise ConfigError(f"npartitions must be a power of two: {self.npartitions}")
        if self.capacity_bytes % self.granularity:
            raise ConfigError("capacity must be a multiple of the access granularity")


class XPointMedia:
    """Banked 3D-XPoint media with 256B access units."""

    def __init__(self, config: XPointConfig, stats: StatsRegistry = None,
                 flight=None, faults=None) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        self.config = config
        self.banks = BankedServer(config.npartitions)
        self.stats = stats or StatsRegistry()
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        self._reads = self.stats.counter("media.reads")
        self._writes = self.stats.counter("media.writes")
        self._bytes_read = self.stats.counter("media.bytes_read")
        self._bytes_written = self.stats.counter("media.bytes_written")
        # Precompiled dispatch: flight/faults are constructor-fixed, so
        # uninstrumented media binds access variants with the fault/flight
        # checks compiled out and the block loop's bindings hoisted.  The
        # per-partition serves happen in the identical order with the
        # identical service times, so timing stays bit-identical.
        if self.flight is NULL_FLIGHT and self.faults is NULL_FAULTS:
            self.access = self._access_fast
            self.access_block = self._access_block_fast

    def _access_fast(self, media_addr: int, is_write: bool, now: int) -> int:
        """Uninstrumented :meth:`access` (same timing, no fault/flight)."""
        cfg = self.config
        gran = cfg.granularity
        media_addr = (media_addr % cfg.capacity_bytes) // gran * gran
        if is_write:
            self._writes.add()
            self._bytes_written.add(gran)
            service = cfg.write_ps
        else:
            self._reads.add()
            self._bytes_read.add(gran)
            service = cfg.read_ps
        return self.banks.serve(media_addr // gran % cfg.npartitions,
                                now, service)

    def _access_block_fast(self, media_addr: int, nbytes: int,
                           is_write: bool, now: int) -> int:
        """Uninstrumented :meth:`access_block`: one batched counter
        update and direct per-partition serves (same order and service
        times as unit-by-unit :meth:`access` calls)."""
        cfg = self.config
        gran = cfg.granularity
        capacity = cfg.capacity_bytes
        npartitions = cfg.npartitions
        banks = self.banks.banks
        completion = now
        end = media_addr + max(nbytes, gran)
        addr = align_down(media_addr, gran)
        units = 0
        while addr < end:
            unit = (addr % capacity) // gran * gran
            done = banks[unit // gran % npartitions].serve(
                now, cfg.write_ps if is_write else cfg.read_ps)
            if done > completion:
                completion = done
            addr += gran
            units += 1
        if is_write:
            self._writes.add(units)
            self._bytes_written.add(units * gran)
        else:
            self._reads.add(units)
            self._bytes_read.add(units * gran)
        return completion

    def _partition_of(self, media_addr: int) -> int:
        return (media_addr // self.config.granularity) % self.config.npartitions

    def access(self, media_addr: int, is_write: bool, now: int) -> int:
        """One aligned 256B media access; returns completion time."""
        cfg = self.config
        media_addr = align_down(media_addr % cfg.capacity_bytes, cfg.granularity)
        service = cfg.write_ps if is_write else cfg.read_ps
        fa = self.faults
        if fa.enabled:
            # latency-spike episodes and UE retry/ECC cost on reads in an
            # uncorrectable region
            service += fa.media_extra_ps(media_addr, is_write, now, service)
        if is_write:
            self._writes.add()
            self._bytes_written.add(cfg.granularity)
        else:
            self._reads.add()
            self._bytes_read.add(cfg.granularity)
        partition = self._partition_of(media_addr)
        done = self.banks.serve(partition, now, service)
        if self.flight.active:
            self.flight.span("media", now, done,
                             phase="write" if is_write else "read",
                             partition=partition)
        return done

    def access_batch(self, addrs, is_write, issues, engine: str = "auto"):
        """Batched :meth:`access` over parallel sequences.

        ``engine="vector"`` uses the numpy prefix-scan kernel
        (:mod:`repro.shard.vector`), ``"scalar"`` the authoritative
        per-request loop; ``"auto"`` picks vector when numpy is
        available and the media is uninstrumented.  Both produce
        identical completion times and leave identical partition-server
        and counter state — the cross-check ``repro-shard crosscheck``
        and the kernel bench suite enforce.
        """
        from repro.shard import vector
        if engine not in ("auto", "vector", "scalar"):
            raise ConfigError(f"unknown batch engine {engine!r}")
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        eligible = (vector.HAVE_NUMPY and self.flight is NULL_FLIGHT
                    and self.faults is NULL_FAULTS)
        if engine == "vector" and not eligible:
            raise ConfigError("vector batch engine needs numpy and "
                              "uninstrumented media")
        if engine == "scalar" or not eligible:
            return vector.media_access_batch_scalar(
                self, addrs, is_write, issues)
        return vector.media_access_batch(self, addrs, is_write, issues)

    def access_block(self, media_addr: int, nbytes: int, is_write: bool, now: int) -> int:
        """Access ``nbytes`` (e.g. a 4KB AIT entry fill) as parallel 256B
        units across partitions; returns the last completion time."""
        cfg = self.config
        completion = now
        end = media_addr + max(nbytes, cfg.granularity)
        addr = align_down(media_addr, cfg.granularity)
        while addr < end:
            completion = max(completion, self.access(addr, is_write, now))
            addr += cfg.granularity
        return completion

    def publish(self, bus, prefix: str) -> None:
        """Register pull-gauges for the partition servers (aggregate
        served/busy plus occupancy of the busiest partition) — evaluated
        only at snapshot time, zero cost on the access path."""
        self.banks.publish(bus, f"{prefix}.banks")
        bus.gauge(f"{prefix}.partitions", lambda: len(self.banks))
        bus.gauge(f"{prefix}.max_busy_until",
                  lambda: max(b.busy_until for b in self.banks.banks))

    @property
    def reads(self) -> int:
        return self._reads.value

    @property
    def writes(self) -> int:
        return self._writes.value

    def reset_stats(self) -> None:
        self._reads.reset()
        self._writes.reset()
        self._bytes_read.reset()
        self._bytes_written.reset()
        self.banks.reset()

    def reset(self) -> None:
        """As-built state: idle partitions, zero counters (warm-cache
        lifecycle; the media holds no data, only timing state)."""
        self.reset_stats()
