"""3D-XPoint NVRAM media model.

Models the persistent media behind the Optane DIMM's buffers: 256B access
granularity, asymmetric read/write timing, banked parallelism, and a
wear-leveling engine that migrates 64KB blocks and produces the >100x
write tail latencies the paper measures (Figure 7b-c).
"""

from repro.media.xpoint import XPointConfig, XPointMedia
from repro.media.wear import WearLeveler, WearConfig

__all__ = ["XPointConfig", "XPointMedia", "WearLeveler", "WearConfig"]
