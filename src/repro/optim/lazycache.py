"""Lazy cache (Section V-C).

A tiny on-DIMM cache (LZ1 + LZ2, 3KB total, ADR-protected) for
frequently *written* data.  It is filled by reusing the AIT's wear
records: when a write triggers (or approaches) wear-leveling, the target
block's priority rises and subsequent writes to it are absorbed by the
Lazy cache instead of being written through to media — cutting write
amplification and wear-leveling migrations for workloads with
concentrated writes (YCSB's Top10 lines).

A Write Lookaside Buffer (WLB) keeps the addresses of the Lazy cache
entries; dirty evictions drain to media through the normal path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.units import KIB
from repro.engine.stats import StatsRegistry


@dataclass(frozen=True)
class LazyCacheConfig:
    """Section V-D setup: 1KB LZ1 (64B lines) + 2KB LZ2 (128B lines)."""

    lz1_bytes: int = 1 * KIB
    lz1_line: int = 64
    lz2_bytes: int = 2 * KIB
    lz2_line: int = 128
    #: wear-count fraction of the migration threshold above which a
    #: block becomes a Lazy-cache candidate
    hot_fraction: float = 0.5
    #: SRAM hit service time
    hit_ps: int = 25_000

    @property
    def lz1_entries(self) -> int:
        return self.lz1_bytes // self.lz1_line

    @property
    def lz2_entries(self) -> int:
        return self.lz2_bytes // self.lz2_line


class LazyCache:
    """Two-level inclusive write cache with a WLB of hot addresses."""

    def __init__(self, config: Optional[LazyCacheConfig] = None,
                 stats: Optional[StatsRegistry] = None,
                 flight=None) -> None:
        from repro.flight.recorder import NULL_FLIGHT
        self.config = config or LazyCacheConfig()
        self.stats = stats or StatsRegistry()
        self.flight = flight if flight is not None else NULL_FLIGHT
        # WLB: wear-hot 256B block addresses eligible for caching
        self._wlb: "OrderedDict[int, bool]" = OrderedDict()
        self._wlb_entries = 64
        # LZ1/LZ2 tag stores (inclusive: LZ1 subset of LZ2)
        self._lz1: "OrderedDict[int, bool]" = OrderedDict()
        self._lz2: "OrderedDict[int, bool]" = OrderedDict()
        self._c_absorbed = self.stats.counter("lazy.absorbed_writes")
        self._c_evicted = self.stats.counter("lazy.evictions")
        self._c_marked = self.stats.counter("lazy.marked_blocks")

    # -- WLB management (driven by AIT wear records) ---------------------

    def mark_hot(self, block_addr: int) -> None:
        """AIT wear record crossed the priority threshold for this block
        (called during/near a wear-leveling migration)."""
        if block_addr not in self._wlb:
            self._c_marked.add()
        self._wlb[block_addr] = True
        self._wlb.move_to_end(block_addr)
        while len(self._wlb) > self._wlb_entries:
            self._wlb.popitem(last=False)

    def is_hot(self, block_addr: int) -> bool:
        return block_addr in self._wlb

    # -- write path -------------------------------------------------------

    def absorb(self, block_addr: int, now: int = 0) -> List[int]:
        """Cache a write to a hot block at simulated time ``now``.

        Returns the list of dirty block addresses evicted (the caller
        writes those through to media).
        """
        self._c_absorbed.add()
        evicted: List[int] = []
        cfg = self.config
        self._lz1[block_addr] = True
        self._lz1.move_to_end(block_addr)
        if len(self._lz1) > cfg.lz1_entries:
            self._lz1.popitem(last=False)  # inclusive: still in LZ2
        self._lz2[block_addr] = True
        self._lz2.move_to_end(block_addr)
        if len(self._lz2) > cfg.lz2_entries:
            victim, dirty = self._lz2.popitem(last=False)
            self._lz1.pop(victim, None)
            if dirty:
                self._c_evicted.add()
                evicted.append(victim)
        if self.flight.active:
            fl = self.flight
            fl.instant("dimm.lazy", "absorb", now, block=f"0x{block_addr:x}")
            for victim in evicted:
                fl.instant("dimm.lazy", "evict", now, block=f"0x{victim:x}")
        return evicted

    def contains(self, block_addr: int) -> bool:
        return block_addr in self._lz2

    def publish(self, bus, prefix: str) -> None:
        """Register occupancy pull-gauges (WLB / LZ1 / LZ2 entry counts)
        on an instrument bus — snapshot-time only, zero write-path cost."""
        bus.gauge(f"{prefix}.wlb_entries", lambda: len(self._wlb))
        bus.gauge(f"{prefix}.lz1_entries", lambda: len(self._lz1))
        bus.gauge(f"{prefix}.lz2_entries", lambda: len(self._lz2))

    def flush(self) -> List[int]:
        """Drain everything (power-fail / fence path via ADR)."""
        dirty = [addr for addr, d in self._lz2.items() if d]
        self._lz1.clear()
        self._lz2.clear()
        return dirty

    def reset(self) -> None:
        """Back to the as-built state: empty WLB/LZ1/LZ2, zero counters.

        The counters live in the owning system's shared stats registry —
        resetting them here keeps the cache self-contained when driven
        standalone; a registry-level reset is idempotent on top.
        """
        self._wlb.clear()
        self._lz1.clear()
        self._lz2.clear()
        self._c_absorbed.reset()
        self._c_evicted.reset()
        self._c_marked.reset()

    @property
    def absorbed(self) -> int:
        return self._c_absorbed.value
