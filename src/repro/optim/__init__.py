"""Architectural optimizations evaluated with VANS (Section V).

* :class:`~repro.optim.pretranslation.PreTranslation` — in-memory
  Pre-translation: a table in the on-DIMM DRAM (hanging off AIT entries)
  plus a Read Lookaside Buffer; the ``mkpt`` hint makes a chase load
  return the TLB entry for the next node along with the data.
* :class:`~repro.optim.lazycache.LazyCache` — a small (3KB) on-DIMM
  cache for wear-hot write targets, updated from the AIT's wear records,
  absorbing concentrated writes before they amplify into media traffic.
"""

from repro.optim.pretranslation import PreTranslation, PreTranslationConfig
from repro.optim.lazycache import LazyCache, LazyCacheConfig

__all__ = [
    "PreTranslation",
    "PreTranslationConfig",
    "LazyCache",
    "LazyCacheConfig",
]
