"""In-memory Pre-translation (Section V-B).

The NVRAM DIMM already performs a physical-to-media "page translation"
in its AIT; Pre-translation adds, per AIT entry, a pointer to a
pre-translation record mapping a physical address to the page frame
number *stored at* that address.  A load marked with ``mkpt`` that hits
the table returns, along with its data, a ready-made TLB entry for the
next pointer-chase hop, so the CPU receives data and the next
translation simultaneously.

Hardware pieces modeled:

* **Pre-translation table** — in the on-DIMM DRAM (16MB), effectively
  paddr -> pfn keyed by the paddr of the pointer field;
* **RLB (Read Lookaside Buffer)** — a small SRAM cache of table entries;
* **mkpt** — the new instruction: marks the access and updates the table
  when the recorded pfn is missing or stale;
* **check-before-read** — stale entries are caught by an asynchronous
  page-walk check (the "uncertain bit"); the stale fraction wastes the
  prefetched translation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.common.rng import make_rng
from repro.common.units import KIB, MIB
from repro.cpu.tlb import PAGE_SIZE
from repro.engine.stats import StatsRegistry


@dataclass(frozen=True)
class PreTranslationConfig:
    """Section V-D setup: 1KB RLB, 16MB table."""

    rlb_bytes: int = 1 * KIB
    rlb_entry_bytes: int = 16
    table_bytes: int = 16 * MIB
    table_entry_bytes: int = 8
    #: fraction of table hits that turn out stale (page table churn)
    stale_rate: float = 0.0

    @property
    def rlb_entries(self) -> int:
        return self.rlb_bytes // self.rlb_entry_bytes

    @property
    def table_entries(self) -> int:
        return self.table_bytes // self.table_entry_bytes


class PreTranslation:
    """Pre-translation table + RLB state machine."""

    def __init__(self, config: Optional[PreTranslationConfig] = None,
                 stats: Optional[StatsRegistry] = None, seed: int = 0) -> None:
        self.config = config or PreTranslationConfig()
        self.stats = stats or StatsRegistry()
        self._table: "OrderedDict[int, int]" = OrderedDict()
        self._rlb: "OrderedDict[int, int]" = OrderedDict()
        self._rng = make_rng(seed, "pretrans")
        self._c_hits = self.stats.counter("pretrans.hits")
        self._c_misses = self.stats.counter("pretrans.misses")
        self._c_updates = self.stats.counter("pretrans.updates")
        self._c_stale = self.stats.counter("pretrans.stale")
        self._c_rlb_hits = self.stats.counter("pretrans.rlb_hits")

    def _pfn(self, vaddr: int) -> int:
        return vaddr // PAGE_SIZE

    def observe(self, paddr: int, next_vaddr: int) -> bool:
        """Process one mkpt-marked load of ``paddr`` whose stored pointer
        is ``next_vaddr``.

        Returns True when the DIMM returned a usable TLB entry for the
        next hop (table hit, not stale); on a miss, the table is updated
        (the mkpt update path, Fig. 13c) so the next traversal hits.
        """
        expected_pfn = self._pfn(next_vaddr)
        in_rlb = self._rlb.get(paddr)
        recorded = in_rlb if in_rlb is not None else self._table.get(paddr)
        if in_rlb is not None:
            self._c_rlb_hits.add()
        if recorded == expected_pfn:
            if (self.config.stale_rate > 0
                    and self._rng.random() < self.config.stale_rate):
                # check-before-read caught a stale entry: the prefetched
                # translation is discarded.
                self._c_stale.add()
                return False
            self._c_hits.add()
            self._rlb_insert(paddr, expected_pfn)
            return True
        # miss or out-of-date: mkpt updates the entry (step 6-8, Fig. 13c)
        self._c_misses.add()
        self._c_updates.add()
        self._table_insert(paddr, expected_pfn)
        self._rlb_insert(paddr, expected_pfn)
        return False

    def _table_insert(self, paddr: int, pfn: int) -> None:
        self._table[paddr] = pfn
        self._table.move_to_end(paddr)
        if len(self._table) > self.config.table_entries:
            self._table.popitem(last=False)

    def _rlb_insert(self, paddr: int, pfn: int) -> None:
        self._rlb[paddr] = pfn
        self._rlb.move_to_end(paddr)
        if len(self._rlb) > self.config.rlb_entries:
            self._rlb.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self._c_hits.value + self._c_misses.value
        return self._c_hits.value / total if total else 0.0
