"""Trace-driven out-of-order-window core model.

Instructions between memory operations retire at the pipeline width;
memory operations traverse the TLB and cache hierarchy, and LLC misses
overlap up to the core's memory-level parallelism (the ROB/MSHR reach).
Dependent loads (pointer chasing) serialize on their own completion —
the distinction that makes Redis/LinkedList behave like latency-bound
chains while streaming workloads stay bandwidth-bound.

This is the same modeling altitude as the interval-style simulators the
architecture community uses when gem5-level detail is unavailable; Table
V parameters (width, ROB depth, frequencies) set the constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from repro.cpu.cache import CacheHierarchy
from repro.cpu.tlb import TlbHierarchy
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem


@dataclass(frozen=True)
class CoreConfig:
    """Core pipeline parameters (Table V)."""

    width: int = 4
    freq_mhz: float = 2200.0
    #: outstanding LLC misses the window can cover (MSHRs / ROB reach)
    mlp: int = 10
    #: extra cycles charged to a marked (mkpt) load for the
    #: check-before-read uncertain-bit path
    mkpt_check_cycles: int = 2

    @property
    def cycle_ps(self) -> float:
        return 1e6 / self.freq_mhz


@dataclass
class MemOpStats:
    """Per-phase cycle/instruction attribution (Figure 12a)."""

    instructions: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, float] = field(default_factory=dict)
    llc_misses: Dict[str, int] = field(default_factory=dict)
    tlb_misses: Dict[str, int] = field(default_factory=dict)

    def charge(self, phase: str, instrs: int, cycles: float,
               llc_miss: bool, tlb_miss: bool) -> None:
        self.instructions[phase] = self.instructions.get(phase, 0) + instrs
        self.cycles[phase] = self.cycles.get(phase, 0.0) + cycles
        if llc_miss:
            self.llc_misses[phase] = self.llc_misses.get(phase, 0) + 1
        if tlb_miss:
            self.tlb_misses[phase] = self.tlb_misses.get(phase, 0) + 1

    def cpi(self, phase: str) -> float:
        instrs = self.instructions.get(phase, 0)
        return self.cycles.get(phase, 0.0) / instrs if instrs else 0.0


class TraceCore:
    """Executes a MemOp trace against caches + TLB + a memory backend."""

    def __init__(
        self,
        backend: TargetSystem,
        config: Optional[CoreConfig] = None,
        caches: Optional[CacheHierarchy] = None,
        tlbs: Optional[TlbHierarchy] = None,
        pretranslation=None,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        from repro.flight.recorder import NULL_FLIGHT
        self.backend = backend
        self.config = config or CoreConfig()
        self.stats = stats or StatsRegistry()
        self.caches = caches or CacheHierarchy(stats=self.stats)
        self.tlbs = tlbs or TlbHierarchy(stats=self.stats)
        self.pretranslation = pretranslation
        # share the backend's flight recorder so LLC-miss windows land in
        # the same record stream as the memory-side spans
        self.flight = getattr(backend, "flight", NULL_FLIGHT)

        self.cycles = 0.0
        self.instructions = 0
        self.phase_stats = MemOpStats()
        self._outstanding: Deque[float] = deque()
        self._measure_cycles0 = 0.0
        self._measure_instr0 = 0

    # ------------------------------------------------------------------

    def _now_ps(self) -> int:
        return int(self.cycles * self.config.cycle_ps)

    def _mem_read_cycles(self, paddr: int) -> float:
        now = self._now_ps()
        fl = self.flight
        if fl.enabled:
            # outermost begin: this LLC miss owns the flight record, the
            # backend's own begin/end nests inside it
            fl.begin("read", paddr, issue_ps=now)
        done = self.backend.read(paddr, now)
        if fl.enabled:
            fl.span("cpu.llc_miss", now, done, phase="window")
            fl.end(done)
        return (done - now) / self.config.cycle_ps

    def _cached_access(self, paddr: int, is_write: bool):
        """Cache access; LLC misses go to the backend.  Returns
        (latency_cycles, was_llc_miss)."""
        level, cycles, victims = self.caches.access(paddr, is_write)
        for victim in victims:
            self.backend.write(victim, self._now_ps())
        if level != "mem":
            return cycles, False
        return cycles + self._mem_read_cycles(paddr), True

    def _walk(self, walk_addrs) -> float:
        """Page-table walk: serialized cacheable reads."""
        cycles = 0.0
        for addr in walk_addrs:
            lat, _ = self._cached_access(addr, False)
            cycles += lat
        return cycles

    # ------------------------------------------------------------------

    def execute(self, trace: Iterable, max_ops: Optional[int] = None) -> None:
        """Run the trace.  Each op is a MemOp (see repro.cpu.system)."""
        cfg = self.config
        executed = 0
        for op in trace:
            start_cycles = self.cycles

            # front end: non-memory instructions retire at full width
            self.cycles += op.nonmem / cfg.width
            self.instructions += op.nonmem + 1

            # address translation
            tlb_missed = False
            needs_walk, tlb_cycles, walk_addrs = self.tlbs.translate(op.vaddr)
            self.cycles += tlb_cycles
            if needs_walk:
                tlb_missed = True
                self.cycles += self._walk(walk_addrs)
                self.tlbs.install(op.vaddr)

            if op.mkpt and self.pretranslation is not None:
                self.cycles += cfg.mkpt_check_cycles

            # data access
            llc_miss = False
            if op.is_write:
                lat, llc_miss = self._cached_access(op.vaddr, True)
                self.cycles += min(lat, 4.0)  # stores retire via the buffer
                if op.persistent:
                    # durable store: clwb/nt-flush to the NVRAM write
                    # queue; cost is the WPQ accept latency, which grows
                    # under backpressure
                    now = self._now_ps()
                    accept = self.backend.write(op.vaddr, now)
                    self.cycles += (accept - now) / cfg.cycle_ps
            else:
                lat, llc_miss = self._cached_access(op.vaddr, False)
                if llc_miss and not op.dependent:
                    # overlap within the MLP window
                    completion = self.cycles + lat
                    if len(self._outstanding) >= cfg.mlp:
                        gate = self._outstanding.popleft()
                        if gate > self.cycles:
                            self.cycles = gate
                    self._outstanding.append(completion)
                    self.cycles += self.caches.l1.config.latency_cycles
                else:
                    self.cycles += lat

            # Pre-translation: a marked chase load returns the TLB entry
            # for the next node along with the data (Section V-B).
            if (op.mkpt and self.pretranslation is not None
                    and op.next_vaddr is not None):
                if self.pretranslation.observe(op.vaddr, op.next_vaddr):
                    self.tlbs.install(op.next_vaddr)

            self.phase_stats.charge(
                op.phase, op.nonmem + 1, self.cycles - start_cycles,
                llc_miss, tlb_missed,
            )
            executed += 1
            if max_ops is not None and executed >= max_ops:
                break

        # drain the window
        while self._outstanding:
            gate = self._outstanding.popleft()
            if gate > self.cycles:
                self.cycles = gate

    # ------------------------------------------------------------------

    def begin_measurement(self) -> None:
        """End the warm-up phase: zero the architectural statistics while
        keeping all cache/TLB/queue state and the global clock (the
        paper's two-stage warm-up + execution protocol, Section IV-D)."""
        self._measure_cycles0 = self.cycles
        self._measure_instr0 = self.instructions
        self.phase_stats = MemOpStats()
        self.caches.reset_stats()
        self.tlbs.reset_stats()

    @property
    def measured_cycles(self) -> float:
        return self.cycles - self._measure_cycles0

    @property
    def measured_instructions(self) -> int:
        return self.instructions - self._measure_instr0

    @property
    def ipc(self) -> float:
        cycles = self.measured_cycles
        return self.measured_instructions / cycles if cycles else 0.0

    @property
    def elapsed_ps(self) -> int:
        return int(self.measured_cycles * self.config.cycle_ps)
