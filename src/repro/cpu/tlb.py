"""TLB hierarchy and page-table walker.

Geometry follows Table V: 64-entry 4-way L1 DTLB and a 1536-entry 12-way
shared STLB over 4KB pages.  An STLB miss triggers a 4-level radix-table
walk; each level is one cacheable memory read, so walk cost depends on
how warm the page-table lines are in the data caches — the behaviour the
paper's Figure 5d/7d TLB-miss-rate controls rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two
from repro.engine.stats import StatsRegistry

PAGE_SIZE = 4096
WALK_LEVELS = 4


@dataclass(frozen=True)
class TlbConfig:
    """One TLB level."""

    name: str
    entries: int
    ways: int
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.entries % self.ways:
            raise ConfigError(f"{self.name}: entries not divisible by ways")
        if not is_power_of_two(self.entries // self.ways):
            raise ConfigError(f"{self.name}: set count must be a power of two")

    @property
    def nsets(self) -> int:
        return self.entries // self.ways


L1_DTLB_CONFIG = TlbConfig("DTLB", 64, 4, 1)
STLB_CONFIG = TlbConfig("STLB", 1536, 12, 9)


class Tlb:
    """One set-associative TLB with LRU replacement."""

    def __init__(self, config: TlbConfig, stats: Optional[StatsRegistry] = None):
        self.config = config
        self.stats = stats or StatsRegistry()
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(config.nsets)
        ]
        self._hits = self.stats.counter(f"{config.name}.hits")
        self._misses = self.stats.counter(f"{config.name}.misses")

    def _index(self, vpn: int) -> int:
        return vpn % self.config.nsets

    def lookup(self, vaddr: int) -> bool:
        vpn = vaddr // PAGE_SIZE
        tset = self._sets[self._index(vpn)]
        if vpn in tset:
            tset.move_to_end(vpn)
            self._hits.add()
            return True
        self._misses.add()
        return False

    def install(self, vaddr: int, pfn: int = 0) -> None:
        vpn = vaddr // PAGE_SIZE
        tset = self._sets[self._index(vpn)]
        if vpn in tset:
            tset.move_to_end(vpn)
            return
        if len(tset) >= self.config.ways:
            tset.popitem(last=False)
        tset[vpn] = pfn

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def reset_stats(self) -> None:
        self._hits.reset()
        self._misses.reset()


class TlbHierarchy:
    """DTLB + STLB + walker.

    ``translate`` returns (stlb_missed, cycles_before_walk, walk_addrs):
    the caller performs the walk reads through its cache hierarchy (they
    are ordinary cacheable accesses) and installs the entry.
    """

    #: base physical address of the page-table arena (kept clear of the
    #: workload heap so walk lines have their own cache footprint)
    PT_BASE = 1 << 44

    def __init__(self, stats: Optional[StatsRegistry] = None) -> None:
        self.stats = stats or StatsRegistry()
        self.dtlb = Tlb(L1_DTLB_CONFIG, self.stats)
        self.stlb = Tlb(STLB_CONFIG, self.stats)
        self._walks = self.stats.counter("tlb.walks")

    def translate(self, vaddr: int):
        """Returns (needs_walk, cycles, walk_read_addrs)."""
        if self.dtlb.lookup(vaddr):
            return False, self.dtlb.config.latency_cycles, []
        cycles = self.dtlb.config.latency_cycles
        if self.stlb.lookup(vaddr):
            self.dtlb.install(vaddr)
            return False, cycles + self.stlb.config.latency_cycles, []
        cycles += self.stlb.config.latency_cycles
        self._walks.add()
        return True, cycles, self.walk_addresses(vaddr)

    def walk_addresses(self, vaddr: int) -> List[int]:
        """Physical addresses of the 4 page-table entries for ``vaddr``.

        Each radix level indexes 9 bits of the VPN; PTEs are 8 bytes, so
        consecutive pages share upper-level PTE cache lines — giving the
        realistic locality that makes sequential scans walk cheaply and
        pointer chasing walk expensively.
        """
        vpn = vaddr // PAGE_SIZE
        addrs = []
        for level in range(WALK_LEVELS):
            shift = 9 * (WALK_LEVELS - 1 - level)
            index = vpn >> shift
            addrs.append(self.PT_BASE + (level << 32) + index * 8)
        return addrs

    def install(self, vaddr: int, pfn: int = 0) -> None:
        """Install a translation in both levels (end of walk, or a
        Pre-translation fill from the NVRAM DIMM)."""
        self.stlb.install(vaddr, pfn)
        self.dtlb.install(vaddr, pfn)

    @property
    def stlb_misses(self) -> int:
        return self.stlb.misses

    def reset_stats(self) -> None:
        self.dtlb.reset_stats()
        self.stlb.reset_stats()
        self._walks.reset()
