"""Full-system composition: core + caches + TLBs + memory backend.

``FullSystem`` is the VANS+gem5 stand-in used by the SPEC validation
(Figure 11), the cloud-workload profiling (Figure 12) and the
optimization studies (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cpu.cache import CacheHierarchy
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.tlb import TlbHierarchy
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem


@dataclass(slots=True)
class MemOp:
    """One trace record: ``nonmem`` ordinary instructions followed by a
    memory access.

    ``dependent`` marks loads on a dependence chain (pointer chasing);
    ``mkpt`` marks loads preceded by the Pre-translation hint, with
    ``next_vaddr`` the pointer stored at this node; ``persistent`` marks
    stores that are flushed to the persistence domain (clwb/nt + fence —
    every durable write in a PM workload), which therefore reach the
    NVRAM instead of lingering in the CPU caches; ``phase`` labels the
    op for CPI attribution ("read"/"rest" in the Redis profile).
    """

    nonmem: int
    vaddr: int
    is_write: bool = False
    dependent: bool = False
    mkpt: bool = False
    next_vaddr: Optional[int] = None
    persistent: bool = False
    phase: str = "rest"


@dataclass
class SystemReport:
    """Headline metrics of one full-system run."""

    name: str
    instructions: int
    cycles: float
    ipc: float
    llc_miss_rate: float
    llc_mpki: float
    stlb_mpki: float
    elapsed_ps: int
    phase_cpi: Dict[str, float] = field(default_factory=dict)
    phase_llc_misses: Dict[str, int] = field(default_factory=dict)
    phase_tlb_misses: Dict[str, int] = field(default_factory=dict)
    backend_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def exec_time_ps(self) -> int:
        return self.elapsed_ps

    def speedup_over(self, other: "SystemReport") -> float:
        """ExecTime(other) / ExecTime(self) — the Figure 11c metric when
        ``other`` ran on DRAM and ``self`` on NVRAM is its inverse."""
        if not self.elapsed_ps:
            return 0.0
        return other.elapsed_ps / self.elapsed_ps


class FullSystem:
    """One core + memory system, run against a workload trace."""

    def __init__(
        self,
        backend: TargetSystem,
        name: str = "system",
        core_config: Optional[CoreConfig] = None,
        pretranslation=None,
    ) -> None:
        self.backend = backend
        self.name = name
        self.stats = StatsRegistry()
        self.caches = CacheHierarchy(stats=self.stats)
        self.tlbs = TlbHierarchy(stats=self.stats)
        self.core = TraceCore(
            backend,
            config=core_config,
            caches=self.caches,
            tlbs=self.tlbs,
            pretranslation=pretranslation,
            stats=self.stats,
        )

    def run(self, trace: Iterable[MemOp], max_ops: Optional[int] = None,
            warmup_ops: int = 0) -> SystemReport:
        """Run ``trace``; the first ``warmup_ops`` records warm caches and
        TLBs without being measured (the paper's two-stage protocol)."""
        iterator = iter(trace)
        if warmup_ops:
            self.core.execute(iterator, max_ops=warmup_ops)
            self.core.begin_measurement()
        self.core.execute(iterator, max_ops=max_ops)
        return self.report()

    def report(self) -> SystemReport:
        core = self.core
        instrs = max(1, core.measured_instructions)
        phase = core.phase_stats
        backend_counters = {}
        backend_stats = getattr(self.backend, "stats", None)
        if backend_stats is not None:
            backend_counters = backend_stats.snapshot()
        return SystemReport(
            name=self.name,
            instructions=core.measured_instructions,
            cycles=core.measured_cycles,
            ipc=core.ipc,
            llc_miss_rate=self.caches.llc_miss_rate,
            llc_mpki=1000.0 * self.caches.llc_misses / instrs,
            stlb_mpki=1000.0 * self.tlbs.stlb_misses / instrs,
            elapsed_ps=core.elapsed_ps,
            phase_cpi={p: phase.cpi(p) for p in phase.instructions},
            phase_llc_misses=dict(phase.llc_misses),
            phase_tlb_misses=dict(phase.tlb_misses),
            backend_counters=backend_counters,
        )
