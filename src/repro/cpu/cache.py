"""Set-associative write-back caches.

Timing is returned to the caller (the core model) rather than simulated
per cycle: a lookup reports hit/miss and the level's access latency; the
core composes levels and overlaps misses within its ROB window.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB, is_power_of_two
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + access latency (in core cycles) of one cache level."""

    name: str
    capacity_bytes: int
    ways: int
    latency_cycles: int

    def __post_init__(self) -> None:
        lines = self.capacity_bytes // CACHE_LINE
        if lines % self.ways:
            raise ConfigError(f"{self.name}: lines not divisible by ways")
        if not is_power_of_two(lines // self.ways):
            raise ConfigError(f"{self.name}: set count must be a power of two")

    @property
    def nsets(self) -> int:
        return self.capacity_bytes // CACHE_LINE // self.ways


#: Table V cache hierarchy.
L1D_CONFIG = CacheConfig("L1D", 32 * KIB, 8, 4)
L2_CONFIG = CacheConfig("L2", 1 * MIB, 16, 14)
L3_CONFIG = CacheConfig("L3", 32 * MIB, 16, 42)


class Cache:
    """One write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, config: CacheConfig, stats: Optional[StatsRegistry] = None):
        self.config = config
        self.stats = stats or StatsRegistry()
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.nsets)
        ]
        self._mask = config.nsets - 1
        self._hits = self.stats.counter(f"{config.name}.hits")
        self._misses = self.stats.counter(f"{config.name}.misses")
        self._writebacks = self.stats.counter(f"{config.name}.writebacks")

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // CACHE_LINE
        return line & self._mask, line

    def lookup(self, addr: int, is_write: bool) -> bool:
        """Access the cache; returns hit?.  Hits update LRU and dirty."""
        index, tag = self._locate(addr)
        cset = self._sets[index]
        if tag in cset:
            cset.move_to_end(tag)
            if is_write:
                cset[tag] = True
            self._hits.add()
            return True
        self._misses.add()
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Install a line; returns the victim's address if a dirty line
        was evicted (the caller writes it back), else None."""
        index, tag = self._locate(addr)
        cset = self._sets[index]
        victim_addr = None
        if len(cset) >= self.config.ways:
            victim_tag, victim_dirty = cset.popitem(last=False)
            if victim_dirty:
                self._writebacks.add()
                victim_addr = victim_tag * CACHE_LINE
        cset[tag] = dirty
        return victim_addr

    def contains(self, addr: int) -> bool:
        index, tag = self._locate(addr)
        return tag in self._sets[index]

    def mark_dirty(self, addr: int) -> bool:
        """Mark a resident line dirty (a dirty write-back from the level
        above landed on it); returns False if the line is absent."""
        index, tag = self._locate(addr)
        cset = self._sets[index]
        if tag not in cset:
            return False
        cset[tag] = True
        return True

    def invalidate(self, addr: int) -> None:
        index, tag = self._locate(addr)
        self._sets[index].pop(tag, None)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self._hits.reset()
        self._misses.reset()
        self._writebacks.reset()


class CacheHierarchy:
    """L1D -> L2 -> L3 composition returning (level_hit, cycles, misses).

    The returned cycle count covers the on-chip portion only; an L3 miss
    additionally costs the memory backend's latency, which the core adds
    (and overlaps across its ROB window).
    """

    def __init__(
        self,
        l1: CacheConfig = L1D_CONFIG,
        l2: CacheConfig = L2_CONFIG,
        l3: CacheConfig = L3_CONFIG,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.stats = stats or StatsRegistry()
        self.l1 = Cache(l1, self.stats)
        self.l2 = Cache(l2, self.stats)
        self.l3 = Cache(l3, self.stats)

    def access(self, addr: int, is_write: bool) -> Tuple[str, int, List[int]]:
        """Returns (deepest level that hit or "mem", on-chip cycles,
        dirty victim addresses to write back to memory)."""
        victims: List[int] = []
        if self.l1.lookup(addr, is_write):
            return "l1", self.l1.config.latency_cycles, victims
        cycles = self.l1.config.latency_cycles
        if self.l2.lookup(addr, False):
            cycles += self.l2.config.latency_cycles
            self._fill_upper(addr, is_write, victims, levels=("l1",))
            return "l2", cycles, victims
        cycles += self.l2.config.latency_cycles
        if self.l3.lookup(addr, False):
            cycles += self.l3.config.latency_cycles
            self._fill_upper(addr, is_write, victims, levels=("l1", "l2"))
            return "l3", cycles, victims
        cycles += self.l3.config.latency_cycles
        self._fill_upper(addr, is_write, victims, levels=("l1", "l2", "l3"))
        return "mem", cycles, victims

    def _fill_upper(self, addr: int, is_write: bool, victims: List[int],
                    levels) -> None:
        """Install ``addr`` in the named levels; dirty victims demote
        their dirty state to the next level down, or become memory
        write-backs when no lower level holds the line."""
        below = {"l1": ("l2", "l3"), "l2": ("l3",), "l3": ()}
        for name in levels:
            cache: Cache = getattr(self, name)
            victim = cache.fill(addr, dirty=(is_write and name == "l1"))
            if victim is None:
                continue
            for lower_name in below[name]:
                lower: Cache = getattr(self, lower_name)
                if lower.mark_dirty(victim):
                    break
            else:
                victims.append(victim)

    @property
    def llc_misses(self) -> int:
        return self.l3.misses

    @property
    def llc_miss_rate(self) -> float:
        return self.l3.miss_rate

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.reset_stats()
