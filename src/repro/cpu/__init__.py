"""CPU substrate (the paper's gem5 role).

A trace-driven model of the Cascade-Lake-like server in Table V: an
out-of-order-window core, a three-level cache hierarchy with MSHR-style
miss overlap, two TLB levels with a page-table walker, and a pluggable
memory backend (VANS, a DRAM device, or any baseline).

It exists to (a) generate realistic miss streams into the memory models
and (b) report IPC / LLC miss rate / TLB MPKI for Figures 5d, 7d, 11, 12
and 13.
"""

from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.tlb import Tlb, TlbConfig, TlbHierarchy
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.system import FullSystem, SystemReport, MemOp

__all__ = [
    "Cache",
    "CacheConfig",
    "Tlb",
    "TlbConfig",
    "TlbHierarchy",
    "CoreConfig",
    "TraceCore",
    "FullSystem",
    "SystemReport",
    "MemOp",
]
