"""VANS — Validated NVRAM Simulator.

Models the Optane DIMM microarchitecture the paper characterizes with
LENS (Figure 8):

* iMC with a read pending queue and an ADR-protected 512B write pending
  queue per channel, plus 4KB multi-DIMM interleaving;
* on-DIMM LSQ (64 x 64B) performing write combining to 256B;
* 16KB SRAM RMW buffer (64 x 256B entries) doing read-modify-write for
  sub-256B stores;
* AIT: a DRAM-resident address-indirection table plus a 16MB (4096 x
  4KB) AIT data buffer in on-DIMM DDR4 DRAM;
* 3D-XPoint media (256B granularity) behind a 64KB-block wear-leveler;
* FCFS internal scheduling and a request/grant iMC<->DIMM protocol.

The top-level entry point is :class:`~repro.vans.system.VansSystem`.
"""

from repro.vans.config import (
    VansConfig,
    DimmConfig,
    LsqConfig,
    RmwConfig,
    AitConfig,
    WpqConfig,
    TimingConfig,
)
from repro.vans.dimm import NvramDimm
from repro.vans.imc import IntegratedMemoryController
from repro.vans.interleave import Interleaver
from repro.vans.system import VansSystem
from repro.vans.memory_mode import MemoryModeSystem
from repro.vans.functional import FunctionalMemory
from repro.vans.attach import AttachedMemory
from repro.vans.tracing import TraceRecord, TracingProxy, replay

__all__ = [
    "VansConfig",
    "DimmConfig",
    "LsqConfig",
    "RmwConfig",
    "AitConfig",
    "WpqConfig",
    "TimingConfig",
    "NvramDimm",
    "IntegratedMemoryController",
    "Interleaver",
    "VansSystem",
    "MemoryModeSystem",
    "FunctionalMemory",
    "AttachedMemory",
    "TraceRecord",
    "TracingProxy",
    "replay",
]
