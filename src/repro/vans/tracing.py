"""Trace capture and replay (the paper's "trace mode").

The paper catches memory traces of the LENS microbenchmarks and of SPEC
runs, then feeds them into VANS standalone.  This module provides:

* a simple line-oriented trace format: ``<op> <hex addr> <size>`` with
  op in {R, W, NT, CLWB, F};
* :class:`TracingProxy` — wraps any TargetSystem and records everything
  that flows through it;
* :func:`save_trace` / :func:`load_trace` — file round-trip;
* :func:`replay` — drive any TargetSystem from a trace, returning
  latency statistics (reads dependent-chained, writes issue-on-accept,
  matching the LENS drivers).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.common.errors import ReproError
from repro.engine.request import CACHE_LINE, Op
from repro.engine.stats import Histogram
from repro.target import TargetSystem

_OP_TOKEN = {Op.READ: "R", Op.WRITE: "W", Op.WRITE_NT: "NT",
             Op.CLWB: "CLWB", Op.FENCE: "F"}
_TOKEN_OP = {v: k for k, v in _OP_TOKEN.items()}


@dataclass(frozen=True)
class TraceRecord:
    """One memory operation in a trace."""

    op: Op
    addr: int = 0
    size: int = CACHE_LINE

    def render(self) -> str:
        if self.op is Op.FENCE:
            return "F"
        return f"{_OP_TOKEN[self.op]} {self.addr:#x} {self.size}"

    @classmethod
    def parse(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if not parts:
            raise ReproError("empty trace line")
        op = _TOKEN_OP.get(parts[0].upper())
        if op is None:
            raise ReproError(f"unknown trace op {parts[0]!r}")
        if op is Op.FENCE:
            return cls(op=op)
        if len(parts) != 3:
            raise ReproError(f"malformed trace line: {line!r}")
        try:
            addr = int(parts[1], 0)
            size = int(parts[2])
        except ValueError as exc:
            raise ReproError(f"malformed trace line: {line!r}") from exc
        if addr < 0 or size <= 0:
            raise ReproError(f"malformed trace line: {line!r}")
        return cls(op=op, addr=addr, size=size)


class TracingProxy(TargetSystem):
    """Record every operation while forwarding to a real target."""

    def __init__(self, target: TargetSystem) -> None:
        self.target = target
        self.records: List[TraceRecord] = []
        self.name = f"traced-{target.name}"

    def read(self, addr: int, now: int) -> int:
        self.records.append(TraceRecord(Op.READ, addr))
        return self.target.read(addr, now)

    def write(self, addr: int, now: int) -> int:
        self.records.append(TraceRecord(Op.WRITE_NT, addr))
        return self.target.write(addr, now)

    def fence(self, now: int) -> int:
        self.records.append(TraceRecord(Op.FENCE))
        return self.target.fence(now)

    def warm_fill(self, start_addr: int, length: int) -> None:
        self.target.warm_fill(start_addr, length)


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for record in records:
            fh.write(record.render() + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from ``path`` (skips blank/comment lines)."""
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield TraceRecord.parse(line)


@dataclass
class ReplayResult:
    """Latency statistics of one trace replay."""

    reads: Histogram
    writes: Histogram
    fences: int
    end_ps: int

    @property
    def read_mean_ns(self) -> float:
        return self.reads.mean / 1000.0

    @property
    def write_mean_ns(self) -> float:
        return self.writes.mean / 1000.0


def replay(records: Iterable[TraceRecord], target: TargetSystem,
           now: int = 0) -> ReplayResult:
    """Drive ``target`` with a trace, LENS-style: reads form a dependent
    chain, writes issue at their accept times, fences drain."""
    reads = Histogram("replay.read_ps")
    writes = Histogram("replay.write_ps")
    fences = 0
    for record in records:
        if record.op is Op.FENCE:
            now = target.fence(now)
            fences += 1
        elif record.op.is_write:
            for line in target.line_span(record.addr, record.size):
                accept = target.write(line, now)
                writes.record(accept - now)
                now = accept
        else:
            for line in target.line_span(record.addr, record.size):
                done = target.read(line, now)
                reads.record(done - now)
                now = done
    return ReplayResult(reads=reads, writes=writes, fences=fences, end_ps=now)
