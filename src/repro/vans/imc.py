"""Integrated memory controller (iMC) model.

Each NVRAM channel has a read pending queue (RPQ) and a write pending
queue (WPQ).  The WPQ is inside the ADR (asynchronous DRAM refresh)
power-fail domain: a store is *persistent* the moment it is accepted, so
an nt-store's observed latency is its WPQ admission time — which is why
LENS's store latency curve inflects exactly when a write burst exceeds
the 512B WPQ (Figure 5a) and why ``mfence`` cost tracks WPQ drain.

The iMC and DIMM communicate by a request/grant scheme (DDR-T): reads pay
a request hop going out and a grant hop coming back; WPQ entries drain to
the DIMM LSQ one 64B line at a time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.queueing import FcfsStation, Server
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.vans.config import VansConfig
from repro.vans.dimm import NvramDimm
from repro.vans.interleave import Interleaver

#: outstanding-read limit per channel (RPQ entries)
RPQ_ENTRIES = 64


class IntegratedMemoryController:
    """iMC front end over one or more NVRAM DIMMs."""

    def __init__(self, config: VansConfig, stats: Optional[StatsRegistry] = None,
                 track_line_wear: bool = False, instrument=None,
                 flight=None, faults=None) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        from repro.instrument import NULL_BUS
        self.config = config
        self.stats = stats or StatsRegistry()
        self.instrument = instrument if instrument is not None else NULL_BUS
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        self.interleaver = Interleaver(
            config.ndimms, config.interleave_bytes, config.interleaved
        )
        self.dimms: List[NvramDimm] = [
            NvramDimm(config.dimm, stats=self.stats,
                      track_line_wear=track_line_wear,
                      instrument=self.instrument.scope(f"dimm{i}"),
                      flight=self.flight, faults=self.faults)
            for i in range(config.ndimms)
        ]
        self.wpqs: List[FcfsStation] = [
            FcfsStation(config.wpq.entries) for _ in range(config.ndimms)
        ]
        self.rpqs: List[FcfsStation] = [
            FcfsStation(RPQ_ENTRIES) for _ in range(config.ndimms)
        ]
        # Serial per-channel write path draining the WPQ into the DIMM.
        self.write_buses: List[Server] = [Server() for _ in range(config.ndimms)]
        for i in range(config.ndimms):
            channel = self.instrument.scope(f"channel{i}")
            self.wpqs[i].publish(channel, "wpq")
            self.rpqs[i].publish(channel, "rpq")
            self.write_buses[i].publish(channel, "write_bus")
        # Optional explicit DDR-T request/grant layer (protocol studies).
        self.ddrt = None
        if config.dimm.timing.ddrt_detailed:
            from repro.vans.ddrt import DdrtChannel
            self.ddrt = [DdrtChannel(stats=self.stats, flight=self.flight,
                                     faults=self.faults, channel=i)
                         for i in range(config.ndimms)]
        self._c_reads = self.stats.counter("imc.reads")
        self._c_writes = self.stats.counter("imc.writes")
        self._c_fences = self.stats.counter("imc.fences")
        # Frozen-config hop constants hoisted off the per-request path.
        self._ddrt_request_ps = config.dimm.timing.ddrt_request_ps
        self._wpq_xfer_ps = config.dimm.timing.wpq_xfer_ps
        # Precompiled dispatch: flight/faults are constructor-fixed for
        # the iMC, so when both are the zero-cost nulls the per-request
        # instrumentation ladder can be compiled out entirely.  The fast
        # variants perform the identical admissions/serves/retires in the
        # identical order, so timing stays bit-identical.
        if self.flight is NULL_FLIGHT and self.faults is NULL_FAULTS:
            self.read = self._read_fast
            self.write = self._write_fast

    def profile_points(self):
        """Host-profiler attribution points (see ``TargetSystem``)."""
        yield ("imc.read", self, "read")
        yield ("imc.write", self, "write")
        yield ("imc.fence", self, "fence")
        if self.ddrt is not None:
            for channel in self.ddrt:
                yield ("ddrt.send_read_request", channel,
                       "send_read_request")
                yield ("ddrt.return_read_data", channel,
                       "return_read_data")
                yield ("ddrt.send_write", channel, "send_write")
        for dimm in self.dimms:
            yield from dimm.profile_points()

    def _read_fast(self, addr: int, now: int) -> int:
        """Uninstrumented :meth:`read` (same timing, no flight/faults)."""
        self._c_reads.add()
        dimm_idx, local = self.interleaver.map(addr)
        rpq = self.rpqs[dimm_idx]
        start = rpq.admit(now)
        if self.ddrt is not None:
            channel = self.ddrt[dimm_idx]
            cmd_done = channel.send_read_request(start)
            ready = self.dimms[dimm_idx].read_line(local, cmd_done)
            done = channel.return_read_data(ready)
        else:
            done = self.dimms[dimm_idx].read_line(
                local, start + self._ddrt_request_ps)
        rpq.retire_at(done)
        return done

    def _write_fast(self, addr: int, now: int, nbytes: int = CACHE_LINE) -> int:
        """Uninstrumented :meth:`write` (same timing, no flight/faults)."""
        self._c_writes.add()
        dimm_idx, local = self.interleaver.map(addr)
        wpq = self.wpqs[dimm_idx]
        accept = wpq.admit(now)
        if self.ddrt is not None:
            channel = self.ddrt[dimm_idx]
            xfer_done = channel.send_write(accept)
            lsq_admit = self.dimms[dimm_idx].write_line(local, xfer_done,
                                                        nbytes)
            channel.complete_write(lsq_admit)
        else:
            xfer_done = self.write_buses[dimm_idx].serve(accept,
                                                         self._wpq_xfer_ps)
            lsq_admit = self.dimms[dimm_idx].write_line(local, xfer_done,
                                                        nbytes)
        wpq.retire_at(max(lsq_admit, xfer_done))
        return accept

    def read(self, addr: int, now: int) -> int:
        """Issue a 64B read; returns the time data reaches the core side."""
        self._c_reads.add()
        t = self.config.dimm.timing
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        dimm_idx, local = self.interleaver.map(addr)
        rpq = self.rpqs[dimm_idx]
        start = rpq.admit(now)
        fl = self.flight
        if fl.active:
            fl.span("imc.rpq", now, start, phase="wait", channel=dimm_idx)
        if self.ddrt is not None:
            channel = self.ddrt[dimm_idx]
            cmd_done = channel.send_read_request(start)
            ready = self.dimms[dimm_idx].read_line(local, cmd_done)
            done = channel.return_read_data(ready)
        else:
            hop = t.ddrt_request_ps
            if fa.enabled:
                hop += fa.link_extra_ps(dimm_idx, start, t.ddrt_request_ps)
            if fl.active:
                fl.span("ddrt.link", start, start + hop,
                        phase="request", channel=dimm_idx)
            done = self.dimms[dimm_idx].read_line(local, start + hop)
        rpq.retire_at(done)
        return done

    def write(self, addr: int, now: int, nbytes: int = CACHE_LINE) -> int:
        """Issue a 64B (nt-)store; returns its persistence-accept time.

        The accept time is the WPQ admission (ADR domain).  The drain to
        the DIMM continues asynchronously and frees the WPQ slot when the
        line has been transferred into the DIMM LSQ.
        """
        self._c_writes.add()
        t = self.config.dimm.timing
        fa = self.faults
        if fa.enabled:
            fa.on_request(now)
        dimm_idx, local = self.interleaver.map(addr)
        wpq = self.wpqs[dimm_idx]
        accept = wpq.admit(now)
        fl = self.flight
        if fl.active:
            fl.span("imc.wpq", now, accept, phase="wait", channel=dimm_idx)
        if fa.enabled:
            # WPQ admission is the ADR persistence point; the checker
            # audits this acknowledgement against any injected power cut.
            fa.note_write(addr, now, accept)
        if self.ddrt is not None:
            channel = self.ddrt[dimm_idx]
            xfer_done = channel.send_write(accept)
            lsq_admit = self.dimms[dimm_idx].write_line(local, xfer_done,
                                                        nbytes)
            channel.complete_write(lsq_admit)
        else:
            xfer_ps = t.wpq_xfer_ps
            if fa.enabled:
                xfer_ps += fa.link_extra_ps(dimm_idx, accept, t.wpq_xfer_ps)
            xfer_done = self.write_buses[dimm_idx].serve(accept, xfer_ps)
            if fl.active:
                fl.span("imc.write_bus", accept, xfer_done, phase="drain",
                        channel=dimm_idx)
            lsq_admit = self.dimms[dimm_idx].write_line(local, xfer_done,
                                                        nbytes)
        wpq.retire_at(max(lsq_admit, xfer_done))
        return accept

    def reset(self) -> None:
        """As-built state for warm-cache reuse: empty queues, idle write
        buses, reset DIMMs/DDR-T channels, zero counters."""
        for dimm in self.dimms:
            dimm.reset()
        for wpq in self.wpqs:
            wpq.reset()
        for rpq in self.rpqs:
            rpq.reset()
        for write_bus in self.write_buses:
            write_bus.reset()
        if self.ddrt is not None:
            for channel in self.ddrt:
                channel.reset()
        self._c_reads.reset()
        self._c_writes.reset()
        self._c_fences.reset()

    def fence(self, now: int) -> int:
        """Drain every WPQ and DIMM LSQ; returns the global drain time."""
        self._c_fences.add()
        done = now
        fl = self.flight
        for channel, (wpq, dimm) in enumerate(zip(self.wpqs, self.dimms)):
            wpq_done = wpq.drain_time(now)
            if fl.active:
                fl.span("imc.wpq", now, wpq_done, phase="drain",
                        channel=channel)
            done = max(done, wpq_done, dimm.flush(now))
        fa = self.faults
        if fa.enabled:
            fa.note_fence(done)
        return done
