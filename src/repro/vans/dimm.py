"""The NVRAM DIMM model: LSQ -> RMW buffer -> AIT -> media.

All internal scheduling is first-come-first-serve (the policy LENS
observes), so each request's completion time is computed forward through
the FCFS queueing algebra.  The observable behaviours this module is
responsible for (and that the paper's figures hinge on):

* reads hit three latency tiers — RMW-buffer hit (16KB reach), AIT-buffer
  hit (16MB reach), media — giving the two inflection points of Fig. 5a;
* 64B reads pull 256B from the AIT (RMW entry fill) and AIT misses pull
  4KB from media (read amplification, Fig. 6a / Fig. 9c);
* the LSQ write-combines adjacent 64B stores into 256B downstream ops;
  uncombinable sub-256B stores trigger a read-modify-write (Fig. 6b);
* the LSQ's 64-entry capacity bounds the write burst the DIMM can absorb
  (the 4KB store inflection of Fig. 5a);
* every drained store is written through to wear-leveled media, so
  concentrated overwrites trigger 64KB block migrations with >100x tail
  latencies (Fig. 7b-c, Fig. 9d);
* a fence flushes the pending write-combine block and completes when the
  LSQ has fully drained (the paper's mfence observation in Fig. 5c).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Tuple

from repro.common.units import align_down
from repro.dram.device import DramDevice
from repro.engine.queueing import FcfsStation, Server
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.media.wear import WearLeveler
from repro.media.xpoint import XPointMedia
from repro.vans.config import DimmConfig

#: media channel occupancy per 256B transfer.  The internal read path is
#: wide (AIT fills move 4KB per miss, so it must sustain well above the
#: external bus rate); the write path is the documented 3D-XPoint
#: bottleneck (~2.3GB/s sustained per DIMM).
MEDIA_PORT_READ_PS = 15_000    # 15ns / 256B  (~17GB/s internal fill)
MEDIA_PORT_WRITE_PS = 110_000  # 110ns / 256B (~2.3GB/s media writes)
#: read<->write turnaround on the internal bus (the "bus redirection"
#: penalty of Section III-C)
TURNAROUND_PS = 15_000


class NvramDimm:
    """One Optane-like DIMM as an FCFS timing pipeline."""

    def __init__(self, config: DimmConfig, stats: Optional[StatsRegistry] = None,
                 track_line_wear: bool = False, instrument=None,
                 flight=None, faults=None) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        from repro.instrument import NULL_BUS
        self.config = config
        self.stats = stats or StatsRegistry()
        self.instrument = instrument if instrument is not None else NULL_BUS
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        t = config.timing
        self.t = t

        self.lsq = FcfsStation(config.lsq.entries)
        self.engine = Server()           # DIMM controller op processing
        self.media_port = Server()       # shared media channel
        self.bus = Server()              # DIMM -> iMC return path
        self.dram = DramDevice(
            config.dram_timing,
            nchannels=1,
            capacity_bytes=config.dram_capacity_bytes,
        )
        self.media = XPointMedia(config.media, stats=self.stats,
                                 flight=self.flight, faults=self.faults)
        self.wear = WearLeveler(
            config.wear,
            capacity_bytes=config.media.capacity_bytes,
            stats=self.stats,
            track_line_wear=track_line_wear,
            flight=self.flight,
            faults=self.faults,
        )
        self.lazy = None
        if config.lazy_cache:
            from repro.optim.lazycache import LazyCache
            self.lazy = LazyCache(stats=self.stats, flight=self.flight)

        # Optional SRAM cache of hot AIT translation records (a
        # design-space knob; disabled in the validated configuration).
        self._table_cache: "OrderedDict[int, bool]" = OrderedDict()

        # RMW buffer: 256B-block tag store, LRU.  Write-through keeps
        # entries clean, so evictions are silent.
        self._rmw_tags: "OrderedDict[int, bool]" = OrderedDict()
        # AIT buffer: 4KB-page tag -> DRAM slot, LRU.
        self._ait_tags: "OrderedDict[int, int]" = OrderedDict()
        self._ait_free = list(range(config.ait.entries - 1, -1, -1))
        self._table_bytes = (
            config.media.capacity_bytes // config.ait.entry_bytes
        ) * config.ait.table_record_bytes

        # Write-combining state: the 256B block currently accumulating.
        self._wc_block: Optional[int] = None
        self._wc_lines: Set[int] = set()
        self._wc_last_ps = 0
        self._wc_drain_ps = 0  # completion of the most recent combined op

        self._last_dir_write: Optional[bool] = None  # bus turnaround state

        s = self.stats
        self._c_reads = s.counter("dimm.reads")
        self._c_writes = s.counter("dimm.write_lines")
        self._c_rmw_hits = s.counter("dimm.rmw_hits")
        self._c_rmw_misses = s.counter("dimm.rmw_misses")
        self._c_ait_hits = s.counter("dimm.ait_hits")
        self._c_ait_misses = s.counter("dimm.ait_misses")
        self._c_combined_ops = s.counter("dimm.combined_write_ops")
        self._c_partial_ops = s.counter("dimm.partial_write_ops")
        self._c_req_read_bytes = s.counter("dimm.requested_read_bytes")
        self._c_rmw_fill_bytes = s.counter("dimm.rmw_fill_bytes")
        self._c_ait_fill_bytes = s.counter("dimm.ait_fill_bytes")
        self._c_write_bytes = s.counter("dimm.requested_write_bytes")
        self._c_drained_bytes = s.counter("dimm.drained_write_bytes")

        # Pull-gauges on the instrumentation bus: station occupancy and
        # blocked/busy time of every FCFS resource in the pipeline.
        # No-ops on the default NULL_BUS.
        bus = self.instrument
        self.lsq.publish(bus, "lsq")
        self.engine.publish(bus, "engine")
        self.media_port.publish(bus, "media_port")
        self.bus.publish(bus, "return_bus")
        self.wear.publish(bus, "wear")
        self.media.publish(bus, "media")
        if self.lazy is not None:
            self.lazy.publish(bus, "lazy")

        # Precompiled dispatch: flight/faults are constructor-fixed, so
        # uninstrumented DIMMs bind line-request variants with the
        # flight-span ladder compiled out.  Same stations served in the
        # same order with the same arguments — timing is bit-identical.
        if self.flight is NULL_FLIGHT and self.faults is NULL_FAULTS:
            self.read_line = self._read_line_fast
            self.write_line = self._write_line_fast

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def _block_of(self, addr: int) -> int:
        return align_down(addr, self.config.rmw.entry_bytes)

    def _page_of(self, addr: int) -> int:
        return align_down(addr, self.config.ait.entry_bytes)

    def _table_addr(self, addr: int) -> int:
        page_index = addr // self.config.ait.entry_bytes
        return (page_index * self.config.ait.table_record_bytes) % max(
            self._table_bytes, CACHE_LINE
        )

    def _slot_addr(self, slot: int, offset: int = 0) -> int:
        return self._table_bytes + slot * self.config.ait.entry_bytes + offset

    def _turnaround(self, is_write: bool, when: int) -> int:
        """Apply the read<->write bus redirection penalty."""
        penalty = 0
        if self._last_dir_write is not None and self._last_dir_write != is_write:
            penalty = TURNAROUND_PS
        self._last_dir_write = is_write
        return when + penalty

    # ------------------------------------------------------------------
    # AIT paths
    # ------------------------------------------------------------------

    def _ait_lookup(self, addr: int, now: int) -> int:
        """Translation-table read; returns completion.

        With the (optional) translation cache enabled, hot records are
        served from controller SRAM instead of the on-DIMM DRAM.
        """
        cache_entries = self.config.ait.table_cache_entries
        if cache_entries:
            page = self._page_of(addr)
            if page in self._table_cache:
                self._table_cache.move_to_end(page)
                self.stats.counter("dimm.table_cache_hits").add()
                done = now + self.config.ait.table_cache_hit_ps
                if self.flight.active:
                    self.flight.span("dimm.ait", now, done, phase="table",
                                     source="sram")
                return done
            self.stats.counter("dimm.table_cache_misses").add()
            self._table_cache[page] = True
            if len(self._table_cache) > cache_entries:
                self._table_cache.popitem(last=False)
        done = self.dram.access(self._table_addr(addr), False, now)
        if self.flight.active:
            self.flight.span("dimm.ait", now, done, phase="table",
                             source="dram")
        return done

    def _ait_insert(self, page: int, now: int) -> int:
        """Allocate a buffer slot for ``page`` (LRU evict); returns slot."""
        if self._ait_free:
            slot = self._ait_free.pop()
        else:
            _, slot = self._ait_tags.popitem(last=False)
            self.stats.counter("dimm.ait_evictions").add()
        self._ait_tags[page] = slot
        return slot

    def _ait_read_block(self, addr: int, now: int) -> int:
        """Fetch the 256B block of ``addr`` from the AIT level.

        Returns the time the block is available to fill the RMW buffer.
        AIT-buffer hits read from on-DIMM DRAM; misses fetch the whole
        4KB entry from media (critical-block-first, so the caller gets
        its 256B as soon as that unit lands; the rest of the fill keeps
        the media port busy in the background).
        """
        cfg = self.config
        page = self._page_of(addr)
        block = self._block_of(addr)
        done_table = self._ait_lookup(addr, now)

        fl = self.flight
        slot = self._ait_tags.get(page)
        if slot is not None:
            self._ait_tags.move_to_end(page)
            self._c_ait_hits.add()
            offset = block - page
            done = self.dram.access_block(
                self._slot_addr(slot, offset), cfg.rmw.entry_bytes, False, done_table
            )
            if fl.active:
                fl.span("dimm.ait", done_table, done, phase="buffer_hit")
            return done

        # AIT miss: 4KB media fill.
        self._c_ait_misses.add()
        self._c_ait_fill_bytes.add(cfg.ait.entry_bytes)
        start = self.wear.on_read(page, done_table)
        gran = cfg.media.granularity
        # Critical 256B first.
        array_done = self.media.access(self.wear.translate(block), False, start)
        first = self.media_port.serve(array_done, MEDIA_PORT_READ_PS)
        if fl.active:
            fl.span("dimm.media_port", array_done, first, phase="read")
        # Background: the remaining units of the 4KB entry.
        fill_done = first
        unit = page
        while unit < page + cfg.ait.entry_bytes:
            if unit != block:
                done = self.media.access(self.wear.translate(unit), False, start)
                fill_done = max(fill_done, self.media_port.serve(done, MEDIA_PORT_READ_PS))
            unit += gran
        self._ait_insert(page, now)
        # The DRAM fill of the slot happens in the background over the
        # on-DIMM DRAM's spare bandwidth; demand table lookups are
        # prioritized over fill traffic, so the fill is not charged to
        # the shared DRAM channel (its media-side cost is charged above).
        return first

    def _ait_write_block(self, addr: int, nbytes: int, now: int):
        """Write ``nbytes`` (<=256) at ``addr`` through the AIT to media.

        Writes allocate into the AIT buffer at sector granularity (the
        256B unit is written into the page's entry without fetching the
        other sectors from media), keeping the hierarchy inclusive: data
        just written is readable from the AIT buffer.  Because no 4KB
        media fetch happens on the write path, LENS sees no 4KB signature
        in the *write* amplification test (Fig. 6b).

        Returns ``(handoff, durable)``: the time the 256B unit has been
        transferred over the media port (the issuing engine is free), and
        the time the array program finishes (the LSQ entry retires).
        """
        cfg = self.config
        page = self._page_of(addr)
        block = self._block_of(addr)
        done_table = self._ait_lookup(addr, now)

        ready, _migrated = self.wear.on_write(block, done_table)
        handoff = self.media_port.serve(ready, MEDIA_PORT_WRITE_PS)
        if self.flight.active:
            self.flight.span("dimm.media_port", ready, handoff, phase="write")
        durable = self.media.access(self.wear.translate(block), True, handoff)

        slot = self._ait_tags.get(page)
        if slot is not None:
            self._ait_tags.move_to_end(page)
        else:
            slot = self._ait_insert(page, now)
        self.dram.access_block(
            self._slot_addr(slot, block - page), cfg.rmw.entry_bytes, True,
            done_table,
        )
        self._c_drained_bytes.add(cfg.media.granularity)
        return handoff, durable

    # ------------------------------------------------------------------
    # RMW buffer
    # ------------------------------------------------------------------

    def _rmw_touch(self, block: int) -> bool:
        """LRU lookup; returns hit/miss."""
        if block in self._rmw_tags:
            self._rmw_tags.move_to_end(block)
            return True
        return False

    def _rmw_insert(self, block: int) -> None:
        self._rmw_tags[block] = True
        if len(self._rmw_tags) > self.config.rmw.entries:
            self._rmw_tags.popitem(last=False)
            self.stats.counter("dimm.rmw_evictions").add()

    # ------------------------------------------------------------------
    # public request interface (called by the iMC)
    # ------------------------------------------------------------------

    def profile_points(self):
        """Host-profiler attribution points (see ``TargetSystem``).

        The queueing stations themselves (LSQ, media port, buses) are
        slotted and can't carry instance-side wrappers; their wall time
        lands in these enclosing DIMM/AIT/media/wear keys.
        """
        yield ("dimm.read_line", self, "read_line")
        yield ("dimm.write_line", self, "write_line")
        yield ("dimm.flush", self, "flush")
        yield ("dimm.flush_wc", self, "_flush_wc")
        yield ("ait.lookup", self, "_ait_lookup")
        yield ("ait.insert", self, "_ait_insert")
        yield ("ait.read_block", self, "_ait_read_block")
        yield ("ait.write_block", self, "_ait_write_block")
        yield ("media.access", self.media, "access")
        yield ("media.access_block", self.media, "access_block")
        yield ("wear.on_read", self.wear, "on_read")
        yield ("wear.on_write", self.wear, "on_write")
        if self.lazy is not None:
            yield ("lazy.absorb", self.lazy, "absorb")
            yield ("lazy.flush", self.lazy, "flush")

    def _read_line_fast(self, addr: int, now: int) -> int:
        """Uninstrumented :meth:`read_line` (same timing, no flight)."""
        t = self.t
        self._c_reads.add()
        self._c_req_read_bytes.add(CACHE_LINE)
        admit = self.lsq.admit(now)
        start = self._turnaround(False, admit + t.lsq_proc_ps)
        block = self._block_of(addr)
        if self.lazy is not None and self.lazy.contains(block):
            self._c_rmw_hits.add()
            ready = self.engine.serve(start, self.lazy.config.hit_ps)
        elif self._rmw_touch(block):
            self._c_rmw_hits.add()
            ready = self.engine.serve(start, t.rmw_hit_ps)
        else:
            self._c_rmw_misses.add()
            self._c_rmw_fill_bytes.add(self.config.rmw.entry_bytes)
            op_done = self.engine.serve(start, t.engine_op_ps)
            ready = self._ait_read_block(addr, op_done) + t.rmw_fill_ps
            self._rmw_insert(block)
        done = self.bus.serve(ready, t.bus_line_ps) + t.ddrt_grant_ps
        self.lsq.retire_at(done)
        return done

    def _write_line_fast(self, addr: int, now: int,
                         nbytes: int = CACHE_LINE) -> int:
        """Uninstrumented :meth:`write_line` (same timing, no flight)."""
        t = self.t
        self._c_writes.add()
        self._c_write_bytes.add(nbytes)
        admit = self.lsq.admit(now)
        arrive = self._turnaround(True, admit + t.lsq_proc_ps)
        block = self._block_of(addr)
        line = align_down(addr, CACHE_LINE)
        if (
            self._wc_block == block
            and line not in self._wc_lines
            and arrive - self._wc_last_ps <= self.config.lsq.combine_window_ps
        ):
            self._wc_lines.add(line)
            self._wc_last_ps = arrive
            if len(self._wc_lines) * CACHE_LINE >= self.config.lsq.combine_bytes:
                self._flush_wc(arrive)
                self.lsq.retire_at(self._wc_drain_ps)
            else:
                self.lsq.retire_at(max(arrive, self._wc_drain_ps))
            return admit
        self._flush_wc(arrive)
        self._wc_block = block
        self._wc_lines = {line}
        self._wc_last_ps = arrive
        self.lsq.retire_at(max(arrive, self._wc_drain_ps))
        return admit

    def read_line(self, addr: int, now: int) -> int:
        """Service a 64B read; returns the time data reaches the iMC."""
        t = self.t
        self._c_reads.add()
        self._c_req_read_bytes.add(CACHE_LINE)
        admit = self.lsq.admit(now)
        start = self._turnaround(False, admit + t.lsq_proc_ps)
        block = self._block_of(addr)
        fl = self.flight
        if fl.active:
            fl.span("dimm.lsq", now, admit, phase="wait")
            fl.span("dimm.lsq", admit, start, phase="proc")

        if self.lazy is not None and self.lazy.contains(block):
            # The Lazy cache holds the newest copy of wear-hot blocks.
            self._c_rmw_hits.add()
            ready = self.engine.serve(start, self.lazy.config.hit_ps)
            if fl.active:
                fl.span("dimm.lazy", start, ready, phase="hit")
        elif self._rmw_touch(block):
            self._c_rmw_hits.add()
            ready = self.engine.serve(start, t.rmw_hit_ps)
            if fl.active:
                fl.span("dimm.rmw", start, ready, phase="hit")
        else:
            self._c_rmw_misses.add()
            self._c_rmw_fill_bytes.add(self.config.rmw.entry_bytes)
            op_done = self.engine.serve(start, t.engine_op_ps)
            if fl.active:
                fl.span("dimm.engine", start, op_done, phase="op")
            ready = self._ait_read_block(addr, op_done)
            if fl.active:
                fl.span("dimm.rmw", ready, ready + t.rmw_fill_ps,
                        phase="fill")
            ready += t.rmw_fill_ps
            self._rmw_insert(block)

        done = self.bus.serve(ready, t.bus_line_ps) + t.ddrt_grant_ps
        if fl.active:
            fl.span("dimm.return_bus", ready, done, phase="return")
        self.lsq.retire_at(done)
        return done

    def write_line(self, addr: int, now: int, nbytes: int = CACHE_LINE) -> int:
        """Accept one 64B store line from the iMC WPQ drain.

        Returns the LSQ admission time (when the WPQ slot frees).  The
        line's journey to media continues asynchronously; its LSQ slot is
        freed when the (possibly combined) downstream op completes.
        """
        t = self.t
        self._c_writes.add()
        self._c_write_bytes.add(nbytes)
        admit = self.lsq.admit(now)
        arrive = self._turnaround(True, admit + t.lsq_proc_ps)
        block = self._block_of(addr)
        line = align_down(addr, CACHE_LINE)
        fl = self.flight
        if fl.active:
            fl.span("dimm.lsq", now, admit, phase="wait")
            fl.span("dimm.lsq", admit, arrive, phase="proc")

        if (
            self._wc_block == block
            and line not in self._wc_lines
            and arrive - self._wc_last_ps <= self.config.lsq.combine_window_ps
        ):
            if fl.active:
                fl.instant("dimm.lsq", "write_combine", arrive,
                           block=f"0x{block:x}")
            self._wc_lines.add(line)
            self._wc_last_ps = arrive
            if len(self._wc_lines) * CACHE_LINE >= self.config.lsq.combine_bytes:
                self._flush_wc(arrive)
                self.lsq.retire_at(self._wc_drain_ps)
            else:
                # Retirement recorded at the most recent combined-op
                # drain — each admitted line frees its LSQ slot at an op
                # completion, which keeps slot-free spacing equal to the
                # downstream drain rate under FCFS.
                self.lsq.retire_at(max(arrive, self._wc_drain_ps))
            return admit

        self._flush_wc(arrive)
        self._wc_block = block
        self._wc_lines = {line}
        self._wc_last_ps = arrive
        self.lsq.retire_at(max(arrive, self._wc_drain_ps))
        return admit

    def _flush_wc(self, now: int) -> int:
        """Issue the pending write-combine block downstream."""
        if self._wc_block is None:
            return now
        t = self.t
        block = self._wc_block
        nbytes = len(self._wc_lines) * CACHE_LINE
        self._wc_block = None
        self._wc_lines = set()

        if self.lazy is not None:
            # Lazy cache (Section V-C): wear-hot blocks are absorbed by
            # the 3KB ADR-protected cache instead of writing through —
            # no media write, no wear accrual, no migration stall.
            wear_cfg = self.wear.config
            count = self.wear.block_write_count(block)
            if count >= wear_cfg.migrate_threshold * self.lazy.config.hot_fraction:
                self.lazy.mark_hot(block)
            if self.lazy.contains(block) or self.lazy.is_hot(block):
                done = self.engine.serve(now, self.lazy.config.hit_ps)
                if self.flight.active:
                    self.flight.span("dimm.lazy", now, done, phase="absorb")
                fa = self.faults
                if fa.enabled:
                    # The block's newest data now lives in Lazy SRAM, not
                    # media — the persistence checker marks it dirty until
                    # an eviction writeback lands.
                    fa.note_lazy_absorb(block, done)
                for victim in self.lazy.absorb(block, now=done):
                    _, durable = self._ait_write_block(victim, 256, done)
                    done = max(done, durable)
                    if fa.enabled:
                        fa.note_lazy_writeback(victim, durable)
                self._wc_drain_ps = done
                return done

        start = self.engine.serve(now, t.engine_op_ps)
        if self.flight.active:
            self.flight.span("dimm.engine", now, start, phase="op")
        partial = nbytes < self.config.lsq.combine_bytes
        if partial:
            # Sub-256B store: read-modify-write.  The merge data comes
            # from the RMW buffer when resident, otherwise from the AIT.
            self._c_partial_ops.add()
            if not self._rmw_touch(block):
                start = self._ait_read_block(block, start)
        else:
            self._c_combined_ops.add()
        self._rmw_insert(block)
        handoff, durable = self._ait_write_block(block, nbytes, start)
        if (partial and t.engine_holds_partial
                and handoff > self.engine.busy_until):
            # The RMW engine holds a partial op through merge and media
            # handoff.  This single serial resource bounds random
            # small-write throughput — producing the paper's LSQ-overflow
            # store plateau (Fig. 5a, 4KB inflection) and the RMW
            # contention scaling pathology — while combined 256B ops only
            # pay the media write port, keeping sequential bandwidth high.
            self.engine.busy_until = handoff
        self._wc_drain_ps = durable
        return durable

    def flush(self, now: int) -> int:
        """Fence: flush pending combining state and drain the LSQ."""
        done = self._flush_wc(now)
        drain = self.lsq.drain_time(now)
        if self.flight.active:
            self.flight.span("dimm.lsq", now, drain, phase="drain")
        return max(done, drain)

    # ------------------------------------------------------------------
    # experiment support
    # ------------------------------------------------------------------

    def warm_fill(self, start_addr: int, length: int) -> None:
        """Pre-populate buffer tag state for a region, equivalent to
        running an untimed warm-up pass (documented fast-forward)."""
        cfg = self.config
        page = self._page_of(start_addr)
        end = start_addr + length
        while page < end and len(self._ait_tags) < cfg.ait.entries:
            if page not in self._ait_tags:
                self._ait_insert(page, 0)
            page += cfg.ait.entry_bytes
        block = self._block_of(start_addr)
        while block < end and len(self._rmw_tags) < cfg.rmw.entries:
            self._rmw_insert(block)
            block += cfg.rmw.entry_bytes

    def invalidate_buffers(self) -> None:
        """Drop all cached tag state (cold restart between experiments)."""
        self._rmw_tags.clear()
        self._ait_tags.clear()
        self._ait_free = list(range(self.config.ait.entries - 1, -1, -1))
        self._wc_block = None
        self._wc_lines = set()

    def reset(self) -> None:
        """As-built state for warm-cache reuse: every station clock, tag
        store, combining register, and statistic back to construction
        values, so a reused DIMM times requests bit-identically to a
        fresh one."""
        self.invalidate_buffers()
        self._table_cache.clear()
        self._wc_last_ps = 0
        self._wc_drain_ps = 0
        self._last_dir_write = None
        self.lsq.reset()
        self.engine.reset()
        self.media_port.reset()
        self.bus.reset()
        self.dram.reset()
        self.media.reset()
        self.wear.reset()
        if self.lazy is not None:
            self.lazy.reset()
        self.stats.reset()

    @property
    def rmw_read_amplification(self) -> float:
        """Bytes filled into the RMW buffer per requested read byte."""
        requested = self._c_req_read_bytes.value
        return self._c_rmw_fill_bytes.value / requested if requested else 0.0

    @property
    def ait_read_amplification(self) -> float:
        """Bytes fetched from media per requested read byte."""
        requested = self._c_req_read_bytes.value
        return self._c_ait_fill_bytes.value / requested if requested else 0.0

    @property
    def write_amplification(self) -> float:
        """Media bytes written per requested write byte."""
        requested = self._c_write_bytes.value
        return self._c_drained_bytes.value / requested if requested else 0.0
