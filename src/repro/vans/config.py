"""VANS configuration tree.

Every microarchitectural parameter LENS characterizes is an explicit
config field, with defaults set to the paper's Optane DIMM values
(Table V and Figure 8).  The modular layout mirrors the paper's "users
can reconfigure VANS based on new parameters" workflow: swap any subtree
to model a different NVRAM DIMM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MIB, NS, is_power_of_two
from repro.dram.timing import DDR4Timing, DDR4_2666
from repro.media.wear import WearConfig
from repro.media.xpoint import XPointConfig


@dataclass(frozen=True)
class WpqConfig:
    """iMC write pending queue (ADR domain).

    LENS finds a 512B effective capacity with 512B flush granularity
    (Figure 5a's first store inflection and Figure 6b).
    """

    entries: int = 8
    entry_bytes: int = 64

    @property
    def capacity_bytes(self) -> int:
        return self.entries * self.entry_bytes


@dataclass(frozen=True)
class LsqConfig:
    """On-DIMM load-store queue: 64 x 64B, write-combines to 256B."""

    entries: int = 64
    entry_bytes: int = 64
    combine_bytes: int = 256
    #: write-combining window: a partially filled 256B block is flushed
    #: downstream if no adjacent write arrives within this window.
    combine_window_ps: int = 200 * 1000  # 200ns

    @property
    def capacity_bytes(self) -> int:
        return self.entries * self.entry_bytes


@dataclass(frozen=True)
class RmwConfig:
    """On-DIMM SRAM read-modify-write buffer: 64 x 256B = 16KB."""

    entries: int = 64
    entry_bytes: int = 256

    @property
    def capacity_bytes(self) -> int:
        return self.entries * self.entry_bytes


@dataclass(frozen=True)
class AitConfig:
    """Address indirection table + data buffer in on-DIMM DRAM.

    4096 x 4KB data entries (16MB) and an 8B translation record per 4KB
    media page.  ``table_cache_entries`` optionally caches hot
    translation records in controller SRAM, skipping the on-DIMM DRAM
    lookup on a hit — a design-space knob beyond the characterized
    Optane configuration (0 = disabled, the validated default).
    """

    entries: int = 4096
    entry_bytes: int = 4 * KIB
    table_record_bytes: int = 8
    table_cache_entries: int = 0
    table_cache_hit_ps: int = 4_000  # 4ns SRAM lookup

    @property
    def capacity_bytes(self) -> int:
        return self.entries * self.entry_bytes


@dataclass(frozen=True)
class TimingConfig:
    """Fixed-latency components of the access path (calibrated so the
    end-to-end tiers land on the paper's measured curves).

    * ``frontend_read_ps``/``frontend_write_ps`` — CPU-side traversal
      (core, cache miss path, iMC entry) included in what LENS measures.
    * ``ddrt_*`` — DDR-T request/grant protocol hops between iMC and DIMM.
    * ``lsq_proc_ps`` — LSQ scheduling slot.
    * ``rmw_hit_ps``/``rmw_fill_ps`` — SRAM array access / fill.
    * ``engine_op_ps`` — the DIMM controller's per-operation processing
      cost (the serial resource that bounds random-write throughput).
    """

    #: ablation: when False, the RMW engine releases a partial-write op
    #: as soon as it is issued instead of holding through merge+handoff
    #: (removes the random-small-write bottleneck; see the ablation
    #: experiments)
    engine_holds_partial: bool = True
    #: protocol study: model the DDR-T request/grant layer explicitly
    #: (credit slots + command/data buses) instead of the calibrated
    #: fixed per-hop costs.  Off in the validated configuration.
    ddrt_detailed: bool = False
    frontend_read_ps: int = 60 * NS
    #: nt-stores retire into iMC write-combining buffers quickly; the
    #: visible store cost is WPQ admission, so issue is faster than the
    #: WPQ drain and bursts beyond 512B queue up (Fig. 5a).
    frontend_write_ps: int = 10 * NS
    ddrt_request_ps: int = 15 * NS
    ddrt_grant_ps: int = 10 * NS
    lsq_proc_ps: int = 5 * NS
    rmw_hit_ps: int = 30 * NS
    rmw_fill_ps: int = 10 * NS
    engine_op_ps: int = 45 * NS
    #: WPQ -> DIMM LSQ transfer per 64B line over the (serial) DDR-T
    #: write path; this drain rate is what makes store bursts larger than
    #: the 512B WPQ visibly slower (Fig. 5a's first store inflection).
    wpq_xfer_ps: int = 40 * NS
    bus_line_ps: int = 10 * NS   # DIMM -> iMC data return per 64B


@dataclass(frozen=True)
class DimmConfig:
    """One NVRAM DIMM: queues, buffers, on-DIMM DRAM, media, wear.

    ``lazy_cache`` enables the Section V-C Lazy cache (a 3KB
    ADR-protected on-DIMM write cache for wear-hot blocks).
    """

    lsq: LsqConfig = field(default_factory=LsqConfig)
    rmw: RmwConfig = field(default_factory=RmwConfig)
    ait: AitConfig = field(default_factory=AitConfig)
    media: XPointConfig = field(default_factory=XPointConfig)
    wear: WearConfig = field(default_factory=WearConfig)
    dram_timing: DDR4Timing = DDR4_2666
    dram_capacity_bytes: int = 512 * MIB
    timing: TimingConfig = field(default_factory=TimingConfig)
    lazy_cache: bool = False

    def __post_init__(self) -> None:
        if self.ait.capacity_bytes > self.dram_capacity_bytes:
            raise ConfigError("AIT buffer cannot exceed on-DIMM DRAM capacity")
        if self.rmw.entry_bytes % self.lsq.combine_bytes:
            raise ConfigError("RMW entry size must be a multiple of the "
                              "LSQ combine granularity")


@dataclass(frozen=True)
class VansConfig:
    """Whole NVRAM memory subsystem: iMC + interleaved DIMMs."""

    ndimms: int = 1
    interleave_bytes: int = 4 * KIB
    interleaved: bool = False
    wpq: WpqConfig = field(default_factory=WpqConfig)
    dimm: DimmConfig = field(default_factory=DimmConfig)
    #: record per-request latencies into histograms (off for big runs)
    collect_latency_histograms: bool = True

    def __post_init__(self) -> None:
        if self.ndimms < 1:
            raise ConfigError("need at least one DIMM")
        if not is_power_of_two(self.interleave_bytes):
            raise ConfigError("interleave granularity must be a power of two")
        if self.interleaved and self.ndimms < 2:
            raise ConfigError("interleaving requires at least two DIMMs")

    @property
    def total_capacity_bytes(self) -> int:
        return self.ndimms * self.dimm.media.capacity_bytes

    # -- convenience derivation helpers (the "modular design" API) -----

    def with_dimms(self, ndimms: int, interleaved: bool = None) -> "VansConfig":
        """Same system with a different DIMM population."""
        if interleaved is None:
            interleaved = ndimms > 1
        return replace(self, ndimms=ndimms, interleaved=interleaved)

    def with_media_capacity(self, capacity_bytes: int) -> "VansConfig":
        """Same system with different media capacity (Figure 10a)."""
        media = replace(self.dimm.media, capacity_bytes=capacity_bytes)
        return replace(self, dimm=replace(self.dimm, media=media))

    def with_lazy_cache(self, enabled: bool = True) -> "VansConfig":
        """Same system with the Lazy cache toggled (Section V-C)."""
        return replace(self, dimm=replace(self.dimm, lazy_cache=enabled))

    def describe(self) -> Dict[str, Any]:
        """Flat summary of the headline parameters (for reports/tests)."""
        return {
            "ndimms": self.ndimms,
            "interleaved": self.interleaved,
            "interleave_bytes": self.interleave_bytes,
            "wpq_bytes": self.wpq.capacity_bytes,
            "lsq_bytes": self.dimm.lsq.capacity_bytes,
            "rmw_bytes": self.dimm.rmw.capacity_bytes,
            "ait_bytes": self.dimm.ait.capacity_bytes,
            "media_bytes": self.dimm.media.capacity_bytes,
            "wear_block_bytes": self.dimm.wear.block_bytes,
        }


def optane_config(ndimms: int = 1, media_capacity: int = 4 * GIB) -> VansConfig:
    """The paper's validated Optane DIMM configuration (Table V)."""
    base = VansConfig()
    return base.with_dimms(ndimms).with_media_capacity(media_capacity)
